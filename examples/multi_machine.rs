//! SUPERDB demo: probe several machines, upload their KBs and
//! observations to the global database, and run cross-machine analyses
//! (the Fig. 2(d) level view across servers).
//!
//! ```sh
//! cargo run --example multi_machine
//! ```

use pmove::core::kb::superdb::SuperDb;
use pmove::core::profiles::stream_kernel_profile;
use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::ProfileRequest;
use pmove::core::PMoveDaemon;
use pmove::hwsim::vendor::IsaExt;
use pmove::kernels::StreamKernel;
use pmove::tsdb::Point;

fn main() {
    let superdb = SuperDb::new();

    // One local P-MoVE instance per target; each runs the same DDOT kernel
    // and reports to SUPERDB.
    for key in ["skx", "icl", "csl", "zen3"] {
        let mut daemon = PMoveDaemon::for_preset(key).expect("preset machine");
        superdb.upload_kb(&daemon.kb).expect("KB upload");

        let threads = daemon.machine.spec.total_cores();
        let flop_event = if key == "zen3" {
            "TOTAL_DP_FLOPS"
        } else {
            "SCALAR_DP_FLOPS"
        };
        let request = ProfileRequest {
            profile: stream_kernel_profile(StreamKernel::Ddot, 1 << 34, threads, IsaExt::Scalar),
            command: "ddot -n 17179869184".into(),
            generic_events: vec![flop_event.into(), "TOTAL_MEMORY_OPERATIONS".into()],
            freq_hz: 4.0,
            pinning: PinningStrategy::NumaBalanced,
        };
        let outcome = daemon.profile(&request).expect("profiling succeeds");
        let obs = outcome.observation.clone();
        println!(
            "{key:>5}: ddot ran {:.4} s at {:.1} GF/s on {threads} cores",
            outcome.execution.duration_s,
            outcome.execution.gflops()
        );

        // TS upload: recall the raw series from the local instance.
        let mut series: Vec<Point> = Vec::new();
        for q in obs.queries() {
            if let Ok(r) = daemon.ts.query(&q) {
                for row in &r.rows {
                    let mut p = Point::new("ddot_recalled")
                        .tag("tag", obs.id.clone())
                        .timestamp(row.timestamp);
                    for (k, v) in &row.values {
                        if let Some(v) = v {
                            p = p.field(k.clone(), *v);
                        }
                    }
                    series.push(p);
                }
            }
        }
        superdb
            .upload_ts_observation(&obs, series)
            .expect("TS upload");

        // AGG upload: statistical summaries only.
        let sums: Vec<(String, String, Vec<f64>)> = obs
            .metrics
            .iter()
            .map(|m| {
                let values: Vec<f64> = daemon
                    .ts
                    .query(&format!(
                        "SELECT \"{}\" FROM \"{}\" WHERE tag='{}'",
                        m.fields[0], m.db_name, obs.id
                    ))
                    .map(|r| {
                        r.column_series(&m.fields[0])
                            .into_iter()
                            .map(|(_, v)| v)
                            .collect()
                    })
                    .unwrap_or_default();
                (m.db_name.clone(), m.fields[0].clone(), values)
            })
            .collect();
        let agg = SuperDb::aggregate(&obs, &sums);
        superdb.upload_agg_observation(&agg).expect("AGG upload");
    }

    // Global views.
    println!("\nSUPERDB machines: {:?}", superdb.machines());
    let sockets = superdb.global_level_view("socket").expect("level view");
    println!("global level view over sockets:");
    for (machine, iface) in &sockets {
        println!(
            "  {:<5} {} — {}",
            machine,
            iface.display_name,
            iface
                .property_value("model")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
        );
    }
    let threads = superdb.global_level_view("thread").expect("level view");
    println!("total thread twins across the fleet: {}", threads.len());
}
