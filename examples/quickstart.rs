//! Quickstart: bring up P-MoVE against a target, monitor it, and render
//! an automatically generated dashboard.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pmove::core::dashboard::{gen, render};
use pmove::core::PMoveDaemon;

fn main() {
    // Steps ⓪–③: read env, probe the target, generate the KB, insert it
    // into the document database.
    let mut daemon = PMoveDaemon::for_preset("csl").expect("preset machine");
    println!(
        "probed {}: {} component twins in the KB\n",
        daemon.kb.machine_key,
        daemon.kb.len()
    );

    // Scenario A: monitor system state for 30 virtual seconds at 2 Hz.
    let report = daemon.monitor(30.0, 2.0);
    println!(
        "scenario A: {} ticks, {} values stored, {:.1}% lost\n",
        report.ticks,
        report.transport.values_inserted,
        report.transport.loss_pct()
    );

    // Automatic dashboards from the KB (Listing 1 JSON).
    let socket = daemon
        .kb
        .by_name("socket0")
        .expect("socket twin")
        .id
        .clone();
    let dash = gen::subtree_dashboard(&daemon.kb, &socket).expect("dashboard");
    println!(
        "generated subtree dashboard with {} panels; Listing-1 style JSON:\n{}\n",
        dash.panels.len(),
        serde_json::to_string_pretty(&dash.to_json()["panels"][0]).unwrap()
    );

    // Render the per-CPU idle panel from live data.
    if let Some(panel) = dash
        .panels
        .iter()
        .find(|p| p.title == "kernel_percpu_cpu_idle")
    {
        let mut small = panel.clone();
        small.targets.truncate(4);
        println!("{}", render::render_panel(&daemon.ts, &small, None, 40));
    }

    // The KB's focus view: from one thread up to the system twin.
    let cpu0 = daemon.kb.by_name("cpu0").expect("cpu0 twin").id.clone();
    let path = pmove::core::kb::views::focus_path(&daemon.kb, &cpu0);
    let names: Vec<&str> = path.iter().map(|i| i.display_name.as_str()).collect();
    println!("focus path of cpu0: {}", names.join(" → "));
}
