//! Self-monitoring: P-MoVE watching its own pipeline.
//!
//! Runs Scenario A and a Scenario B kernel profile, then prints the
//! framework's own health: the loss-conservation accounting, latency
//! quantiles from the tsdb ingest path, per-boot-step span timings, the
//! generated self-dashboard, and the `pmove.self.*` series the
//! meta-exporter writes back into the time-series database.
//!
//! ```sh
//! cargo run --example self_monitoring
//! ```

use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::ProfileRequest;
use pmove::core::{profiles, PMoveDaemon};
use pmove::hwsim::vendor::IsaExt;
use pmove::kernels::StreamKernel;

fn main() {
    let mut daemon = PMoveDaemon::for_preset("csl").expect("preset machine");

    // Scenario A window, then a Scenario B profile (the paper's Fig. 4
    // flow) — both feed the daemon's own observability registry.
    daemon.monitor(30.0, 2.0);
    let request = ProfileRequest {
        profile: profiles::stream_kernel_profile(StreamKernel::Triad, 1 << 32, 28, IsaExt::Avx512),
        command: "stream_triad".into(),
        generic_events: vec!["TOTAL_DP_FLOPS".into()],
        freq_hz: 8.0,
        pinning: PinningStrategy::Balanced,
    };
    daemon.profile(&request).expect("scenario B profile");

    // --- pipeline health: the conservation identity -------------------
    let snap = daemon.obs.snapshot();
    let offered = snap
        .counter("pcp.transport.values_offered", &[])
        .unwrap_or(0);
    let inserted = snap
        .counter("pcp.transport.values_inserted", &[])
        .unwrap_or(0);
    let zeroed = snap
        .counter("pcp.transport.values_zeroed", &[])
        .unwrap_or(0);
    let lost = snap.counter("pcp.transport.values_lost", &[]).unwrap_or(0);
    println!("pipeline health ({}):", daemon.kb.machine_key);
    println!("  values offered   {offered}");
    println!("  values inserted  {inserted}");
    println!("  values zeroed    {zeroed}");
    println!("  values lost      {lost}");
    let conserved = offered == inserted + zeroed + lost;
    println!(
        "  conservation     {} (offered == inserted + zeroed + lost)",
        if conserved { "holds" } else { "VIOLATED" }
    );
    assert!(conserved, "loss-conservation identity violated");

    if let Some(h) = snap.histogram("tsdb.ingest_ns", &[]) {
        println!(
            "  ingest latency   p50 {:.0} ns / p90 {:.0} ns / p99 {:.0} ns over {} writes",
            h.p50, h.p90, h.p99, h.count
        );
    }

    println!("\nboot-step spans (virtual ns):");
    for (name, span) in &snap.spans {
        if name.starts_with("daemon.step") {
            println!(
                "  {name:<28} {:>12} .. {:>12}  ({} ns)",
                span.last_start_ns,
                span.last_end_ns,
                span.last_end_ns - span.last_start_ns
            );
        }
    }

    // --- meta-telemetry export + self-dashboard -----------------------
    let points = daemon.export_self_telemetry();
    let self_series = daemon
        .ts
        .measurements()
        .into_iter()
        .filter(|m| m.starts_with("pmove.self."))
        .count();
    println!("\nexported {points} self-telemetry points into {self_series} pmove.self.* series");

    let dash = daemon.self_dashboard();
    println!(
        "self-dashboard '{}' with {} panels, {} targets; loss panel JSON:",
        dash.title,
        dash.panels.len(),
        dash.target_count()
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&dash.to_json()["panels"][0]).unwrap()
    );
}
