//! Live-CARM demo (the Fig. 9 workflow): construct the Cache-Aware
//! Roofline Model for a target via auto-configured microbenchmarks, run
//! likwid-style kernels under PMU sampling, and render the live-CARM panel.
//!
//! ```sh
//! cargo run --example live_carm
//! ```

use pmove::core::carm::microbench::{construct_carm, representative_thread_counts};
use pmove::core::carm::{plot, LiveCarm};
use pmove::core::kb::observation::BenchmarkInterface;
use pmove::core::profiles::stream_kernel_profile_at_level;
use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::ProfileRequest;
use pmove::core::PMoveDaemon;
use pmove::kernels::StreamKernel;

fn main() {
    let mut daemon = PMoveDaemon::for_preset("csl").expect("preset machine");
    let threads = daemon.machine.spec.total_cores();

    println!(
        "representative thread counts: {:?}",
        representative_thread_counts(&daemon.machine)
    );

    // Construct the CARM and cache it in the KB so the plot can be
    // re-constructed later without re-running the microbenchmarks.
    let carm = construct_carm(&daemon.machine, threads);
    let bench = BenchmarkInterface {
        id: daemon.ids.next_id(),
        machine: daemon.kb.machine_key.clone(),
        benchmark: "carm".into(),
        compiler: "gcc".into(),
        results: carm.to_results(),
    };
    daemon.kb.append_benchmark(bench);
    daemon.sync_kb().expect("KB sync");
    println!("CARM constructed and stored in the KB:");
    for r in &carm.roofs {
        println!("  {:<5} {:8.1} GB/s", r.level, r.bandwidth_bps / 1e9);
    }
    for p in &carm.peaks {
        println!("  peak {:<7} {:8.1} GF/s", p.isa, p.gflops);
    }

    // Profile the three Fig. 9 benchmarks and collect live trajectories.
    let layer = daemon.layer.clone();
    let live = LiveCarm::new(&layer, "csl");
    let isa = daemon.machine.spec.arch.widest_isa();
    let mut all_points = Vec::new();
    for (kernel, level) in [
        (StreamKernel::Triad, 2u8),
        (StreamKernel::Peakflops, 1),
        (StreamKernel::Ddot, 1),
    ] {
        let request = ProfileRequest {
            profile: stream_kernel_profile_at_level(kernel, 1 << 38, threads, isa, level),
            command: format!("likwid-bench -t {}", kernel.name()),
            generic_events: vec!["TOTAL_DP_FLOPS".into(), "TOTAL_MEMORY_OPERATIONS".into()],
            freq_hz: 8.0,
            pinning: PinningStrategy::Compact,
        };
        let outcome = daemon.profile(&request).expect("profiling succeeds");
        let points = live
            .trajectory(&daemon.ts, &outcome.observation.id, 0.25)
            .expect("trajectory");
        println!(
            "\n{}: {} live points, theoretical AI {:.4}",
            kernel.name(),
            points.len(),
            kernel.op_counts(1 << 38).arithmetic_intensity()
        );
        all_points.extend(points);
    }

    println!("\n{}", plot::render(&carm, &all_points, 76, 22));
}
