//! Replicated monitoring: quorum writes, hinted handoff, and
//! anti-entropy repair through a partition.
//!
//! A 3-replica daemon (RF=3, W=2, R=2) monitors through a schedule that
//! first partitions the primary — forcing a failover while the surviving
//! majority keeps acking quorum writes — and then takes out a second
//! replica so the quorum itself breaks and the daemon degrades to
//! monitor-only. When the replicas return, hint replay plus Merkle
//! anti-entropy converge the set bit-identically, and the degradation
//! lifts on its own.
//!
//! ```sh
//! cargo run --example replicated_monitoring
//! ```

use pmove::core::PMoveDaemon;
use pmove::hwsim::{FaultKind, FaultSchedule};

fn main() {
    let mut daemon = PMoveDaemon::for_preset_replicated("icl", 42).expect("replicated boot");
    let set_len = daemon.repl.as_ref().expect("replica set").len();
    println!("== replicated boot ==");
    println!(
        "replicas {} (recovered {} reports), mode {:?}",
        set_len,
        daemon.repl_recovery.len(),
        daemon.mode
    );

    // Window 1: the primary (replica 0) is partitioned for the middle of
    // the run. W=2 of 3 stays reachable, so the coordinator fails over
    // and nothing is lost.
    let mut schedules = vec![FaultSchedule::none(); set_len];
    schedules[0] = FaultSchedule::none().with_window(10.0, 50.0, FaultKind::LinkDown);
    let out = daemon
        .monitor_replicated(60.0, 1.0, Some(schedules))
        .expect("replicated window");
    println!("\n== window 1: primary partitioned ==");
    println!(
        "offered {} inserted {} lost {} hinted {} replayed {} failovers {}",
        out.report.transport.values_offered,
        out.report.transport.values_inserted + out.report.transport.values_zeroed,
        out.report.transport.values_lost,
        out.report.transport.values_hinted,
        out.report.transport.hints_replayed,
        out.report.transport.failovers,
    );
    println!(
        "primary now r{}, healthy {}/{}, degraded {}, conserved {}",
        out.primary,
        out.healthy,
        set_len,
        out.degraded,
        out.report.transport.conserved(),
    );

    // Window 2: two replicas down through the end of the window — the
    // write quorum is unreachable, so the daemon drops to monitor-only.
    let mut schedules = vec![FaultSchedule::none(); set_len];
    schedules[1] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
    schedules[2] = FaultSchedule::none().with_window(0.0, 100.0, FaultKind::LinkDown);
    let out = daemon
        .monitor_replicated(20.0, 1.0, Some(schedules))
        .expect("degraded window");
    println!("\n== window 2: quorum unreachable ==");
    println!(
        "healthy {}/{}, degraded {}, mode {:?}",
        out.healthy, set_len, out.degraded, daemon.mode
    );
    if let Some(reason) = &daemon.degraded_reason {
        println!("reason: {reason}");
    }

    // Window 3: everything back. The degradation lifts by itself, and a
    // repair pass streams the divergent ranges until the replicas are
    // bit-identical.
    let out = daemon
        .monitor_replicated(20.0, 1.0, None)
        .expect("healthy window");
    println!("\n== window 3: replicas recovered ==");
    println!(
        "healthy {}/{}, degraded {}, mode {:?}",
        out.healthy, set_len, out.degraded, daemon.mode
    );
    let repair = daemon.repair_replicas(8).expect("anti-entropy");
    println!(
        "repair: {} rounds, {} ranges, {} cells streamed, converged {}",
        repair.rounds, repair.ranges_repaired, repair.cells_streamed, repair.converged
    );

    // Convergence audit: every replica answers the same query with the
    // same bits, and the R-quorum read agrees.
    println!("\n== convergence audit ==");
    let q = "SELECT mean(\"value\") FROM \"kernel_all_load\"";
    let quorum = daemon.quorum_query(q).expect("quorum read");
    let set = daemon.repl.as_ref().unwrap();
    let bits: Vec<Vec<Option<u64>>> = (0..set.len())
        .map(|i| {
            set.replica(i)
                .query(q)
                .expect("replica read")
                .rows
                .iter()
                .map(|r| r.values["mean(value)"].map(f64::to_bits))
                .collect()
        })
        .collect();
    let identical = bits.windows(2).all(|w| w[0] == w[1]);
    println!(
        "replicas bit-identical: {identical}; quorum mean rows: {}",
        quorum.rows.len()
    );

    // The self-dashboard grew a replication panel.
    let dash = daemon.self_dashboard();
    for p in &dash.panels {
        if p.title == "replication" {
            println!(
                "dashboard panel '{}' with {} targets",
                p.title,
                p.targets.len()
            );
        }
    }
}
