//! Resilient monitoring: the telemetry pipeline healing itself through
//! injected faults.
//!
//! A link outage and a backend brown-out are injected into a Scenario A
//! run, once with the paper's default unbuffered transport (losses) and
//! once with the resilient mode on (spill, retry, circuit breaker, gap
//! markers). A cluster then loses a node mid-run and quarantines it while
//! the survivors keep reporting.
//!
//! ```sh
//! cargo run --example resilient_monitoring
//! ```

use pmove::core::telemetry::{scenario_a, Cluster};
use pmove::core::PMoveDaemon;
use pmove::hwsim::{FaultKind, FaultSchedule};
use pmove::pcp::ResilienceConfig;

fn main() {
    // A 15 s link outage and a deep brown-out inside a 60 s window.
    let faults = || {
        FaultSchedule::none()
            .with_window(10.0, 25.0, FaultKind::LinkDown)
            .with_window(35.0, 45.0, FaultKind::BackendBrownout(0.2))
    };

    // Default (paper-mode) transport under the same faults: whatever the
    // outage swallows is gone.
    let plain = PMoveDaemon::for_preset("icl").expect("preset machine");
    let report = scenario_a::monitor_system_resilient(
        &plain.machine,
        &plain.kb,
        &plain.ts,
        0.0,
        60.0,
        2.0,
        &[],
        Some(&plain.obs),
        None, // resilience off
        Some(faults()),
    );
    println!("== default transport ==");
    println!(
        "offered {} inserted {} lost {}",
        report.transport.values_offered,
        report.transport.values_inserted + report.transport.values_zeroed,
        report.transport.values_lost,
    );

    // Self-healing transport: spill during the outage, drain after it,
    // mark the gap.
    let mut daemon = PMoveDaemon::for_preset("icl").expect("preset machine");
    let report = daemon.monitor_resilient(60.0, 2.0, ResilienceConfig::default(), Some(faults()));
    println!("\n== resilient transport ==");
    println!(
        "offered {} inserted {} lost {} recovered {} gap markers {} conserved {}",
        report.transport.values_offered,
        report.transport.values_inserted + report.transport.values_zeroed,
        report.transport.values_lost,
        report.transport.values_recovered,
        report.transport.gap_markers,
        report.transport.conserved(),
    );
    let gaps = daemon
        .ts
        .query(&format!(
            "SELECT \"gap_end_s\" FROM \"{}\"",
            pmove::pcp::GAP_MEASUREMENT
        ))
        .expect("gap markers are queryable");
    println!("gap marker rows in tsdb: {}", gaps.rows.len());

    // The self-dashboard grew a resilience panel.
    let dash = daemon.self_dashboard();
    for p in &dash.panels {
        if p.title == "transport resilience" {
            println!(
                "dashboard panel '{}' with {} targets",
                p.title,
                p.targets.len()
            );
        }
    }

    // Cluster failover: csl dies mid-run, gets quarantined, survivors
    // keep inserting, SUPERDB annotates the staleness.
    println!("\n== cluster failover ==");
    let mut cluster = Cluster::from_presets(&["icl", "csl", "zen3"]).expect("presets");
    cluster.heartbeat_miss_limit = 2;
    cluster.monitor_all(10.0, 1.0);
    cluster.kill_node("csl");
    for _ in 0..2 {
        cluster.monitor_all(10.0, 1.0);
    }
    for h in cluster.node_health() {
        println!(
            "node {:5} alive={} quarantined={} missed={} last_seen={}s",
            h.key, h.alive, h.quarantined, h.missed_heartbeats, h.last_seen_s
        );
    }
    println!(
        "superdb staleness for csl: {:?}; live machines in socket view: {:?}",
        cluster.superdb.staleness("csl"),
        cluster
            .superdb
            .global_level_view("socket")
            .unwrap()
            .iter()
            .map(|(m, _)| m.clone())
            .collect::<Vec<_>>()
    );
}
