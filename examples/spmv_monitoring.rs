//! SpMV monitoring (the Fig. 7 workflow): profile MKL-style and merge-path
//! SpMV on a mesh matrix, original and RCM-reordered, and inspect the
//! observation entries the KB records — including the Listing-2 entry and
//! the Listing-3 auto-generated queries.
//!
//! ```sh
//! cargo run --example spmv_monitoring
//! ```

use pmove::core::analysis::{queries_for_observation, report::observation_report};
use pmove::core::profiles::spmv_profile;
use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::ProfileRequest;
use pmove::core::PMoveDaemon;
use pmove::spmv::profile::SpmvAlgorithm;
use pmove::spmv::reorder::Reordering;
use pmove::spmv::suite::SuiteMatrix;
use pmove::spmv::verify::cross_check;

fn main() {
    let mut daemon = PMoveDaemon::for_preset("csl").expect("preset machine");
    let threads = daemon.machine.spec.total_cores();

    // The actual kernels really run — verify them against the sequential
    // reference before monitoring the simulated target executions.
    let matrix = SuiteMatrix::Hugetrace00020.generate(1.0);
    let x = pmove::spmv::verify::test_vector(matrix.cols);
    cross_check(&matrix, &x, 16, 1e-9).expect("all SpMV implementations agree");
    println!(
        "matrix {}: {} rows, {} nnz — implementations cross-checked\n",
        SuiteMatrix::Hugetrace00020.name(),
        matrix.rows,
        matrix.nnz()
    );

    for reorder in [Reordering::None, Reordering::Rcm] {
        let a = reorder.apply(&matrix);
        for algo in [SpmvAlgorithm::Mkl, SpmvAlgorithm::Merge] {
            let request = ProfileRequest {
                profile: spmv_profile(&a, algo, &daemon.machine.spec, threads, 10_000),
                command: format!("spmv --algo {} --reorder {}", algo.label(), reorder.label()),
                generic_events: vec![
                    "SCALAR_DP_INSTRUCTIONS".into(),
                    "AVX512_DP_INSTRUCTIONS".into(),
                    "TOTAL_MEMORY_OPERATIONS".into(),
                    "RAPL_ENERGY_PKG".into(),
                ],
                freq_hz: 4.0,
                pinning: PinningStrategy::Balanced,
            };
            let outcome = daemon.profile(&request).expect("profiling succeeds");
            println!(
                "{}",
                observation_report(
                    &daemon.ts,
                    &daemon.layer,
                    "csl",
                    &outcome.observation,
                    &[
                        "TOTAL_MEMORY_OPERATIONS",
                        "AVX512_DP_INSTRUCTIONS",
                        "RAPL_ENERGY_PKG"
                    ],
                )
            );
        }
    }

    // The last observation as a Listing-2 style KB entry...
    let obs = daemon
        .kb
        .observations
        .last()
        .expect("observations recorded");
    println!(
        "ObservationInterface entry (Listing 2 shape):\n{}\n",
        serde_json::to_string_pretty(&obs.to_json()).unwrap()
    );
    // ...and its Listing-3 auto-generated recall queries.
    println!("auto-generated queries (Listing 3):");
    for q in queries_for_observation(obs) {
        println!("  {q}");
    }
}
