//! GPU integration demo (§III-D / Listing 4): attach an NVIDIA GV100 to a
//! target, probe it, inspect the Listing-4 style GPU Interface in the KB,
//! and profile a GPU kernel through the ncu wrapper flow.
//!
//! ```sh
//! cargo run --example gpu_probe
//! ```

use pmove::core::kb::builder::build_kb;
use pmove::core::probe::ProbeReport;
use pmove::hwsim::gpu::{profile_kernel, GpuKernelProfile, GpuSpec};
use pmove::hwsim::{Machine, MachineSpec};
use pmove::jsonld::serialize::interface_to_json;

fn main() {
    // A CSL server with a Quadro GV100 attached.
    let mut spec = MachineSpec::csl();
    spec.gpus.push(GpuSpec::gv100());
    let machine = Machine::new(spec);

    // Probing covers nvidia-smi, DeviceQuery, NVML and ncu metadata.
    let report = ProbeReport::collect(&machine);
    println!(
        "probe found {} GPU(s); smi record:\n{}\n",
        report.gpus().len(),
        serde_json::to_string_pretty(&report.gpus()[0]["smi"]).unwrap()
    );

    // The KB encodes the device as a DTDL Interface (Listing 4).
    let kb = build_kb(&report).expect("KB builds");
    let gpu = kb.by_name("gpu0").expect("gpu twin");
    let doc = interface_to_json(gpu);
    println!("GPU Interface entry (Listing 4 shape), first contents:");
    for c in doc["contents"].as_array().unwrap().iter().take(6) {
        println!("{}", serde_json::to_string(c).unwrap());
    }
    println!(
        "... {} contents total (properties + SW/HW telemetry)\n",
        doc["contents"].as_array().unwrap().len()
    );

    // HW telemetry for GPUs goes through the ncu wrapper: P-MoVE wraps the
    // kernel launch and ingests the report.
    let kernel = GpuKernelProfile {
        name: "spmv_csr_kernel".into(),
        flops_f64: 2 * 48_000_000,
        dram_read_bytes: 48_000_000 * 12,
        dram_write_bytes: 16_002_413 * 8,
        threads_launched: 1 << 22,
    };
    let ncu = profile_kernel(&GpuSpec::gv100(), &kernel);
    println!("ncu report for {} ({:.1} µs):", ncu.kernel, ncu.duration_us);
    for (name, value) in &ncu.metrics {
        println!("  {name:<55} {value:.3e}");
    }
}
