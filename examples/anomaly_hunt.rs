//! Fleet-level anomaly hunting: monitor a small cluster, inject a rogue
//! pinned workload on one node, detect the anomalous thread with the
//! level-view scan, and walk the KB focus path to the root — the
//! root-cause workflow §III-B describes.
//!
//! ```sh
//! cargo run --example anomaly_hunt
//! ```

use pmove::core::analysis::{anomaly_scan, trace};
use pmove::core::profiles::stream_kernel_profile;
use pmove::core::telemetry::cluster::Cluster;
use pmove::core::telemetry::pinning::PinningStrategy;
use pmove::core::telemetry::scenario_b::ProfileRequest;
use pmove::hwsim::vendor::IsaExt;
use pmove::kernels::StreamKernel;

fn main() {
    let mut cluster = Cluster::from_presets(&["icl", "csl", "zen3"]).expect("cluster up");
    println!(
        "cluster up: {} nodes, {} component twins in SUPERDB",
        cluster.nodes.len(),
        cluster.fleet_twin_count()
    );

    // A rogue long-running hog pins itself to csl's cpu0: Scenario B
    // profiles its first burst, then the process keeps running in the
    // background while Scenario A monitors the fleet.
    {
        let node = cluster.node_mut("csl").expect("csl node");
        let request = ProfileRequest {
            profile: stream_kernel_profile(StreamKernel::Peakflops, 1 << 36, 1, IsaExt::Scalar),
            command: "rogue_hog".into(),
            generic_events: vec!["CPU_CYCLES".into()],
            freq_hz: 2.0,
            pinning: PinningStrategy::Compact,
        };
        let outcome = node.profile(&request).expect("hog profiled");
        println!(
            "profiled rogue workload on csl cpu0 ({:.1} s burst)",
            outcome.execution.duration_s
        );
        node.set_background_load(&[(0, 0.98)]); // the hog keeps running
    }

    // Fleet-wide Scenario A sweep.
    cluster.monitor_all(30.0, 2.0);
    for (node, load) in cluster.load_summary() {
        println!("  {node:<5} mean load {load:.2}");
    }
    if let Some((node, norm)) = cluster.hottest_node() {
        println!("hottest node by normalized load: {node} ({norm:.3} per thread)");
    }

    // Per-node anomaly scan over the thread level view.
    for daemon in &cluster.nodes {
        let found = anomaly_scan(&daemon.ts, "kernel_percpu_cpu_idle", None, 2.5);
        if found.is_empty() {
            println!("{}: no thread-level anomalies", daemon.kb.machine_key);
            continue;
        }
        for anomaly in &found {
            println!(
                "{}: anomaly on {} (z = {:.1}, idle {:.3} vs level mean {:.3})",
                daemon.kb.machine_key,
                anomaly.field,
                anomaly.z_score,
                anomaly.value,
                anomaly.level_mean
            );
            let steps = trace::trace_anomaly(&daemon.kb, &daemon.ts, anomaly);
            print!("{}", trace::format_trace(&steps));
        }
    }

    // Retention keeps the fleet's storage bounded.
    let removed = cluster.enforce_retention(15_000_000_000);
    println!(
        "retention removed {} old rows across the fleet",
        removed.iter().map(|(_, n)| n).sum::<usize>()
    );
}
