//! # pmove-obs — self-observability substrate
//!
//! Deterministic, dependency-free metrics and span tracing for the P-MoVE
//! pipeline itself ("who monitors the monitor"). The design constraints,
//! in order:
//!
//! 1. **Bit-reproducible**: nothing in this crate reads wall-clock time or
//!    any other ambient nondeterminism. Span timestamps are supplied by
//!    the caller from the hwsim virtual clock, and every export walks
//!    `BTreeMap`s so ordering is stable. Two same-seed pipeline runs
//!    produce identical snapshots.
//! 2. **Cheap when hot**: counters and histograms are lock-free atomics;
//!    the registry lock is only taken when a handle is first created (or a
//!    span is recorded). Handles are `Arc`s meant to be hoisted out of hot
//!    loops.
//! 3. **Explicit handles, no globals**: a [`Registry`] is constructed per
//!    pipeline (daemon, shipper, benchmark cell) and threaded through.
//!    This keeps parallel tests and multi-node clusters from polluting
//!    each other's telemetry.
//!
//! The crate deliberately has no serde/tsdb dependency; `pmove-tsdb`
//! provides the exporter that flushes a [`Snapshot`] into time series
//! under the `pmove.self.*` namespace.
//!
//! ```
//! use pmove_obs::Registry;
//!
//! let reg = Registry::new();
//! let shipped = reg.counter("values_shipped", &[("host", "skx")]);
//! shipped.add(128);
//!
//! let lat = reg.histogram("ingest_ns", &[], pmove_obs::latency_buckets());
//! lat.record(1_500);
//!
//! let span = reg.span_enter("daemon.step2_build_kb", 1_000);
//! span.finish(41_000);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters[0].1, 128);
//! ```

mod audit;
mod metrics;
mod prometheus;
mod slo;
mod snapshot;
mod span;
mod trace;

pub use audit::{AuditError, ConservationAudit, ConservationCell};
pub use metrics::{latency_buckets, Counter, Gauge, Histogram, MetricKey, Registry};
pub use slo::{AlertState, BurnWindow, Objective, SloEngine, SloSpec, Transition};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
pub use span::SpanGuard;
pub use trace::{
    SpanId, StageShare, TraceConfig, TraceContext, TraceId, TraceSpan, TraceTree, Tracer,
    TracerStats,
};
