//! Declarative SLOs with multi-window error-budget burn-rate alerting.
//!
//! An [`SloSpec`] names an objective over metrics that already exist in a
//! [`crate::Registry`] (a latency histogram, a conservation equation, a
//! quorum-health gauge) plus a target (e.g. 0.999 = 99.9% of events
//! good). The [`SloEngine`] is fed snapshots on the *virtual* clock and,
//! per configured window, computes the burn rate
//!
//! ```text
//! burn = (bad events in window / total events in window) / (1 - target)
//! ```
//!
//! so `burn == 1.0` means "spending budget exactly at the rate that
//! exhausts it at the window's end". Fast windows with high thresholds
//! page on sudden regressions; slow windows with low thresholds warn on
//! smoulder. The alert state machine is `ok → warning → page` with
//! deterministic hysteresis: upgrades are immediate, downgrades require
//! `clear_evals` consecutive quiet evaluations. Everything derives from
//! the snapshot and `now_ns`, so two same-seed runs produce identical
//! alert timelines — the timeline is golden-testable.
//!
//! Meta-metrics are published back into the registry under `pmove.slo.*`
//! (the self-exporter treats names already starting with `pmove.` as
//! fully qualified).

use std::collections::VecDeque;
use std::sync::Arc;

use crate::metrics::Registry;
use crate::snapshot::Snapshot;

/// What an SLO measures, over metrics already in the registry.
#[derive(Debug, Clone)]
pub enum Objective {
    /// Good events are histogram samples at or below `threshold_ns`.
    /// Counts are summed across every label set of `histogram`.
    LatencyBelow {
        /// Histogram metric name (e.g. `tsdb.ingest_ns`).
        histogram: String,
        /// Samples above this are budget burn.
        threshold_ns: u64,
    },
    /// Conservation: `offered` must equal the accounted counters plus
    /// in-flight gauges; any imbalance is budget burn.
    Conservation {
        /// Counter of offered values.
        offered: String,
        /// Counters of terminal dispositions.
        accounted: Vec<String>,
        /// Gauges of values still in flight (spill queue, hints).
        pending_gauges: Vec<String>,
    },
    /// The gauge must be at least `min` at evaluation time; each
    /// evaluation contributes one event (good or bad).
    GaugeAtLeast {
        /// Gauge metric name (e.g. `tsdb.repl.replicas_healthy`).
        gauge: String,
        /// Minimum healthy value.
        min: f64,
    },
    /// The gauge holds a virtual-clock timestamp in nanoseconds (e.g.
    /// `store.scrub.last_full_pass`) that must be no older than
    /// `max_age_ns` at evaluation time; each evaluation contributes one
    /// event. A gauge that has never been published is vacuously good —
    /// the objective watches staleness of a heartbeat that exists, not
    /// absence of the subsystem (a store without scrubbing enabled must
    /// not page).
    GaugeMaxAge {
        /// Gauge metric name holding the last-completion timestamp (ns).
        gauge: String,
        /// Oldest acceptable age at evaluation time.
        max_age_ns: u64,
    },
}

/// Alert severity ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Within budget.
    Ok,
    /// Slow-window burn exceeded.
    Warning,
    /// Fast-window burn exceeded; a human would be paged.
    Page,
}

impl std::fmt::Display for AlertState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AlertState::Ok => "ok",
            AlertState::Warning => "warning",
            AlertState::Page => "page",
        })
    }
}

/// One burn-rate evaluation window.
#[derive(Debug, Clone)]
pub struct BurnWindow {
    /// Label for timelines and meta-metrics (`fast`, `slow`).
    pub name: String,
    /// Window length on the virtual clock.
    pub window_ns: u64,
    /// Fire when the windowed burn rate reaches this multiple.
    pub burn_threshold: f64,
    /// Severity this window escalates to.
    pub severity: AlertState,
}

/// A declarative service-level objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// SLO name (`ingest_latency`, `quorum_availability`, ...).
    pub name: String,
    /// What is measured.
    pub objective: Objective,
    /// Fraction of events that must be good (0 < target < 1).
    pub target: f64,
    /// Evaluation windows, typically one fast + one slow.
    pub windows: Vec<BurnWindow>,
    /// Consecutive quiet evaluations required before downgrading.
    pub clear_evals: u32,
}

impl SloSpec {
    /// The default serving-latency objective: 99% of requests through the
    /// multi-tenant serving layer complete below `threshold_ns`
    /// (submit → completion, measured over the `pmove.serve.latency_ns`
    /// histogram). Uses the standard burn ladder — fast 10 s window
    /// paging at 8x, slow 60 s window warning at 2x, two quiet
    /// evaluations to clear. `threshold_ns` must be one of the registry's
    /// latency bucket bounds so budget accounting is exact.
    pub fn serving_p99(threshold_ns: u64) -> SloSpec {
        SloSpec {
            name: "serving_p99".into(),
            objective: Objective::LatencyBelow {
                histogram: "pmove.serve.latency_ns".into(),
                threshold_ns,
            },
            target: 0.99,
            windows: vec![
                BurnWindow {
                    name: "fast".into(),
                    window_ns: 10_000_000_000,
                    burn_threshold: 8.0,
                    severity: AlertState::Page,
                },
                BurnWindow {
                    name: "slow".into(),
                    window_ns: 60_000_000_000,
                    burn_threshold: 2.0,
                    severity: AlertState::Warning,
                },
            ],
            clear_evals: 2,
        }
    }

    /// The default scrub-staleness objective: the background scrubber's
    /// `store.scrub.last_full_pass` heartbeat must be no older than
    /// `max_age_ns` (normally a small multiple of the configured full-pass
    /// period). Silent scrubber death is exactly the failure mode that
    /// lets latent corruption accumulate unnoticed, so the fast window
    /// pages rather than warns; stores that never enabled scrubbing never
    /// publish the gauge and are vacuously healthy.
    pub fn scrub_staleness(max_age_ns: u64) -> SloSpec {
        SloSpec {
            name: "scrub_staleness".into(),
            objective: Objective::GaugeMaxAge {
                gauge: "store.scrub.last_full_pass".into(),
                max_age_ns,
            },
            target: 0.9,
            windows: vec![
                BurnWindow {
                    name: "fast".into(),
                    window_ns: 10_000_000_000,
                    burn_threshold: 2.0,
                    severity: AlertState::Page,
                },
                BurnWindow {
                    name: "slow".into(),
                    window_ns: 60_000_000_000,
                    burn_threshold: 1.0,
                    severity: AlertState::Warning,
                },
            ],
            clear_evals: 2,
        }
    }

    /// The backup-staleness objective: the backup scheduler's
    /// `store.backup.last_success` heartbeat (the fence timestamp of the
    /// newest complete generation) must be no older than `max_age_ns`.
    /// Backups that silently stop are worthless precisely when they are
    /// finally needed, so — like scrub staleness — the fast window pages.
    /// Databases that never enabled backups never publish the gauge and
    /// are vacuously healthy.
    pub fn backup_staleness(max_age_ns: u64) -> SloSpec {
        SloSpec {
            name: "backup_staleness".into(),
            objective: Objective::GaugeMaxAge {
                gauge: "store.backup.last_success".into(),
                max_age_ns,
            },
            target: 0.9,
            windows: vec![
                BurnWindow {
                    name: "fast".into(),
                    window_ns: 10_000_000_000,
                    burn_threshold: 2.0,
                    severity: AlertState::Page,
                },
                BurnWindow {
                    name: "slow".into(),
                    window_ns: 60_000_000_000,
                    burn_threshold: 1.0,
                    severity: AlertState::Warning,
                },
            ],
            clear_evals: 2,
        }
    }
}

/// One alert state transition, timestamped on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// When the transition happened.
    pub t_ns: u64,
    /// Which SLO.
    pub slo: String,
    /// Previous state.
    pub from: AlertState,
    /// New state.
    pub to: AlertState,
    /// Window that drove the change (empty on hysteresis downgrade).
    pub window: String,
    /// Burn rate of the driving window at transition time.
    pub burn: f64,
}

struct Tracker {
    spec: SloSpec,
    /// Cumulative (t_ns, bad, total) samples, pruned to the longest window.
    history: VecDeque<(u64, f64, f64)>,
    state: AlertState,
    quiet_streak: u32,
    /// Internal accumulators for point-in-time objectives.
    eval_bad: f64,
    eval_total: f64,
}

impl Tracker {
    fn measure(&mut self, snap: &Snapshot, now_ns: u64) -> (f64, f64) {
        match &self.spec.objective {
            Objective::LatencyBelow {
                histogram,
                threshold_ns,
            } => {
                let (mut bad, mut total) = (0.0, 0.0);
                for (key, h) in &snap.histograms {
                    if key.name != *histogram {
                        continue;
                    }
                    total += h.count as f64;
                    let mut below = 0u64;
                    for (i, c) in h.buckets.iter().enumerate() {
                        if i < h.bounds.len() && h.bounds[i] <= *threshold_ns {
                            below += c;
                        }
                    }
                    bad += (h.count - below.min(h.count)) as f64;
                }
                (bad, total)
            }
            Objective::Conservation {
                offered,
                accounted,
                pending_gauges,
            } => {
                let off = snap.counter_total(offered) as f64;
                let acc: f64 = accounted.iter().map(|n| snap.counter_total(n) as f64).sum();
                let pending: f64 = pending_gauges
                    .iter()
                    .map(|n| {
                        snap.gauges
                            .iter()
                            .filter(|(k, _)| k.name == *n)
                            .map(|(_, v)| *v)
                            .sum::<f64>()
                    })
                    .sum();
                ((off - acc - pending).abs(), off)
            }
            Objective::GaugeAtLeast { gauge, min } => {
                let healthy = snap
                    .gauges
                    .iter()
                    .filter(|(k, _)| k.name == *gauge)
                    .map(|(_, v)| *v)
                    .fold(f64::INFINITY, f64::min);
                self.eval_total += 1.0;
                if healthy.is_finite() && healthy < *min {
                    self.eval_bad += 1.0;
                }
                (self.eval_bad, self.eval_total)
            }
            Objective::GaugeMaxAge { gauge, max_age_ns } => {
                // Oldest matching label set is the laggard that matters.
                let oldest = snap
                    .gauges
                    .iter()
                    .filter(|(k, _)| k.name == *gauge)
                    .map(|(_, v)| *v)
                    .fold(f64::INFINITY, f64::min);
                self.eval_total += 1.0;
                if oldest.is_finite() && now_ns.saturating_sub(oldest as u64) > *max_age_ns {
                    self.eval_bad += 1.0;
                }
                (self.eval_bad, self.eval_total)
            }
        }
    }

    /// Burn rate over the trailing `window_ns` ending at the newest
    /// history entry. Uses the oldest sample inside the window as the
    /// baseline (or zero activity when only one sample exists).
    fn burn(&self, window_ns: u64) -> f64 {
        let Some(&(now, bad_now, tot_now)) = self.history.back() else {
            return 0.0;
        };
        let cutoff = now.saturating_sub(window_ns);
        // Baseline: the newest sample at or before the cutoff; if none,
        // the window covers the whole history and the baseline is zero.
        let (bad_0, tot_0) = self
            .history
            .iter()
            .rev()
            .find(|(t, _, _)| *t <= cutoff)
            .map(|&(_, b, t)| (b, t))
            .unwrap_or((0.0, 0.0));
        let d_tot = tot_now - tot_0;
        if d_tot <= 0.0 {
            return 0.0;
        }
        let err_ratio = ((bad_now - bad_0) / d_tot).clamp(0.0, 1.0);
        let budget = (1.0 - self.spec.target).max(f64::EPSILON);
        err_ratio / budget
    }
}

/// Evaluates a set of SLOs against registry snapshots on the virtual
/// clock, maintaining alert state and a transition timeline.
pub struct SloEngine {
    trackers: Vec<Tracker>,
    timeline: Vec<Transition>,
    meta: Option<Arc<Registry>>,
}

impl SloEngine {
    /// Engine with no objectives; add them with [`SloEngine::add`].
    pub fn new() -> SloEngine {
        SloEngine {
            trackers: Vec::new(),
            timeline: Vec::new(),
            meta: None,
        }
    }

    /// Publish `pmove.slo.*` meta-metrics into `registry` on every
    /// evaluation.
    pub fn with_meta(mut self, registry: Arc<Registry>) -> SloEngine {
        self.meta = Some(registry);
        self
    }

    /// Register an objective.
    pub fn add(&mut self, spec: SloSpec) {
        self.trackers.push(Tracker {
            spec,
            history: VecDeque::new(),
            state: AlertState::Ok,
            quiet_streak: 0,
            eval_bad: 0.0,
            eval_total: 0.0,
        });
    }

    /// Number of registered SLOs.
    pub fn len(&self) -> usize {
        self.trackers.len()
    }

    /// True when no SLOs are registered.
    pub fn is_empty(&self) -> bool {
        self.trackers.is_empty()
    }

    /// Evaluate every SLO against `snap` at virtual time `now_ns`.
    /// Returns the transitions that fired during this evaluation.
    pub fn evaluate(&mut self, snap: &Snapshot, now_ns: u64) -> Vec<Transition> {
        let mut fired = Vec::new();
        for tr in self.trackers.iter_mut() {
            let (bad, total) = tr.measure(snap, now_ns);
            tr.history.push_back((now_ns, bad, total));
            let longest = tr
                .spec
                .windows
                .iter()
                .map(|w| w.window_ns)
                .max()
                .unwrap_or(0);
            // Keep one sample at or before the horizon as the baseline.
            let horizon = now_ns.saturating_sub(longest);
            while tr.history.len() > 2 && tr.history[1].0 <= horizon {
                tr.history.pop_front();
            }

            let mut desired = AlertState::Ok;
            let mut driver: Option<(&BurnWindow, f64)> = None;
            for w in &tr.spec.windows {
                let burn = tr.burn(w.window_ns);
                if let Some(meta) = &self.meta {
                    meta.gauge(
                        "pmove.slo.burn_rate",
                        &[("slo", tr.spec.name.as_str()), ("window", w.name.as_str())],
                    )
                    .set(burn);
                }
                if burn >= w.burn_threshold && w.severity > desired {
                    desired = w.severity;
                    driver = Some((w, burn));
                }
            }

            let prev = tr.state;
            let mut next = prev;
            if desired > prev {
                next = desired;
                tr.quiet_streak = 0;
            } else if desired < prev {
                tr.quiet_streak += 1;
                if tr.quiet_streak >= tr.spec.clear_evals {
                    next = desired;
                    tr.quiet_streak = 0;
                }
            } else {
                tr.quiet_streak = 0;
            }

            if next != prev {
                let (window, burn) = driver.map(|(w, b)| (w.name.clone(), b)).unwrap_or_default();
                let t = Transition {
                    t_ns: now_ns,
                    slo: tr.spec.name.clone(),
                    from: prev,
                    to: next,
                    window,
                    burn,
                };
                fired.push(t.clone());
                self.timeline.push(t);
                if let Some(meta) = &self.meta {
                    meta.counter("pmove.slo.transitions", &[("slo", tr.spec.name.as_str())])
                        .inc();
                }
            }
            tr.state = next;
            if let Some(meta) = &self.meta {
                meta.gauge("pmove.slo.state", &[("slo", tr.spec.name.as_str())])
                    .set(match next {
                        AlertState::Ok => 0.0,
                        AlertState::Warning => 1.0,
                        AlertState::Page => 2.0,
                    });
            }
        }
        fired
    }

    /// Current state of the named SLO.
    pub fn state(&self, name: &str) -> Option<AlertState> {
        self.trackers
            .iter()
            .find(|t| t.spec.name == name)
            .map(|t| t.state)
    }

    /// Every transition so far, in evaluation order.
    pub fn timeline(&self) -> &[Transition] {
        &self.timeline
    }

    /// Deterministic text rendering of the alert timeline, suitable for
    /// goldens.
    pub fn render_timeline(&self) -> String {
        if self.timeline.is_empty() {
            return "alert timeline: (no transitions)\n".to_string();
        }
        let mut out = String::from("alert timeline:\n");
        for t in &self.timeline {
            out.push_str(&format!(
                "  t={}ns {} {} -> {}",
                t.t_ns, t.slo, t.from, t.to
            ));
            if !t.window.is_empty() {
                out.push_str(&format!(" window={} burn={:.2}", t.window, t.burn));
            }
            out.push('\n');
        }
        out
    }
}

impl Default for SloEngine {
    fn default() -> SloEngine {
        SloEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::latency_buckets;

    fn latency_spec() -> SloSpec {
        SloSpec {
            name: "ingest_latency".into(),
            objective: Objective::LatencyBelow {
                histogram: "tsdb.ingest_ns".into(),
                threshold_ns: 100_000,
            },
            target: 0.99,
            windows: vec![
                BurnWindow {
                    name: "fast".into(),
                    window_ns: 5_000_000_000,
                    burn_threshold: 8.0,
                    severity: AlertState::Page,
                },
                BurnWindow {
                    name: "slow".into(),
                    window_ns: 30_000_000_000,
                    burn_threshold: 2.0,
                    severity: AlertState::Warning,
                },
            ],
            clear_evals: 3,
        }
    }

    #[test]
    fn healthy_traffic_stays_ok() {
        let reg = Registry::new();
        let h = reg.histogram("tsdb.ingest_ns", &[], latency_buckets());
        let mut eng = SloEngine::new();
        eng.add(latency_spec());
        for tick in 1..=20u64 {
            for _ in 0..50 {
                h.record(5_000);
            }
            let fired = eng.evaluate(&reg.snapshot(), tick * 1_000_000_000);
            assert!(fired.is_empty());
        }
        assert_eq!(eng.state("ingest_latency"), Some(AlertState::Ok));
    }

    #[test]
    fn p99_regression_pages_then_hysteresis_clears() {
        let reg = Registry::new();
        let h = reg.histogram("tsdb.ingest_ns", &[], latency_buckets());
        let mut eng = SloEngine::new();
        eng.add(latency_spec());
        // 5 healthy ticks, then 3 regressed ticks (half the samples slow),
        // then healthy again.
        let mut page_at = None;
        for tick in 1..=20u64 {
            let slow = (6..=8).contains(&tick);
            for i in 0..50 {
                h.record(if slow && i % 2 == 0 { 900_000 } else { 5_000 });
            }
            let fired = eng.evaluate(&reg.snapshot(), tick * 1_000_000_000);
            for t in fired {
                if t.to == AlertState::Page && page_at.is_none() {
                    page_at = Some(t.t_ns);
                }
            }
        }
        // Fast window sees 10% errors against a 1% budget: burn ~10
        // fires the page threshold on the first regressed tick.
        assert_eq!(page_at, Some(6_000_000_000));
        // The fast window drained and hysteresis downgraded, but the slow
        // window still remembers the burn: warning, not ok.
        assert_eq!(eng.state("ingest_latency"), Some(AlertState::Warning));
        let tl = eng.render_timeline();
        assert!(tl.contains("ingest_latency ok -> page window=fast"), "{tl}");
        assert!(tl.contains("ingest_latency page -> warning"), "{tl}");
    }

    #[test]
    fn alert_timeline_is_deterministic() {
        let run = || {
            let reg = Registry::new();
            let h = reg.histogram("tsdb.ingest_ns", &[], latency_buckets());
            let mut eng = SloEngine::new();
            eng.add(latency_spec());
            for tick in 1..=12u64 {
                for i in 0..20 {
                    h.record(if tick == 4 && i < 10 {
                        2_000_000
                    } else {
                        2_000
                    });
                }
                eng.evaluate(&reg.snapshot(), tick * 1_000_000_000);
            }
            eng.render_timeline()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gauge_objective_counts_eval_ticks() {
        let reg = Registry::new();
        let g = reg.gauge("tsdb.repl.replicas_healthy", &[]);
        g.set(3.0);
        let mut eng = SloEngine::new();
        eng.add(SloSpec {
            name: "quorum_availability".into(),
            objective: Objective::GaugeAtLeast {
                gauge: "tsdb.repl.replicas_healthy".into(),
                min: 2.0,
            },
            target: 0.9,
            windows: vec![BurnWindow {
                name: "fast".into(),
                window_ns: 4_000_000_000,
                burn_threshold: 2.0,
                severity: AlertState::Page,
            }],
            clear_evals: 2,
        });
        for tick in 1..=3u64 {
            assert!(eng
                .evaluate(&reg.snapshot(), tick * 1_000_000_000)
                .is_empty());
        }
        g.set(1.0); // quorum lost
        let fired = eng.evaluate(&reg.snapshot(), 4_000_000_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].to, AlertState::Page);
        assert_eq!(eng.state("quorum_availability"), Some(AlertState::Page));
    }

    #[test]
    fn gauge_max_age_pages_on_stale_heartbeat_only() {
        let reg = Registry::new();
        let mut eng = SloEngine::new();
        eng.add(SloSpec::scrub_staleness(5_000_000_000));
        // The gauge does not exist yet: vacuously good, never fires.
        for tick in 1..=4u64 {
            assert!(eng
                .evaluate(&reg.snapshot(), tick * 1_000_000_000)
                .is_empty());
        }
        // A fresh full pass keeps the objective quiet...
        let g = reg.gauge("store.scrub.last_full_pass", &[("db", "pmove")]);
        g.set(5.0e9);
        assert!(eng.evaluate(&reg.snapshot(), 6_000_000_000).is_empty());
        assert_eq!(eng.state("scrub_staleness"), Some(AlertState::Ok));
        // ...but a scrubber that silently stops pages once the heartbeat
        // exceeds the allowed age.
        let mut paged = false;
        for tick in 7..=20u64 {
            for t in eng.evaluate(&reg.snapshot(), tick * 1_000_000_000) {
                if t.to == AlertState::Page {
                    paged = true;
                }
            }
        }
        assert!(paged, "stale scrub heartbeat must page");
        // Scrubbing resumes: heartbeat fresh again, hysteresis clears.
        let mut cleared = false;
        for tick in 21..=90u64 {
            g.set(tick as f64 * 1e9);
            for t in eng.evaluate(&reg.snapshot(), tick * 1_000_000_000) {
                if t.to == AlertState::Ok {
                    cleared = true;
                }
            }
        }
        assert!(cleared, "fresh heartbeat must clear the alert");
    }

    #[test]
    fn conservation_objective_flags_imbalance() {
        let reg = Registry::new();
        reg.counter("pcp.transport.values_offered", &[]).add(100);
        reg.counter("pcp.transport.values_inserted", &[]).add(90);
        let mut eng = SloEngine::new().with_meta(Registry::shared());
        eng.add(SloSpec {
            name: "conservation".into(),
            objective: Objective::Conservation {
                offered: "pcp.transport.values_offered".into(),
                accounted: vec!["pcp.transport.values_inserted".into()],
                pending_gauges: vec!["pcp.resilience.spill_pending".into()],
            },
            target: 0.999,
            windows: vec![BurnWindow {
                name: "fast".into(),
                window_ns: 10_000_000_000,
                burn_threshold: 1.0,
                severity: AlertState::Page,
            }],
            clear_evals: 1,
        });
        let fired = eng.evaluate(&reg.snapshot(), 1_000_000_000);
        assert_eq!(fired.len(), 1, "10% imbalance must fire");
        // Balance the books via the pending gauge: imbalance stops
        // growing, the window drains, hysteresis clears.
        reg.gauge("pcp.resilience.spill_pending", &[]).set(10.0);
        let mut cleared = false;
        for tick in 2..=30u64 {
            for t in eng.evaluate(&reg.snapshot(), tick * 1_000_000_000) {
                if t.to == AlertState::Ok {
                    cleared = true;
                }
            }
        }
        assert!(cleared);
    }

    #[test]
    fn serving_p99_spec_watches_the_serving_histogram() {
        let spec = SloSpec::serving_p99(5_000_000);
        assert_eq!(spec.name, "serving_p99");
        match &spec.objective {
            Objective::LatencyBelow {
                histogram,
                threshold_ns,
            } => {
                assert_eq!(histogram, "pmove.serve.latency_ns");
                assert_eq!(*threshold_ns, 5_000_000);
                // Threshold must be an exact bucket bound so the budget
                // accounting has no rounding error.
                assert!(latency_buckets().contains(threshold_ns));
            }
            other => panic!("unexpected objective {other:?}"),
        }
        // Fast pages, slow warns.
        assert_eq!(spec.windows[0].severity, AlertState::Page);
        assert_eq!(spec.windows[1].severity, AlertState::Warning);
    }

    #[test]
    fn serving_tail_regression_pages() {
        let reg = Registry::new();
        let h = reg.histogram(
            "pmove.serve.latency_ns",
            &[("class", "interactive")],
            latency_buckets(),
        );
        let mut eng = SloEngine::new();
        eng.add(SloSpec::serving_p99(5_000_000));
        // Healthy serving latencies: no alert.
        for tick in 1..=5u64 {
            for _ in 0..100 {
                h.record(400_000);
            }
            assert!(eng
                .evaluate(&reg.snapshot(), tick * 1_000_000_000)
                .is_empty());
        }
        // Queueing collapse: most requests land over the objective.
        let mut paged = false;
        for tick in 6..=12u64 {
            for i in 0..100 {
                h.record(if i % 4 != 0 { 40_000_000 } else { 400_000 });
            }
            for t in eng.evaluate(&reg.snapshot(), tick * 1_000_000_000) {
                if t.to == AlertState::Page {
                    paged = true;
                }
            }
        }
        assert!(paged, "sustained serving-tail regression must page");
    }
}
