//! Loss-conservation audit.
//!
//! The transport layer classifies every offered metric value into exactly
//! one of three fates: inserted, zeroed (inserted as a zero under
//! saturation), or lost. Conservation therefore demands
//!
//! ```text
//! values_offered == values_inserted + values_zeroed + values_lost
//! ```
//!
//! per metric stream and per run. [`ConservationAudit`] collects named
//! cells (e.g. one per Table III host × frequency × metric-count cell) and
//! verifies the identity exactly — any imbalance means the pipeline
//! dropped or double-counted telemetry and is a bug, not noise.

use std::fmt;

/// One audited stream: the four conserved counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationCell {
    /// Values the sampler offered to the transport.
    pub offered: u64,
    /// Values inserted with their true payload.
    pub inserted: u64,
    /// Values inserted as zeros under link saturation.
    pub zeroed: u64,
    /// Values dropped entirely.
    pub lost: u64,
}

impl ConservationCell {
    /// True when the conservation identity holds exactly.
    pub fn holds(&self) -> bool {
        self.offered == self.inserted + self.zeroed + self.lost
    }

    /// Signed imbalance (`offered - accounted`); 0 when conserved.
    pub fn imbalance(&self) -> i64 {
        self.offered as i64 - (self.inserted + self.zeroed + self.lost) as i64
    }
}

/// A violated cell, with its name and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// Cell label (e.g. `skx/8Hz/5m`).
    pub cell: String,
    /// The counters that failed to balance.
    pub counters: ConservationCell,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        write!(
            f,
            "conservation violated in {}: offered {} != inserted {} + zeroed {} + lost {} \
             (imbalance {})",
            self.cell,
            c.offered,
            c.inserted,
            c.zeroed,
            c.lost,
            c.imbalance()
        )
    }
}

impl std::error::Error for AuditError {}

/// Collects cells across a run and verifies all of them.
#[derive(Debug, Default)]
pub struct ConservationAudit {
    cells: Vec<(String, ConservationCell)>,
}

impl ConservationAudit {
    /// Empty audit.
    pub fn new() -> ConservationAudit {
        ConservationAudit::default()
    }

    /// Record one cell's counters under `name`.
    pub fn record(&mut self, name: &str, cell: ConservationCell) {
        self.cells.push((name.to_string(), cell));
    }

    /// Number of recorded cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Verify every recorded cell; `Ok(cells_checked)` or the first
    /// violation in recording order.
    pub fn verify(&self) -> Result<usize, AuditError> {
        for (name, cell) in &self.cells {
            if !cell.holds() {
                return Err(AuditError {
                    cell: name.clone(),
                    counters: *cell,
                });
            }
        }
        Ok(self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cells_pass() {
        let mut audit = ConservationAudit::new();
        audit.record(
            "skx/2Hz/4m",
            ConservationCell {
                offered: 100,
                inserted: 90,
                zeroed: 6,
                lost: 4,
            },
        );
        assert_eq!(audit.verify(), Ok(1));
        assert!(!audit.is_empty());
    }

    #[test]
    fn imbalance_is_reported_with_cell_name() {
        let mut audit = ConservationAudit::new();
        let bad = ConservationCell {
            offered: 100,
            inserted: 90,
            zeroed: 6,
            lost: 3,
        };
        audit.record("icl/32Hz/6m", bad);
        let err = audit.verify().unwrap_err();
        assert_eq!(err.cell, "icl/32Hz/6m");
        assert_eq!(err.counters.imbalance(), 1);
        assert!(err.to_string().contains("icl/32Hz/6m"));
        assert!(!bad.holds());
    }
}
