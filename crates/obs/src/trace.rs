//! Deterministic causal tracing: trace trees, a flight recorder, and a
//! critical-path analyzer.
//!
//! Where `span.rs` aggregates durations *per name*, this module follows one
//! request (a sampled telemetry report, a query, a daemon boot) through
//! every stage it touches and keeps the resulting tree. The design rules
//! match the rest of the crate:
//!
//! * **Deterministic**: `TraceId`s derive from a seed and a sequence
//!   number via SplitMix64; timestamps come from the caller's virtual
//!   clock; the head-sampling decision hashes the trace id, never a
//!   wall clock or RNG. Two same-seed runs record identical trees.
//! * **Sampling-controlled**: head sampling keeps `sample_rate` of
//!   traces. Unsampled traces cost two atomic increments and no lock;
//!   a fault site may *upgrade* an unsampled trace mid-flight
//!   ([`Tracer::mark_fault`]), which records from the fault onward —
//!   the "always sample on fault" policy.
//! * **Bounded**: finished trees land in a drop-oldest ring (the
//!   flight recorder), so memory is O(ring × spans) forever.
//!
//! Context propagation is by value: [`TraceContext`] is `Copy` and rides
//! on batches across retries, spill queues, hinted handoff, and quorum
//! fan-out. A context is terminated exactly once via
//! [`Tracer::finish_trace`]; any child span still open at that point is
//! force-closed with status `unclosed`, which the chaos proptest treats
//! as an orphan and rejects.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// SplitMix64 — the same generator the chaos harness uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identity of one trace; formatted as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identity of one span within its trace (1-based; 0 means "none").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

/// Propagated by value along a request's journey. The `span` field is the
/// id the next child should use as parent. `root_start_ns` lets a fault
/// site reconstruct the root when upgrading an unsampled trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this context belongs to.
    pub trace: TraceId,
    /// Current span (parent of any child opened from this context).
    pub span: SpanId,
    /// Whether spans are being recorded for this trace.
    pub sampled: bool,
    /// Virtual timestamp the root span opened at.
    pub root_start_ns: u64,
}

/// One recorded span inside a finished trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// 1-based span id; the root is always id 1.
    pub id: u32,
    /// Parent span id; 0 for the root.
    pub parent: u32,
    /// Stage name (`pcp.transport.attempt`, `store.wal.group_commit`, ...).
    pub name: String,
    /// Virtual open timestamp.
    pub start_ns: u64,
    /// Virtual close timestamp (>= start; `u64::MAX` while still open).
    pub end_ns: u64,
    /// Outcome marker: `ok`, or a terminal/fault marker such as
    /// `inserted`, `spilled`, `lost`, `hinted`, `unclosed`.
    pub status: String,
}

impl TraceSpan {
    /// Span duration in virtual nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One stage's share of a trace's latency, from the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct StageShare {
    /// Span name the self-time belongs to.
    pub name: String,
    /// Self time: span duration minus child durations, summed per name.
    pub self_ns: u64,
    /// Share of the root duration (0..=1).
    pub fraction: f64,
}

/// A finished trace, as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// Trace identity.
    pub id: TraceId,
    /// Spans ordered by id; `spans[0]` is the root.
    pub spans: Vec<TraceSpan>,
    /// Whether any stage reported a fault on this trace.
    pub fault: bool,
}

impl TraceTree {
    /// The root span.
    pub fn root(&self) -> &TraceSpan {
        &self.spans[0]
    }

    /// End-to-end duration of the trace.
    pub fn duration_ns(&self) -> u64 {
        self.root().duration_ns()
    }

    /// Terminal status of the trace (the root span's status).
    pub fn terminal_status(&self) -> &str {
        &self.root().status
    }

    /// True when some span never saw an explicit close and was
    /// force-closed by [`Tracer::finish_trace`].
    pub fn has_unclosed_spans(&self) -> bool {
        self.spans.iter().any(|s| s.status == "unclosed")
    }

    fn children_of(&self, id: u32) -> Vec<&TraceSpan> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Attribute the root's latency to named stages: per span name, the
    /// sum of self time (duration minus child durations). Sorted by
    /// descending share, ties by name. Because children nest inside
    /// their parents on the virtual clock, the shares sum to ~1.0.
    pub fn stage_attribution(&self) -> Vec<StageShare> {
        let total = self.duration_ns().max(1);
        let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.spans {
            let child_sum: u64 = self.children_of(s.id).iter().map(|c| c.duration_ns()).sum();
            let self_ns = s.duration_ns().saturating_sub(child_sum);
            *by_name.entry(s.name.as_str()).or_default() += self_ns;
        }
        let mut shares: Vec<StageShare> = by_name
            .into_iter()
            .map(|(name, self_ns)| StageShare {
                name: name.to_string(),
                self_ns,
                fraction: self_ns as f64 / total as f64,
            })
            .collect();
        shares.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        shares
    }

    /// Walk the dominant-child chain from the root: at each node descend
    /// into the longest child (ties: lowest id). Returns the visited
    /// spans — the critical path of the trace.
    pub fn critical_path(&self) -> Vec<&TraceSpan> {
        let mut path = vec![self.root()];
        let mut cur = self.root().id;
        loop {
            let kids = self.children_of(cur);
            let Some(widest) = kids
                .iter()
                .max_by(|a, b| a.duration_ns().cmp(&b.duration_ns()).then(b.id.cmp(&a.id)))
            else {
                break;
            };
            path.push(widest);
            cur = widest.id;
        }
        path
    }

    /// Render the tree as deterministic ASCII, timestamps relative to the
    /// root start so goldens do not depend on absolute virtual time.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {} dur={}ns status={}{}\n",
            self.id,
            self.duration_ns(),
            self.terminal_status(),
            if self.fault { " fault" } else { "" }
        );
        self.render_node(1, 1, &mut out);
        out
    }

    fn render_node(&self, id: u32, depth: usize, out: &mut String) {
        let Some(s) = self.spans.iter().find(|s| s.id == id) else {
            return;
        };
        let base = self.root().start_ns;
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "- {} [{}..{}] {}ns",
            s.name,
            s.start_ns.saturating_sub(base),
            s.end_ns.saturating_sub(base),
            s.duration_ns()
        ));
        if s.status != "ok" {
            out.push_str(&format!(" status={}", s.status));
        }
        out.push('\n');
        let mut kids: Vec<u32> = self
            .spans
            .iter()
            .filter(|c| c.parent == id)
            .map(|c| c.id)
            .collect();
        kids.sort_unstable();
        for k in kids {
            self.render_node(k, depth + 1, out);
        }
    }

    /// Render the critical path + stage attribution report for this trace.
    pub fn render_critical_path(&self) -> String {
        let mut out = format!("critical path (trace {}):\n", self.id);
        for s in self.critical_path() {
            out.push_str(&format!("  -> {} {}ns\n", s.name, s.duration_ns()));
        }
        out.push_str("stage attribution (self time):\n");
        let mut covered = 0.0;
        for share in self.stage_attribution() {
            covered += share.fraction;
            out.push_str(&format!(
                "  {:<34} {:>12}ns {:>6.2}%\n",
                share.name,
                share.self_ns,
                share.fraction * 100.0
            ));
        }
        out.push_str(&format!(
            "  attributed to named stages: {:.2}%\n",
            covered * 100.0
        ));
        out
    }
}

/// Sampling and retention policy for a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Head-sampling probability in `[0, 1]`; the decision hashes the
    /// trace id, so it is deterministic per seed + sequence.
    pub sample_rate: f64,
    /// Upgrade unsampled traces when a stage reports a fault
    /// ("always sample on fault"). Upgraded traces record from the
    /// fault onward; pre-fault child spans are not reconstructed.
    pub sample_on_fault: bool,
    /// Flight-recorder depth (finished traces kept, drop-oldest).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample_rate: 1.0,
            sample_on_fault: true,
            ring_capacity: 256,
        }
    }
}

struct ActiveTrace {
    spans: Vec<TraceSpan>,
    fault: bool,
}

#[derive(Default)]
struct TracerInner {
    active: BTreeMap<u64, ActiveTrace>,
    finished: VecDeque<TraceTree>,
}

/// Counters describing a tracer's lifetime activity (all monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Traces started (sampled or not).
    pub started: u64,
    /// Traces finished (sampled or not).
    pub finished: u64,
    /// Finished traces retained in (or through) the flight recorder.
    pub retained: u64,
    /// Retained traces evicted by the drop-oldest ring.
    pub ring_evicted: u64,
    /// Unsampled traces upgraded by a fault site.
    pub fault_upgrades: u64,
    /// Spans recorded across all sampled traces.
    pub spans_recorded: u64,
}

/// Deterministic trace recorder; share via `Arc` and attach to a
/// [`crate::Registry`] with [`crate::Registry::set_tracer`] so pipeline
/// stages can discover it without new plumbing.
pub struct Tracer {
    seed: u64,
    config: TraceConfig,
    next_seq: AtomicU64,
    started: AtomicU64,
    finished: AtomicU64,
    retained: AtomicU64,
    ring_evicted: AtomicU64,
    fault_upgrades: AtomicU64,
    spans_recorded: AtomicU64,
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// Build a tracer with the given id seed and policy.
    pub fn new(seed: u64, config: TraceConfig) -> Tracer {
        Tracer {
            seed,
            config,
            next_seq: AtomicU64::new(0),
            started: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            ring_evicted: AtomicU64::new(0),
            fault_upgrades: AtomicU64::new(0),
            spans_recorded: AtomicU64::new(0),
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Open a new trace rooted at `name`. Unsampled traces take no lock
    /// and record nothing until a fault upgrades them.
    pub fn start_trace(&self, name: &str, start_ns: u64) -> TraceContext {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.started.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(self.seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)).max(1);
        let sampled = self.config.sample_rate >= 1.0
            || (self.config.sample_rate > 0.0
                && (splitmix64(id) >> 11) as f64 / ((1u64 << 53) as f64) < self.config.sample_rate);
        let ctx = TraceContext {
            trace: TraceId(id),
            span: SpanId(1),
            sampled,
            root_start_ns: start_ns,
        };
        if sampled {
            self.spans_recorded.fetch_add(1, Ordering::Relaxed);
            self.lock().active.insert(
                id,
                ActiveTrace {
                    spans: vec![TraceSpan {
                        id: 1,
                        parent: 0,
                        name: name.to_string(),
                        start_ns,
                        end_ns: u64::MAX,
                        status: "ok".to_string(),
                    }],
                    fault: false,
                },
            );
        }
        ctx
    }

    /// Open a child span under `parent`; no-op passthrough when the
    /// trace is unsampled.
    pub fn child(&self, parent: TraceContext, name: &str, start_ns: u64) -> TraceContext {
        if !parent.sampled {
            return parent;
        }
        let mut inner = self.lock();
        let Some(t) = inner.active.get_mut(&parent.trace.0) else {
            return parent;
        };
        let id = t.spans.len() as u32 + 1;
        t.spans.push(TraceSpan {
            id,
            parent: parent.span.0,
            name: name.to_string(),
            start_ns,
            end_ns: u64::MAX,
            status: "ok".to_string(),
        });
        self.spans_recorded.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            span: SpanId(id),
            ..parent
        }
    }

    /// Close the context's current span with status `ok`.
    pub fn end_span(&self, ctx: TraceContext, end_ns: u64) {
        self.end_span_status(ctx, end_ns, "ok");
    }

    /// Close the context's current span with an explicit status.
    pub fn end_span_status(&self, ctx: TraceContext, end_ns: u64, status: &str) {
        if !ctx.sampled {
            return;
        }
        let mut inner = self.lock();
        let Some(t) = inner.active.get_mut(&ctx.trace.0) else {
            return;
        };
        if let Some(s) = t.spans.iter_mut().find(|s| s.id == ctx.span.0) {
            s.end_ns = end_ns.max(s.start_ns);
            if status != "ok" {
                s.status = status.to_string();
            }
        }
    }

    /// Report a fault on this trace. Sampled traces are flagged; an
    /// unsampled trace is upgraded (when the policy allows) to record
    /// from `now_ns` onward, rooted at `root_name` with the original
    /// root start. Returns the context to continue with — callers must
    /// replace their stored copy.
    pub fn mark_fault(&self, ctx: TraceContext, root_name: &str, now_ns: u64) -> TraceContext {
        if ctx.sampled {
            let mut inner = self.lock();
            if let Some(t) = inner.active.get_mut(&ctx.trace.0) {
                t.fault = true;
            }
            return ctx;
        }
        if !self.config.sample_on_fault {
            return ctx;
        }
        let _ = now_ns;
        self.fault_upgrades.fetch_add(1, Ordering::Relaxed);
        self.spans_recorded.fetch_add(1, Ordering::Relaxed);
        self.lock().active.insert(
            ctx.trace.0,
            ActiveTrace {
                spans: vec![TraceSpan {
                    id: 1,
                    parent: 0,
                    name: root_name.to_string(),
                    start_ns: ctx.root_start_ns,
                    end_ns: u64::MAX,
                    status: "ok".to_string(),
                }],
                fault: true,
            },
        );
        TraceContext {
            span: SpanId(1),
            sampled: true,
            ..ctx
        }
    }

    /// Terminate the trace: close the root at `end_ns` with the terminal
    /// `status`, force-close any still-open child span with status
    /// `unclosed`, and move the tree into the flight recorder.
    pub fn finish_trace(&self, ctx: TraceContext, end_ns: u64, status: &str) {
        self.finished.fetch_add(1, Ordering::Relaxed);
        if !ctx.sampled {
            return;
        }
        let mut inner = self.lock();
        let Some(mut t) = inner.active.remove(&ctx.trace.0) else {
            return;
        };
        for s in t.spans.iter_mut() {
            if s.id == 1 {
                s.end_ns = end_ns.max(s.start_ns);
                s.status = status.to_string();
            } else if s.end_ns == u64::MAX {
                // Never explicitly closed: an orphan. Close it at the
                // terminal timestamp and say so.
                s.end_ns = end_ns.max(s.start_ns);
                s.status = "unclosed".to_string();
            }
        }
        let tree = TraceTree {
            id: ctx.trace,
            spans: t.spans,
            fault: t.fault,
        };
        self.retained.fetch_add(1, Ordering::Relaxed);
        inner.finished.push_back(tree);
        while inner.finished.len() > self.config.ring_capacity.max(1) {
            inner.finished.pop_front();
            self.ring_evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of traces still open (should be 0 after a drained run).
    pub fn active_count(&self) -> usize {
        self.lock().active.len()
    }

    /// Flight-recorder contents, oldest first.
    pub fn flight_recorder(&self) -> Vec<TraceTree> {
        self.lock().finished.iter().cloned().collect()
    }

    /// Most recently finished trace, if any.
    pub fn last_finished(&self) -> Option<TraceTree> {
        self.lock().finished.back().cloned()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TracerStats {
        TracerStats {
            started: self.started.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
            ring_evicted: self.ring_evicted.load(Ordering::Relaxed),
            fault_upgrades: self.fault_upgrades.load(Ordering::Relaxed),
            spans_recorded: self.spans_recorded.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Tracer")
            .field("seed", &self.seed)
            .field("started", &s.started)
            .field("finished", &s.finished)
            .field("active", &self.active_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace(tracer: &Tracer) -> TraceTree {
        let root = tracer.start_trace("sample", 1_000);
        let ship = tracer.child(root, "ship", 1_100);
        let wal = tracer.child(ship, "wal", 1_200);
        tracer.end_span(wal, 1_500);
        tracer.end_span(ship, 2_000);
        tracer.finish_trace(root, 3_000, "inserted");
        tracer.last_finished().unwrap()
    }

    #[test]
    fn ids_are_deterministic_per_seed() {
        let a = Tracer::new(7, TraceConfig::default());
        let b = Tracer::new(7, TraceConfig::default());
        for _ in 0..5 {
            assert_eq!(a.start_trace("x", 0).trace, b.start_trace("x", 0).trace);
        }
        let c = Tracer::new(8, TraceConfig::default());
        assert_ne!(a.start_trace("x", 0).trace, c.start_trace("x", 0).trace);
    }

    #[test]
    fn tree_records_parentage_and_status() {
        let tracer = Tracer::new(1, TraceConfig::default());
        let tree = demo_trace(&tracer);
        assert_eq!(tree.spans.len(), 3);
        assert_eq!(tree.root().name, "sample");
        assert_eq!(tree.terminal_status(), "inserted");
        assert_eq!(tree.spans[1].parent, 1);
        assert_eq!(tree.spans[2].parent, 2);
        assert_eq!(tree.duration_ns(), 2_000);
        assert!(!tree.has_unclosed_spans());
        assert_eq!(tracer.active_count(), 0);
    }

    #[test]
    fn attribution_covers_full_latency() {
        let tracer = Tracer::new(1, TraceConfig::default());
        let tree = demo_trace(&tracer);
        let total: u64 = tree.stage_attribution().iter().map(|s| s.self_ns).sum();
        assert_eq!(total, tree.duration_ns());
        let path = tree.critical_path();
        assert_eq!(path.len(), 3);
        assert_eq!(path[2].name, "wal");
    }

    #[test]
    fn head_sampling_is_deterministic_and_rate_bounded() {
        let count = |rate: f64| {
            let t = Tracer::new(
                42,
                TraceConfig {
                    sample_rate: rate,
                    ..TraceConfig::default()
                },
            );
            (0..1000).filter(|_| t.start_trace("x", 0).sampled).count()
        };
        assert_eq!(count(0.0), 0);
        assert_eq!(count(1.0), 1000);
        let tenth = count(0.1);
        assert!(tenth > 40 && tenth < 200, "got {tenth}");
        assert_eq!(tenth, count(0.1));
    }

    #[test]
    fn unsampled_traces_record_nothing_until_fault() {
        let tracer = Tracer::new(
            3,
            TraceConfig {
                sample_rate: 0.0,
                sample_on_fault: true,
                ring_capacity: 8,
            },
        );
        let root = tracer.start_trace("sample", 100);
        assert!(!root.sampled);
        let child = tracer.child(root, "ship", 150);
        assert!(!child.sampled);
        assert_eq!(tracer.active_count(), 0);

        // Fault upgrades: recording starts, rooted at the original start.
        let upgraded = tracer.mark_fault(child, "sample", 500);
        assert!(upgraded.sampled);
        let retry = tracer.child(upgraded, "retry", 600);
        tracer.end_span_status(retry, 700, "spilled");
        tracer.finish_trace(upgraded, 900, "lost");
        let tree = tracer.last_finished().unwrap();
        assert!(tree.fault);
        assert_eq!(tree.root().start_ns, 100);
        assert_eq!(tree.terminal_status(), "lost");
        assert_eq!(tracer.stats().fault_upgrades, 1);
    }

    #[test]
    fn ring_drops_oldest() {
        let tracer = Tracer::new(
            5,
            TraceConfig {
                ring_capacity: 2,
                ..TraceConfig::default()
            },
        );
        let mut ids = Vec::new();
        for i in 0..4 {
            let c = tracer.start_trace("t", i * 10);
            ids.push(c.trace);
            tracer.finish_trace(c, i * 10 + 5, "inserted");
        }
        let ring = tracer.flight_recorder();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring[0].id, ids[2]);
        assert_eq!(ring[1].id, ids[3]);
        assert_eq!(tracer.stats().ring_evicted, 2);
    }

    #[test]
    fn orphaned_children_are_flagged() {
        let tracer = Tracer::new(9, TraceConfig::default());
        let root = tracer.start_trace("sample", 0);
        let _open = tracer.child(root, "never.closed", 10);
        tracer.finish_trace(root, 100, "inserted");
        let tree = tracer.last_finished().unwrap();
        assert!(tree.has_unclosed_spans());
    }

    #[test]
    fn render_is_stable() {
        let tracer = Tracer::new(1, TraceConfig::default());
        let tree = demo_trace(&tracer);
        let a = tree.render();
        assert!(a.contains("- sample [0..2000] 2000ns status=inserted"));
        assert!(a.contains("    - wal [200..500] 300ns"));
        let report = tree.render_critical_path();
        assert!(report.contains("attributed to named stages: 100.00%"));
    }
}
