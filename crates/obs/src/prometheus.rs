//! Prometheus-style text exposition of a [`Snapshot`].
//!
//! The rendering is deterministic: snapshots are already sorted by
//! metric key, names sanitize the same way every time, and floats print
//! via Rust's shortest-round-trip formatter. Names are namespaced the
//! same way the tsdb self-exporter namespaces series: `pmove.self.` is
//! prefixed unless the metric already lives under `pmove.` (the SLO
//! engine's meta-metrics do), then dots become underscores.
//!
//! Histograms render as cumulative `_bucket{le=...}` series plus
//! `_sum`/`_count`; a trace exemplar, when present, is appended
//! OpenMetrics-style to the bucket the exemplar value falls in. Spans
//! render as summaries with `quantile` labels fed by the per-span
//! duration buckets.

use crate::metrics::MetricKey;
use crate::snapshot::Snapshot;

fn sanitize(name: &str) -> String {
    let full = if name.starts_with("pmove.") {
        name.to_string()
    } else {
        format!("pmove.self.{name}")
    };
    full.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label(k), escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn sanitize_label(k: &str) -> String {
    k.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn type_line(out: &mut String, emitted: &mut Vec<String>, name: &str, kind: &str) {
    if !emitted.iter().any(|n| n == name) {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        emitted.push(name.to_string());
    }
}

impl Snapshot {
    /// Render every metric as Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut emitted: Vec<String> = Vec::new();

        let group = |key: &MetricKey| sanitize(&key.name);

        for (key, total) in &self.counters {
            let name = group(key);
            type_line(&mut out, &mut emitted, &name, "counter");
            out.push_str(&format!(
                "{name}{} {total}\n",
                label_block(&key.labels, None)
            ));
        }
        for (key, value) in &self.gauges {
            let name = group(key);
            type_line(&mut out, &mut emitted, &name, "gauge");
            out.push_str(&format!(
                "{name}{} {value}\n",
                label_block(&key.labels, None)
            ));
        }
        for (key, h) in &self.histograms {
            let name = group(key);
            type_line(&mut out, &mut emitted, &name, "histogram");
            let mut cum = 0u64;
            for (i, c) in h.buckets.iter().enumerate() {
                cum += c;
                let le = if i < h.bounds.len() {
                    h.bounds[i].to_string()
                } else {
                    "+Inf".to_string()
                };
                let mut line = format!(
                    "{name}_bucket{} {cum}",
                    label_block(&key.labels, Some(("le", &le)))
                );
                if let Some((trace, value)) = h.exemplar {
                    // Attach the exemplar to the bucket its value falls in.
                    let here = match i.checked_sub(1).map(|p| h.bounds[p]) {
                        Some(lower) => value > lower,
                        None => true,
                    } && (i >= h.bounds.len() || value <= h.bounds[i]);
                    if here {
                        line.push_str(&format!(" # {{trace_id=\"{trace:016x}\"}} {value}"));
                    }
                }
                line.push('\n');
                out.push_str(&line);
            }
            out.push_str(&format!(
                "{name}_sum{} {}\n",
                label_block(&key.labels, None),
                h.sum
            ));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                label_block(&key.labels, None),
                h.count
            ));
        }
        for (span_name, s) in &self.spans {
            let name = format!("{}_duration_ns", sanitize(&format!("span.{span_name}")));
            type_line(&mut out, &mut emitted, &name, "summary");
            for (q, v) in [("0.5", s.p50_ns), ("0.9", s.p90_ns), ("0.99", s.p99_ns)] {
                out.push_str(&format!(
                    "{name}{} {v}\n",
                    label_block(&[], Some(("quantile", q)))
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", s.total_ns));
            out.push_str(&format!("{name}_count {}\n", s.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{latency_buckets, Registry};

    #[test]
    fn exposition_golden() {
        let reg = Registry::new();
        reg.counter("pcp.transport.values_lost", &[("host", "skx")])
            .add(7);
        reg.counter("pcp.transport.values_lost", &[("host", "icl")])
            .add(2);
        reg.gauge("pmove.slo.state", &[("slo", "ingest_latency")])
            .set(2.0);
        // Serving-layer metrics already live under `pmove.` and must
        // export without the `pmove_self_` prefix.
        reg.counter("pmove.serve.served_total", &[("class", "interactive")])
            .add(12);
        reg.counter("pmove.serve.cache_hits_total", &[("tenant", "3")])
            .add(5);
        reg.gauge("pmove.serve.queue_depth", &[]).set(4.0);
        reg.histogram(
            "pmove.serve.latency_ns",
            &[("class", "interactive")],
            vec![1_000_000, 5_000_000],
        )
        .record(250_000);
        reg.histogram("tsdb.ingest_ns", &[], vec![1_000, 10_000])
            .record(500);
        reg.histogram("tsdb.ingest_ns", &[], vec![1_000, 10_000])
            .record_exemplar(50_000, 0xabcd);
        reg.record_span("daemon.step2.build_kb", 1_000, 3_000);
        let text = reg.snapshot().render_prometheus();
        let expected = "\
# TYPE pmove_self_pcp_transport_values_lost counter
pmove_self_pcp_transport_values_lost{host=\"icl\"} 2
pmove_self_pcp_transport_values_lost{host=\"skx\"} 7
# TYPE pmove_serve_cache_hits_total counter
pmove_serve_cache_hits_total{tenant=\"3\"} 5
# TYPE pmove_serve_served_total counter
pmove_serve_served_total{class=\"interactive\"} 12
# TYPE pmove_serve_queue_depth gauge
pmove_serve_queue_depth 4
# TYPE pmove_slo_state gauge
pmove_slo_state{slo=\"ingest_latency\"} 2
# TYPE pmove_serve_latency_ns histogram
pmove_serve_latency_ns_bucket{class=\"interactive\",le=\"1000000\"} 1
pmove_serve_latency_ns_bucket{class=\"interactive\",le=\"5000000\"} 1
pmove_serve_latency_ns_bucket{class=\"interactive\",le=\"+Inf\"} 1
pmove_serve_latency_ns_sum{class=\"interactive\"} 250000
pmove_serve_latency_ns_count{class=\"interactive\"} 1
# TYPE pmove_self_tsdb_ingest_ns histogram
pmove_self_tsdb_ingest_ns_bucket{le=\"1000\"} 1
pmove_self_tsdb_ingest_ns_bucket{le=\"10000\"} 1
pmove_self_tsdb_ingest_ns_bucket{le=\"+Inf\"} 2 # {trace_id=\"000000000000abcd\"} 50000
pmove_self_tsdb_ingest_ns_sum 50500
pmove_self_tsdb_ingest_ns_count 2
# TYPE pmove_self_span_daemon_step2_build_kb_duration_ns summary
pmove_self_span_daemon_step2_build_kb_duration_ns{quantile=\"0.5\"} 2000
pmove_self_span_daemon_step2_build_kb_duration_ns{quantile=\"0.9\"} 2000
pmove_self_span_daemon_step2_build_kb_duration_ns{quantile=\"0.99\"} 2000
pmove_self_span_daemon_step2_build_kb_duration_ns_sum 2000
pmove_self_span_daemon_step2_build_kb_duration_ns_count 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("m", &[("path", "a\"b\\c\nd")]).inc();
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let reg = Registry::new();
            reg.counter("z", &[]).inc();
            reg.counter("a", &[("x", "1")]).add(3);
            reg.gauge("g", &[]).set(0.25);
            reg.histogram("h", &[], latency_buckets()).record(2_000);
            reg.snapshot().render_prometheus()
        };
        assert_eq!(build(), build());
    }
}
