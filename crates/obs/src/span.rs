//! Span tracing over explicit (virtual-clock) timestamps.
//!
//! Spans aggregate per name rather than retaining every event, so span
//! overhead stays O(1) in memory no matter how long a pipeline runs. The
//! last start/end pair is kept so dashboards can show the most recent
//! step timings (the daemon construction steps 0–3 each run once, so
//! "last" equals "the" timing for them).

use crate::metrics::Registry;

/// Aggregated statistics for one span name.
#[derive(Debug, Default, Clone)]
pub(crate) struct SpanStats {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub last_start_ns: u64,
    pub last_end_ns: u64,
}

impl SpanStats {
    pub(crate) fn record(&mut self, start_ns: u64, end_ns: u64) {
        let dur = end_ns.saturating_sub(start_ns);
        self.count += 1;
        self.total_ns += dur;
        self.min_ns = if self.count == 1 {
            dur
        } else {
            self.min_ns.min(dur)
        };
        self.max_ns = self.max_ns.max(dur);
        self.last_start_ns = start_ns;
        self.last_end_ns = end_ns;
    }
}

/// An open span; call [`SpanGuard::finish`] with the end timestamp.
///
/// Dropping without finishing records nothing — the clock is virtual, so
/// there is no meaningful implicit end time to substitute.
#[must_use = "a span records nothing until finish(end_ns) is called"]
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    name: String,
    start_ns: u64,
}

impl<'r> SpanGuard<'r> {
    pub(crate) fn new(registry: &'r Registry, name: &str, start_ns: u64) -> SpanGuard<'r> {
        SpanGuard {
            registry,
            name: name.to_string(),
            start_ns,
        }
    }

    /// The timestamp this span was opened with.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Close the span at virtual time `end_ns` and record it.
    pub fn finish(self, end_ns: u64) {
        self.registry.record_span(&self.name, self.start_ns, end_ns);
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn spans_aggregate_per_name() {
        let reg = Registry::new();
        reg.span_enter("step", 0).finish(100);
        reg.span_enter("step", 1_000).finish(1_250);
        let snap = reg.snapshot();
        let (name, s) = &snap.spans[0];
        assert_eq!(name, "step");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 350);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 250);
        assert_eq!(s.last_start_ns, 1_000);
        assert_eq!(s.last_end_ns, 1_250);
    }

    #[test]
    fn unfinished_span_records_nothing() {
        let reg = Registry::new();
        let guard = reg.span_enter("open", 5);
        assert_eq!(guard.start_ns(), 5);
        drop(guard);
        assert!(reg.snapshot().spans.is_empty());
    }

    #[test]
    fn backwards_clock_saturates_to_zero() {
        let reg = Registry::new();
        reg.record_span("odd", 100, 50);
        assert_eq!(reg.snapshot().spans[0].1.total_ns, 0);
    }
}
