//! Span tracing over explicit (virtual-clock) timestamps.
//!
//! Spans aggregate per name rather than retaining every event, so span
//! overhead stays O(1) in memory no matter how long a pipeline runs. The
//! last start/end pair is kept so dashboards can show the most recent
//! step timings (the daemon construction steps 0–3 each run once, so
//! "last" equals "the" timing for them).

use crate::metrics::{quantile_from_counts, Registry, LATENCY_BOUNDS};

/// Aggregated statistics for one span name. Durations additionally
/// bucket against [`LATENCY_BOUNDS`], so snapshots report p50/p90/p99
/// per span name, not just the mean.
#[derive(Debug, Default, Clone)]
pub(crate) struct SpanStats {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub last_start_ns: u64,
    pub last_end_ns: u64,
    /// Duration buckets; `LATENCY_BOUNDS.len() + 1` slots once used.
    pub buckets: Vec<u64>,
}

impl SpanStats {
    pub(crate) fn record(&mut self, start_ns: u64, end_ns: u64) {
        let dur = end_ns.saturating_sub(start_ns);
        self.count += 1;
        self.total_ns += dur;
        self.min_ns = if self.count == 1 {
            dur
        } else {
            self.min_ns.min(dur)
        };
        self.max_ns = self.max_ns.max(dur);
        self.last_start_ns = start_ns;
        self.last_end_ns = end_ns;
        if self.buckets.is_empty() {
            self.buckets = vec![0; LATENCY_BOUNDS.len() + 1];
        }
        let idx = LATENCY_BOUNDS.partition_point(|&b| b < dur);
        self.buckets[idx] += 1;
    }

    /// Interpolated duration quantile over the bucketed durations.
    pub(crate) fn quantile(&self, q: f64) -> f64 {
        quantile_from_counts(&LATENCY_BOUNDS, &self.buckets, self.count, self.max_ns, q)
    }
}

/// An open span; call [`SpanGuard::finish`] with the end timestamp.
///
/// Dropping without finishing records nothing — the clock is virtual, so
/// there is no meaningful implicit end time to substitute.
#[must_use = "a span records nothing until finish(end_ns) is called"]
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    name: String,
    start_ns: u64,
}

impl<'r> SpanGuard<'r> {
    pub(crate) fn new(registry: &'r Registry, name: &str, start_ns: u64) -> SpanGuard<'r> {
        SpanGuard {
            registry,
            name: name.to_string(),
            start_ns,
        }
    }

    /// The timestamp this span was opened with.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Close the span at virtual time `end_ns` and record it.
    pub fn finish(self, end_ns: u64) {
        self.registry.record_span(&self.name, self.start_ns, end_ns);
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn spans_aggregate_per_name() {
        let reg = Registry::new();
        reg.span_enter("step", 0).finish(100);
        reg.span_enter("step", 1_000).finish(1_250);
        let snap = reg.snapshot();
        let (name, s) = &snap.spans[0];
        assert_eq!(name, "step");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 350);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 250);
        assert_eq!(s.last_start_ns, 1_000);
        assert_eq!(s.last_end_ns, 1_250);
    }

    #[test]
    fn unfinished_span_records_nothing() {
        let reg = Registry::new();
        let guard = reg.span_enter("open", 5);
        assert_eq!(guard.start_ns(), 5);
        drop(guard);
        assert!(reg.snapshot().spans.is_empty());
    }

    #[test]
    fn span_quantiles_track_tail_latency() {
        let reg = Registry::new();
        // 90 fast stages, 10 slow ones: the mean hides the tail, p99
        // lands inside the slow bucket.
        for i in 0..90u64 {
            reg.record_span("query.stage", i * 1_000, i * 1_000 + 2_000);
        }
        for i in 0..10u64 {
            reg.record_span("query.stage", 900_000 + i, 900_000 + i + 800_000);
        }
        let snap = reg.snapshot();
        let s = snap.span("query.stage").unwrap();
        assert_eq!(s.count, 100);
        assert!(s.p50_ns <= 2_500.0, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= 500_000.0, "p99 {}", s.p99_ns);
        assert!(s.p99_ns <= 800_000.0, "p99 {}", s.p99_ns);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
    }

    #[test]
    fn backwards_clock_saturates_to_zero() {
        let reg = Registry::new();
        reg.record_span("odd", 100, 50);
        assert_eq!(reg.snapshot().spans[0].1.total_ns, 0);
    }
}
