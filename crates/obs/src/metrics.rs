//! Metric primitives and the registry that owns them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
use crate::span::{SpanGuard, SpanStats};
use crate::trace::Tracer;

/// Identity of one metric: name plus sorted `label=value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dotted-lowercase by convention (`transport.values_lost`).
    pub name: String,
    /// Label pairs, sorted by key for deterministic identity and export.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so equivalent label sets collide.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Monotonic event counter (lock-free).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-value gauge storing an `f64` (lock-free via bit transmutation).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram over `u64` samples (latencies in ns, sizes, ...).
///
/// Buckets are upper-inclusive bounds; one implicit overflow bucket catches
/// everything above the last bound. Recording is lock-free. Quantiles are
/// estimated by linear interpolation inside the winning bucket, which is
/// deterministic for a given sample multiset.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Largest tagged sample and the trace it belongs to, so a p99
    /// outlier links straight to its trace tree. `(trace_id, value)`.
    exemplar: Mutex<Option<(u64, u64)>>,
}

impl Histogram {
    /// Build with the given ascending upper bounds.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplar: Mutex::new(None),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record one sample and tag it with the trace it belongs to. The
    /// exemplar kept is the largest tagged sample (ties: lowest trace
    /// id), so the retained exemplar is deterministic regardless of
    /// arrival order and always points at the tail of the distribution.
    pub fn record_exemplar(&self, v: u64, trace_id: u64) {
        self.record(v);
        let mut slot = match self.exemplar.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        let replace = match *slot {
            None => true,
            Some((t, cur)) => v > cur || (v == cur && trace_id < t),
        };
        if replace {
            *slot = Some((trace_id, v));
        }
    }

    /// The current exemplar, if any sample was tagged: `(trace_id, value)`.
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        match self.exemplar.lock() {
            Ok(g) => *g,
            Err(poison) => *poison.into_inner(),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket containing the target rank.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_from_counts(&self.bounds, &counts, self.count(), self.max(), q)
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            exemplar: self.exemplar(),
        }
    }
}

/// Shared quantile estimator over fixed buckets, used by histograms and
/// per-span duration aggregates. Linear interpolation within the winning
/// bucket; when no sample lies *above* that bucket, the observed max is
/// the tightest upper bound — without the clamp, a histogram whose
/// samples all sit in the first bucket reports the bucket's static bound
/// as p99 and inflates low-latency tails.
pub(crate) fn quantile_from_counts(
    bounds: &[u64],
    counts: &[u64],
    n: u64,
    max: u64,
    q: f64,
) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (idx, &c) in counts.iter().enumerate() {
        if seen + c >= target {
            let lower = if idx == 0 { 0 } else { bounds[idx - 1] };
            let mut upper = if idx < bounds.len() {
                bounds[idx]
            } else {
                // Overflow bucket: bounded above by the observed max.
                max.max(lower)
            };
            if seen + c == n {
                // Nothing above this bucket: the max caps it.
                upper = upper.min(max).max(lower);
            }
            if c == 0 {
                return upper as f64;
            }
            let frac = (target - seen) as f64 / c as f64;
            return lower as f64 + (upper - lower) as f64 * frac;
        }
        seen += c;
    }
    max as f64
}

/// Default latency bucket bounds in nanoseconds: 1µs → 10s, log-ish
/// spaced. Span duration aggregates bucket against the same bounds.
pub(crate) const LATENCY_BOUNDS: [u64; 18] = [
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Default latency bucket bounds in nanoseconds: 1µs → 10s, log-ish spaced.
pub fn latency_buckets() -> Vec<u64> {
    LATENCY_BOUNDS.to_vec()
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
    spans: BTreeMap<String, SpanStats>,
}

/// Owner of all metrics for one pipeline instance.
///
/// Cloneable via `Arc<Registry>`; every accessor takes `&self`. Handle
/// creation locks briefly; the returned `Arc` handles are lock-free to
/// update.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
    /// Fast-path flag so untraced pipelines pay one relaxed load, not a
    /// lock, to discover there is no tracer.
    tracing_on: AtomicBool,
    tracer: Mutex<Option<Arc<Tracer>>>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Shared fresh registry (the common way to thread one through a
    /// pipeline).
    pub fn shared() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        Arc::clone(self.lock().counters.entry(key).or_default())
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        Arc::clone(self.lock().gauges.entry(key).or_default())
    }

    /// Get or create the histogram `name{labels}` with `bounds` (bounds are
    /// fixed on first creation; later calls reuse the existing instance).
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<u64>,
    ) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        Arc::clone(
            self.lock()
                .histograms
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Open a span at virtual time `start_ns`; finish it with
    /// [`SpanGuard::finish`]. Aggregates per span name.
    pub fn span_enter<'r>(&'r self, name: &str, start_ns: u64) -> SpanGuard<'r> {
        SpanGuard::new(self, name, start_ns)
    }

    /// Record a completed span directly from explicit timestamps.
    pub fn record_span(&self, name: &str, start_ns: u64, end_ns: u64) {
        let mut inner = self.lock();
        let stats = inner.spans.entry(name.to_string()).or_default();
        stats.record(start_ns, end_ns);
    }

    /// Attach a tracer so pipeline stages holding this registry can
    /// start and propagate trace trees without extra plumbing.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        let mut slot = match self.tracer.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        *slot = Some(tracer);
        self.tracing_on.store(true, Ordering::Release);
    }

    /// Detach the tracer; subsequent [`Registry::tracer`] calls return
    /// `None` and tracing reverts to zero-cost.
    pub fn clear_tracer(&self) {
        self.tracing_on.store(false, Ordering::Release);
        let mut slot = match self.tracer.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        *slot = None;
    }

    /// The attached tracer, if any. Cheap when tracing is off.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        if !self.tracing_on.load(Ordering::Acquire) {
            return None;
        }
        let slot = match self.tracer.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        slot.clone()
    }

    /// Deterministic point-in-time export of every metric and span.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(name, s)| {
                    (
                        name.clone(),
                        SpanSnapshot {
                            count: s.count,
                            total_ns: s.total_ns,
                            min_ns: s.min_ns,
                            max_ns: s.max_ns,
                            last_start_ns: s.last_start_ns,
                            last_end_ns: s.last_end_ns,
                            p50_ns: s.quantile(0.50),
                            p90_ns: s.quantile(0.90),
                            p99_ns: s.quantile(0.99),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("spans", &inner.spans.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x", &[("h", "skx")]);
        let b = reg.counter("x", &[("h", "skx")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        // Different labels are a different metric.
        assert_eq!(reg.counter("x", &[("h", "icl")]).get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter("m", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(reg.counter("m", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(vec![10, 20, 30]);
        for v in [5, 15, 15, 25, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 100);
        assert_eq!(h.max(), 40);
        let p50 = h.quantile(0.5);
        assert!(p50 > 10.0 && p50 <= 20.0, "p50 {p50}");
        assert!(h.quantile(1.0) >= 30.0);
        assert!(h.quantile(0.0) <= p50);
        assert_eq!(Histogram::new(vec![10]).quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_returns_tightest_bound_for_single_bucket() {
        // Regression: all samples in the first bucket must not report
        // the bucket's static upper bound as p99.
        let h = Histogram::new(latency_buckets());
        for _ in 0..100 {
            h.record(500);
        }
        assert_eq!(h.quantile(0.99), 495.0);
        assert_eq!(h.quantile(0.50), 250.0);

        // Same when the samples sit in an interior bucket.
        let h = Histogram::new(latency_buckets());
        for _ in 0..100 {
            h.record(1_500);
        }
        let p99 = h.quantile(0.99);
        assert!(p99 <= 1_500.0, "p99 {p99} must not exceed the observed max");
        assert!(p99 > 1_000.0);
    }

    #[test]
    fn exemplar_keeps_largest_tagged_sample() {
        let h = Histogram::new(vec![10, 100]);
        assert_eq!(h.exemplar(), None);
        h.record_exemplar(5, 111);
        h.record_exemplar(50, 222);
        h.record_exemplar(7, 333);
        assert_eq!(h.exemplar(), Some((222, 50)));
        // Ties resolve to the lowest trace id, order-independently.
        h.record_exemplar(50, 200);
        assert_eq!(h.exemplar(), Some((200, 50)));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn registry_tracer_slot_round_trips() {
        use crate::trace::{TraceConfig, Tracer};
        let reg = Registry::new();
        assert!(reg.tracer().is_none());
        reg.set_tracer(Arc::new(Tracer::new(1, TraceConfig::default())));
        assert!(reg.tracer().is_some());
        reg.clear_tracer();
        assert!(reg.tracer().is_none());
    }

    #[test]
    fn gauge_stores_floats() {
        let g = Gauge::default();
        g.set(0.375);
        assert_eq!(g.get(), 0.375);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let build = || {
            let reg = Registry::new();
            reg.counter("b.metric", &[]).add(2);
            reg.counter("a.metric", &[]).add(1);
            reg.histogram("h", &[], vec![10, 100]).record(7);
            reg.record_span("step", 100, 250);
            reg.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        assert_eq!(s1.counters[0].0.name, "a.metric");
        assert_eq!(s1.spans[0].1.total_ns, 150);
    }
}
