//! Point-in-time exports of a registry.
//!
//! Snapshots are plain data (no atomics, no serde) sorted by metric key,
//! so equality between two snapshots means the underlying runs were
//! observationally identical. `pmove-tsdb` converts snapshots into
//! `pmove.self.*` time series.

use crate::metrics::MetricKey;

/// Exported histogram state, including the raw bucket counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0.0 when empty).
    pub mean: f64,
    /// Interpolated 50th percentile.
    pub p50: f64,
    /// Interpolated 90th percentile.
    pub p90: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// Upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow bucket last).
    pub buckets: Vec<u64>,
    /// Largest trace-tagged sample, if any: `(trace_id, value)`.
    pub exemplar: Option<(u64, u64)>,
}

/// Exported aggregate for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Completed span count.
    pub count: u64,
    /// Total virtual time inside the span.
    pub total_ns: u64,
    /// Shortest completed span.
    pub min_ns: u64,
    /// Longest completed span.
    pub max_ns: u64,
    /// Start timestamp of the most recent span.
    pub last_start_ns: u64,
    /// End timestamp of the most recent span.
    pub last_end_ns: u64,
    /// Interpolated median duration.
    pub p50_ns: f64,
    /// Interpolated 90th-percentile duration.
    pub p90_ns: f64,
    /// Interpolated 99th-percentile duration.
    pub p99_ns: f64,
}

impl SpanSnapshot {
    /// Mean duration in nanoseconds (0.0 when no spans completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Full registry export: every metric, sorted by key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counters as `(key, total)`.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauges as `(key, value)`.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histograms as `(key, stats)`.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
    /// Spans as `(name, stats)`.
    pub spans: Vec<(String, SpanSnapshot)>,
}

impl Snapshot {
    /// Look up a counter total by name and exact label set.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Sum a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Look up a gauge by name and exact label set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Look up a histogram by name and exact label set.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        self.histograms
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Look up a span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn lookup_helpers_find_metrics() {
        let reg = Registry::new();
        reg.counter("offered", &[("host", "skx")]).add(10);
        reg.counter("offered", &[("host", "icl")]).add(5);
        reg.gauge("queue_depth", &[]).set(3.0);
        reg.histogram("lat", &[], vec![100]).record(42);
        reg.record_span("s", 0, 10);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("offered", &[("host", "skx")]), Some(10));
        assert_eq!(snap.counter_total("offered"), 15);
        assert_eq!(snap.gauge("queue_depth", &[]), Some(3.0));
        assert_eq!(snap.histogram("lat", &[]).unwrap().count, 1);
        assert_eq!(snap.span("s").unwrap().mean_ns(), 10.0);
        assert_eq!(snap.counter("offered", &[]), None);
    }
}
