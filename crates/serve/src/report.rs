//! Structured outcome of one serving run.

use crate::config::Priority;
use std::collections::BTreeMap;

/// Why a request was refused at admission (never admitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket was empty under the `Reject` policy.
    RateLimit,
    /// The tenant already had `tenant_cap` requests in the layer.
    TenantCap,
}

impl RejectReason {
    /// Stable label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::RateLimit => "rate_limit",
            RejectReason::TenantCap => "tenant_cap",
        }
    }
}

/// One shed decision: an *admitted* request dropped because the bounded
/// queue overflowed. The invariant pinned by the fairness proptest is
/// `priority == lowest_present` — the layer never sheds over the head of
/// lower-priority work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedEvent {
    /// Virtual time of the decision.
    pub t_ns: u64,
    /// Tenant whose request was shed.
    pub tenant: u32,
    /// Priority of the shed request.
    pub priority: Priority,
    /// Lowest priority present in the queue (newcomer included) when the
    /// decision was made.
    pub lowest_present: Priority,
}

/// Per-tenant accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests the tenant submitted.
    pub submitted: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests admitted into the layer.
    pub admitted: u64,
    /// Requests that completed with a result.
    pub served: u64,
    /// Admitted requests dropped by queue overflow.
    pub shed: u64,
    /// Served requests whose execution hit the shared result cache.
    pub cache_hits: u64,
    /// Served requests whose execution missed the shared result cache.
    pub cache_misses: u64,
    /// Served requests that rode an execution another request triggered.
    pub coalesced: u64,
}

/// Exact latency summary of one priority class (nearest-rank over the
/// full sample set — deterministic, no estimation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Served requests in the class.
    pub count: u64,
    /// Median latency (ns).
    pub p50_ns: u64,
    /// 90th percentile (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Worst observed (ns).
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarize a sample set (sorted internally).
    pub fn of(samples: &mut [u64]) -> LatencySummary {
        samples.sort_unstable();
        let rank = |q: f64| -> u64 {
            if samples.is_empty() {
                return 0;
            }
            let n = samples.len() as f64;
            let idx = ((q * n).ceil() as usize).clamp(1, samples.len()) - 1;
            samples[idx]
        };
        LatencySummary {
            count: samples.len() as u64,
            p50_ns: rank(0.50),
            p90_ns: rank(0.90),
            p99_ns: rank(0.99),
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Everything one [`crate::QueryServer::run`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests submitted to the layer.
    pub submitted: u64,
    /// Requests refused at admission (rate limit / tenant cap).
    pub rejected: u64,
    /// Requests admitted (queued, coalesced, or executed).
    pub admitted: u64,
    /// Requests that completed with a result (errors included — an error
    /// response is still a response).
    pub served: u64,
    /// Admitted requests dropped by queue overflow.
    pub shed: u64,
    /// Backend executions (the denominator of the coalescing ratio).
    pub executions: u64,
    /// Served requests that rode someone else's execution.
    pub coalesced: u64,
    /// Executions served by the shared result cache.
    pub cache_hits: u64,
    /// Executions that had to scan storage.
    pub cache_misses: u64,
    /// Backend errors surfaced to callers.
    pub errors: u64,
    /// Every shed decision, in virtual-time order.
    pub shed_events: Vec<ShedEvent>,
    /// Per-tenant breakdown.
    pub per_tenant: BTreeMap<u32, TenantStats>,
    /// Latency summary of interactive traffic.
    pub interactive: LatencySummary,
    /// Latency summary of background traffic.
    pub background: LatencySummary,
    /// Deepest the queue got (requests).
    pub queue_depth_peak: u64,
    /// Virtual time the last completion landed.
    pub end_ns: u64,
}

impl ServeReport {
    /// The serving conservation identity: every submitted request is
    /// accounted exactly once, and every *admitted* request was either
    /// served or deliberately shed — nothing is lost in the layer.
    pub fn conserved(&self) -> bool {
        self.submitted == self.rejected + self.admitted && self.admitted == self.served + self.shed
    }

    /// Requests per backend execution (>= 1; higher means coalescing and
    /// the shared cache are absorbing identical work).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.executions == 0 {
            return 1.0;
        }
        self.served as f64 / self.executions as f64
    }

    /// Cache hit rate across executions.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Jain fairness index over per-tenant served counts: 1.0 when every
    /// tenant got the same share, approaching `1/n` under starvation.
    pub fn fairness_served(&self) -> f64 {
        let xs: Vec<f64> = self.per_tenant.values().map(|t| t.served as f64).collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (xs.len() as f64 * sq)
    }

    /// True when every shed decision hit the lowest-priority request
    /// present at that moment.
    pub fn shed_only_lowest(&self) -> bool {
        self.shed_events
            .iter()
            .all(|e| e.priority == e.lowest_present)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_is_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::of(&mut v);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p90_ns, 90);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(LatencySummary::of(&mut []), LatencySummary::default());
    }

    #[test]
    fn fairness_index_bounds() {
        let mut r = ServeReport {
            submitted: 0,
            rejected: 0,
            admitted: 0,
            served: 0,
            shed: 0,
            executions: 0,
            coalesced: 0,
            cache_hits: 0,
            cache_misses: 0,
            errors: 0,
            shed_events: Vec::new(),
            per_tenant: BTreeMap::new(),
            interactive: LatencySummary::default(),
            background: LatencySummary::default(),
            queue_depth_peak: 0,
            end_ns: 0,
        };
        for t in 0..4 {
            r.per_tenant.insert(
                t,
                TenantStats {
                    served: 10,
                    ..TenantStats::default()
                },
            );
        }
        assert!((r.fairness_served() - 1.0).abs() < 1e-12);
        r.per_tenant.get_mut(&0).unwrap().served = 40;
        r.per_tenant.get_mut(&1).unwrap().served = 0;
        r.per_tenant.get_mut(&2).unwrap().served = 0;
        r.per_tenant.get_mut(&3).unwrap().served = 0;
        assert!((r.fairness_served() - 0.25).abs() < 1e-12);
    }
}
