//! Per-tenant token bucket on the virtual clock.
//!
//! All arithmetic is integer (`u128` intermediates), so refill is exact
//! and bit-identical across runs: `elapsed_ns * rate` accumulates into a
//! nanosecond-scaled credit and converts to whole tokens without drift.
//! Besides `try_take`, the bucket can *reserve* a future token — the
//! queue-overload policy admits a rate-limited request and parks it until
//! the deterministic instant its token exists.

/// Nanoseconds per virtual second.
const NS_PER_S: u128 = 1_000_000_000;

/// A token bucket: `burst` capacity, `rate_per_s` refill, virtual-clock
/// driven.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_s: u64,
    burst: u64,
    /// Whole tokens currently available.
    tokens: u64,
    /// Partial-token credit, scaled by `NS_PER_S` (credit of `NS_PER_S`
    /// equals one token's worth of refill progress).
    credit: u128,
    /// Virtual time of the last refill.
    last_ns: u64,
}

impl TokenBucket {
    /// Full bucket at virtual time 0.
    pub fn new(rate_per_s: u64, burst: u64) -> TokenBucket {
        debug_assert!(rate_per_s > 0 && burst > 0, "validated by ServingConfig");
        TokenBucket {
            rate_per_s,
            burst,
            tokens: burst,
            credit: 0,
            last_ns: 0,
        }
    }

    /// Advance the bucket to `now_ns`, converting accumulated credit into
    /// whole tokens. A full bucket discards credit (no banking beyond the
    /// burst).
    pub fn refill(&mut self, now_ns: u64) {
        if now_ns <= self.last_ns {
            return;
        }
        let elapsed = u128::from(now_ns - self.last_ns);
        self.last_ns = now_ns;
        if self.tokens == self.burst {
            // A full bucket accrues nothing over the interval; stale
            // fractional credit from before it filled is dropped too.
            self.credit = 0;
            return;
        }
        self.credit += elapsed * u128::from(self.rate_per_s);
        let earned = (self.credit / NS_PER_S) as u64;
        self.credit %= NS_PER_S;
        let total = self.tokens.saturating_add(earned);
        if total >= self.burst {
            self.tokens = self.burst;
            if total > self.burst {
                // Genuine overflow: refill progress beyond the burst cap
                // is discarded, fraction included.
                self.credit = 0;
            }
        } else {
            self.tokens = total;
        }
    }

    /// Take one token at `now_ns` if available.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Reserve the *next* token: returns the virtual instant at which the
    /// reservation is covered. If a token is available now that is
    /// `now_ns`; otherwise the deterministic future time the refill
    /// produces one. The reservation debits the bucket immediately, so
    /// consecutive reservations space out at the refill rate.
    pub fn reserve(&mut self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        if self.tokens > 0 {
            self.tokens -= 1;
            return now_ns;
        }
        // Earlier reservations may already have pushed the refill point
        // past `now`; the next token is earned from wherever it stands.
        let base = self.last_ns.max(now_ns);
        // Time until credit reaches one full token.
        let missing = NS_PER_S - self.credit;
        let rate = u128::from(self.rate_per_s);
        let wait = missing.div_ceil(rate) as u64;
        let at = base + wait;
        // Consume the token being earned: move the refill point forward
        // and drop the earned token.
        self.credit = self.credit + u128::from(wait) * rate - NS_PER_S;
        self.last_ns = at;
        at
    }

    /// Tokens available at `now_ns` without taking any.
    pub fn available(&mut self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refill() {
        let mut b = TokenBucket::new(10, 3); // 10 tokens/s, burst 3
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        // 100 ms refills exactly one token at 10/s.
        assert!(!b.try_take(99_999_999));
        assert!(b.try_take(100_000_000));
        assert!(!b.try_take(100_000_000));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1_000, 2);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert_eq!(b.available(10_000_000_000), 2);
    }

    #[test]
    fn reserve_spaces_at_rate() {
        let mut b = TokenBucket::new(10, 1); // one token per 100 ms
        assert_eq!(b.reserve(0), 0); // the burst token
        assert_eq!(b.reserve(0), 100_000_000);
        assert_eq!(b.reserve(0), 200_000_000);
        assert_eq!(b.reserve(0), 300_000_000);
        // A reservation made later than the backlog still waits its turn.
        assert_eq!(b.reserve(250_000_000), 400_000_000);
    }

    #[test]
    fn refill_has_no_drift() {
        // 3 tokens/s: the per-token period 333_333_333.33..ns is not a
        // whole number; integer credit must not lose the fraction.
        let mut b = TokenBucket::new(3, 1);
        assert!(b.try_take(0));
        let mut granted = 0u64;
        for ms in 1..=10_000 {
            if b.try_take(ms * 1_000_000) {
                granted += 1;
            }
        }
        // 10 s at 3 tokens/s = 30 tokens, exact.
        assert_eq!(granted, 30);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut b = TokenBucket::new(7, 5);
            let mut log = Vec::new();
            for i in 0..200u64 {
                let t = i * 37_000_000;
                log.push((b.try_take(t), b.reserve(t)));
            }
            log
        };
        assert_eq!(run(), run());
    }
}
