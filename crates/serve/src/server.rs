//! The serving front-end: a deterministic discrete-event loop that admits,
//! schedules, coalesces, and executes tenant queries on the virtual clock.
//!
//! The event loop is the whole story: arrivals, execution completions, and
//! rate-limit wakeups live in one heap ordered `(time, kind, seq)` with
//! completions before wakeups before arrivals at equal instants, so a
//! freed dispatcher slot is always visible to work arriving at the same
//! tick. Every tie-break is explicit, which makes a run bit-identical
//! under replay — the property the fairness proptest and the load bench
//! both lean on.

use crate::bucket::TokenBucket;
use crate::config::{OverloadPolicy, Priority, ServeError, ServingConfig};
use crate::report::{LatencySummary, RejectReason, ServeReport, ShedEvent};
use crate::sched::{AdmitOutcome, QueuedRequest, WfqQueue};
use pmove_obs::{latency_buckets, Registry};
use pmove_tsdb::{Database, ExecMode, Query, ReplicaSet, TsdbError};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

/// Modeled service cost of an execution that misses the shared result
/// cache (planning + shard scans).
const MISS_BASE_NS: u64 = 30_000;
/// Per-row scan cost on a miss.
const MISS_PER_ROW_NS: u64 = 900;
/// Modeled service cost of a cache hit (lookup + serialization only).
const HIT_BASE_NS: u64 = 6_000;
/// Per-row serialization cost on a hit.
const HIT_PER_ROW_NS: u64 = 60;
/// Modeled cost of an execution the backend failed (it did the work of
/// planning before erroring).
const ERROR_NS: u64 = MISS_BASE_NS;

/// What one backend execution produced, reduced to what the serving layer
/// needs: a deterministic size for the service-time model and the shared
/// result cache's verdict for hit accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendExec {
    /// Result rows (drives modeled service time).
    pub rows: u64,
    /// True when the backend's shared result cache served the rows.
    pub cache_hit: bool,
}

/// A query execution target. The serving layer is generic over where
/// queries actually run — a local [`Database`], a quorum over a
/// [`ReplicaSet`], or the PCP shipper's reachability-aware wrapper.
pub trait QueryBackend {
    /// Execute one parsed query and report its size and cache verdict.
    fn execute(&self, q: &Query) -> Result<BackendExec, TsdbError>;
}

impl QueryBackend for &Database {
    fn execute(&self, q: &Query) -> Result<BackendExec, TsdbError> {
        let (result, cache_hit) = self.query_arc_cached(q, ExecMode::default())?;
        Ok(BackendExec {
            rows: result.rows.len() as u64,
            cache_hit,
        })
    }
}

impl QueryBackend for &ReplicaSet {
    /// Quorum read with every replica reachable; the chosen replica's
    /// result cache provides the hit verdict.
    fn execute(&self, q: &Query) -> Result<BackendExec, TsdbError> {
        let reachable = vec![true; self.len()];
        let (result, cache_hit) = self.quorum_read_cached(q, &reachable, ExecMode::default())?;
        Ok(BackendExec {
            rows: result.rows.len() as u64,
            cache_hit,
        })
    }
}

/// One request in an open-loop arrival schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Submitting tenant.
    pub tenant: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// Query text (parsed and normalized at submission).
    pub query: String,
    /// Virtual arrival time.
    pub at_ns: u64,
}

/// Event ordering rank: completions free slots before wakeups re-examine
/// the queue before arrivals contend, all at the same virtual instant.
const RANK_COMPLETION: u8 = 0;
const RANK_WAKEUP: u8 = 1;
const RANK_ARRIVAL: u8 = 2;

#[derive(Debug)]
enum EvKind {
    Arrival(usize),
    Completion(String),
    Wakeup,
}

#[derive(Debug)]
struct Ev {
    t: u64,
    rank: u8,
    eseq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.t, self.rank, self.eseq) == (other.t, other.rank, other.eseq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    /// Reversed so the `BinaryHeap` pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.t, other.rank, other.eseq).cmp(&(self.t, self.rank, self.eseq))
    }
}

/// One in-flight execution and everyone riding it.
#[derive(Debug)]
struct InFlight {
    members: Vec<QueuedRequest>,
    cache_hit: bool,
    error: Option<String>,
    dispatch_ns: u64,
    done_ns: u64,
}

/// The multi-tenant serving front-end.
pub struct QueryServer<B: QueryBackend> {
    backend: B,
    cfg: ServingConfig,
    obs: Option<Arc<Registry>>,
}

impl<B: QueryBackend> QueryServer<B> {
    /// Build a server over `backend`; the configuration is validated.
    pub fn new(backend: B, cfg: ServingConfig) -> Result<QueryServer<B>, ServeError> {
        cfg.validate()?;
        Ok(QueryServer {
            backend,
            cfg,
            obs: None,
        })
    }

    /// Thread an observability registry: `pmove.serve.*` counters, the
    /// serving-latency histogram the default SLO watches, and serve-span
    /// trace trees when the registry has a tracer installed.
    pub fn with_obs(mut self, registry: Arc<Registry>) -> QueryServer<B> {
        self.obs = Some(registry);
        self
    }

    /// The validated configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Run one open-loop schedule to completion and account every request.
    ///
    /// The schedule is processed in `(at_ns, index)` order regardless of
    /// how it is passed in. Returns once every admitted request is served
    /// or shed — the conservation identity `ServeReport::conserved` holds
    /// by construction and is re-checked by the fairness proptest.
    pub fn run(&mut self, schedule: &[ServeRequest]) -> Result<ServeReport, ServeError> {
        // Parse everything up front: a malformed query is a caller bug,
        // not load, and fails the run before any accounting starts.
        let mut parsed: Vec<(Query, String)> = Vec::with_capacity(schedule.len());
        for r in schedule {
            let q = Query::parse(&r.query)?;
            let key = q.normalized();
            parsed.push((q, key));
        }

        let mut order: Vec<usize> = (0..schedule.len()).collect();
        order.sort_by_key(|&i| (schedule[i].at_ns, i));

        let mut events = BinaryHeap::new();
        let mut next_eseq = 0u64;
        for &i in &order {
            events.push(Ev {
                t: schedule[i].at_ns,
                rank: RANK_ARRIVAL,
                eseq: next_eseq,
                kind: EvKind::Arrival(i),
            });
            next_eseq += 1;
        }

        let mut queue = WfqQueue::new(
            self.cfg.interactive_weight,
            self.cfg.background_weight,
            self.cfg.queue_capacity,
        );
        let mut buckets: BTreeMap<u32, TokenBucket> = BTreeMap::new();
        let mut in_layer: BTreeMap<u32, usize> = BTreeMap::new();
        let mut in_flight: BTreeMap<String, InFlight> = BTreeMap::new();
        let mut key_to_query: BTreeMap<String, Query> = BTreeMap::new();
        let mut scheduled_wakeups: BTreeSet<u64> = BTreeSet::new();
        let mut slots_busy = 0usize;
        let mut next_seq = 0u64;

        let mut report = ServeReport {
            submitted: 0,
            rejected: 0,
            admitted: 0,
            served: 0,
            shed: 0,
            executions: 0,
            coalesced: 0,
            cache_hits: 0,
            cache_misses: 0,
            errors: 0,
            shed_events: Vec::new(),
            per_tenant: BTreeMap::new(),
            interactive: LatencySummary::default(),
            background: LatencySummary::default(),
            queue_depth_peak: 0,
            end_ns: 0,
        };
        let mut lat_interactive: Vec<u64> = Vec::new();
        let mut lat_background: Vec<u64> = Vec::new();

        while let Some(ev) = events.pop() {
            let now = ev.t;
            match ev.kind {
                EvKind::Arrival(i) => {
                    let req = &schedule[i];
                    let (_, key) = &parsed[i];
                    let seq = next_seq;
                    next_seq += 1;
                    report.submitted += 1;
                    let stats = report.per_tenant.entry(req.tenant).or_default();
                    stats.submitted += 1;
                    self.count("pmove.serve.submitted_total", &[]);

                    let occupancy = in_layer.get(&req.tenant).copied().unwrap_or(0);
                    if occupancy >= self.cfg.tenant_cap {
                        self.reject(&mut report, req.tenant, RejectReason::TenantCap);
                        continue;
                    }
                    let bucket = buckets.entry(req.tenant).or_insert_with(|| {
                        TokenBucket::new(self.cfg.tenant_rate_per_s, self.cfg.tenant_burst)
                    });
                    let eligible_ns = match self.cfg.overload {
                        OverloadPolicy::Reject => {
                            if !bucket.try_take(now) {
                                self.reject(&mut report, req.tenant, RejectReason::RateLimit);
                                continue;
                            }
                            now
                        }
                        // Reserve the next token: admit now, dispatch no
                        // earlier than the deterministic refill instant.
                        OverloadPolicy::Queue => bucket.reserve(now),
                    };

                    report.admitted += 1;
                    let stats = report.per_tenant.entry(req.tenant).or_default();
                    stats.admitted += 1;
                    self.count("pmove.serve.admitted_total", &[]);
                    *in_layer.entry(req.tenant).or_insert(0) += 1;

                    let queued = QueuedRequest {
                        seq,
                        tenant: req.tenant,
                        priority: req.priority,
                        submit_ns: now,
                        eligible_ns,
                    };

                    // Attach-to-in-flight coalescing: an identical query
                    // already executing serves this request at its
                    // completion — no queue slot, no second execution.
                    if let Some(fl) = in_flight.get_mut(key) {
                        fl.members.push(queued);
                        continue;
                    }

                    key_to_query
                        .entry(key.clone())
                        .or_insert_with(|| parsed[i].0.clone());
                    match queue.admit(key, queued) {
                        AdmitOutcome::Queued => {}
                        AdmitOutcome::ShedNewcomer { lowest_present } => {
                            self.shed(
                                &mut report,
                                &mut in_layer,
                                now,
                                req.tenant,
                                req.priority,
                                lowest_present,
                            );
                        }
                        AdmitOutcome::ShedOther {
                            victim,
                            lowest_present,
                        } => {
                            self.shed(
                                &mut report,
                                &mut in_layer,
                                now,
                                victim.tenant,
                                victim.priority,
                                lowest_present,
                            );
                        }
                    }
                    report.queue_depth_peak = report.queue_depth_peak.max(queue.len() as u64);
                    self.gauge_set("pmove.serve.queue_depth", queue.len() as f64);

                    self.dispatch(
                        now,
                        &mut queue,
                        &mut in_flight,
                        &key_to_query,
                        &mut slots_busy,
                        &mut report,
                        &mut events,
                        &mut next_eseq,
                        &mut scheduled_wakeups,
                    );
                }
                EvKind::Completion(key) => {
                    let fl = in_flight
                        .remove(&key)
                        .expect("completion for unknown execution");
                    slots_busy -= 1;
                    let status = match (&fl.error, fl.cache_hit) {
                        (Some(_), _) => "error",
                        (None, true) => "cache_hit",
                        (None, false) => "executed",
                    };
                    self.emit_trace(&fl, status);
                    for (idx, m) in fl.members.iter().enumerate() {
                        report.served += 1;
                        let stats = report.per_tenant.entry(m.tenant).or_default();
                        stats.served += 1;
                        if fl.error.is_some() {
                            report.errors += 1;
                        } else if fl.cache_hit {
                            stats.cache_hits += 1;
                        } else {
                            stats.cache_misses += 1;
                        }
                        if idx > 0 {
                            report.coalesced += 1;
                            stats.coalesced += 1;
                        }
                        let entry = in_layer.get_mut(&m.tenant).expect("member counted");
                        *entry -= 1;
                        let latency = now - m.submit_ns;
                        match m.priority {
                            Priority::Interactive => lat_interactive.push(latency),
                            Priority::Background => lat_background.push(latency),
                        }
                        self.count("pmove.serve.served_total", &[("class", m.priority.label())]);
                        if idx > 0 {
                            self.tenant_count("pmove.serve.coalesced_total", m.tenant);
                        }
                        if fl.error.is_none() {
                            if fl.cache_hit {
                                self.tenant_count("pmove.serve.cache_hits_total", m.tenant);
                            } else {
                                self.tenant_count("pmove.serve.cache_misses_total", m.tenant);
                            }
                        }
                        self.latency(latency, m.priority);
                    }
                    report.end_ns = report.end_ns.max(now);
                    self.dispatch(
                        now,
                        &mut queue,
                        &mut in_flight,
                        &key_to_query,
                        &mut slots_busy,
                        &mut report,
                        &mut events,
                        &mut next_eseq,
                        &mut scheduled_wakeups,
                    );
                }
                EvKind::Wakeup => {
                    scheduled_wakeups.remove(&now);
                    self.dispatch(
                        now,
                        &mut queue,
                        &mut in_flight,
                        &key_to_query,
                        &mut slots_busy,
                        &mut report,
                        &mut events,
                        &mut next_eseq,
                        &mut scheduled_wakeups,
                    );
                }
            }
        }

        debug_assert!(queue.is_empty(), "event loop drained with work queued");
        debug_assert!(in_flight.is_empty(), "event loop drained mid-flight");
        report.interactive = LatencySummary::of(&mut lat_interactive);
        report.background = LatencySummary::of(&mut lat_background);
        self.gauge_set("pmove.serve.queue_depth", 0.0);
        debug_assert!(report.conserved(), "conservation identity violated");
        Ok(report)
    }

    /// Fill free dispatcher slots with eligible groups; when the queue
    /// holds only rate-deferred work, book a wakeup at its eligibility.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        now: u64,
        queue: &mut WfqQueue,
        in_flight: &mut BTreeMap<String, InFlight>,
        key_to_query: &BTreeMap<String, Query>,
        slots_busy: &mut usize,
        report: &mut ServeReport,
        events: &mut BinaryHeap<Ev>,
        next_eseq: &mut u64,
        scheduled_wakeups: &mut BTreeSet<u64>,
    ) {
        while *slots_busy < self.cfg.max_concurrency {
            let Some(group) = queue.pop_eligible(now) else {
                break;
            };
            let q = key_to_query
                .get(&group.key)
                .expect("query recorded at admit");
            let (exec, service_ns) = match self.backend.execute(q) {
                Ok(e) => {
                    let per_row = if e.cache_hit {
                        HIT_PER_ROW_NS
                    } else {
                        MISS_PER_ROW_NS
                    };
                    let base = if e.cache_hit {
                        HIT_BASE_NS
                    } else {
                        MISS_BASE_NS
                    };
                    (Ok(e), base + per_row * e.rows)
                }
                Err(err) => (Err(err), ERROR_NS),
            };
            report.executions += 1;
            self.count("pmove.serve.executions_total", &[]);
            let (cache_hit, error) = match exec {
                Ok(e) => {
                    if e.cache_hit {
                        report.cache_hits += 1;
                    } else {
                        report.cache_misses += 1;
                    }
                    (e.cache_hit, None)
                }
                Err(err) => (false, Some(err.to_string())),
            };
            let done_ns = now + service_ns;
            events.push(Ev {
                t: done_ns,
                rank: RANK_COMPLETION,
                eseq: *next_eseq,
                kind: EvKind::Completion(group.key.clone()),
            });
            *next_eseq += 1;
            in_flight.insert(
                group.key,
                InFlight {
                    members: group.members,
                    cache_hit,
                    error,
                    dispatch_ns: now,
                    done_ns,
                },
            );
            *slots_busy += 1;
        }
        self.gauge_set("pmove.serve.queue_depth", queue.len() as f64);
        if *slots_busy < self.cfg.max_concurrency && !queue.is_empty() {
            // Everything queued is rate-deferred; wake at the earliest
            // eligibility (deduplicated so replays stay byte-identical).
            let at = queue.next_eligibility().expect("queue non-empty");
            if scheduled_wakeups.insert(at) {
                events.push(Ev {
                    t: at,
                    rank: RANK_WAKEUP,
                    eseq: *next_eseq,
                    kind: EvKind::Wakeup,
                });
                *next_eseq += 1;
            }
        }
    }

    fn reject(&self, report: &mut ServeReport, tenant: u32, reason: RejectReason) {
        report.rejected += 1;
        report.per_tenant.entry(tenant).or_default().rejected += 1;
        self.count("pmove.serve.rejected_total", &[("reason", reason.label())]);
    }

    fn shed(
        &self,
        report: &mut ServeReport,
        in_layer: &mut BTreeMap<u32, usize>,
        t_ns: u64,
        tenant: u32,
        priority: Priority,
        lowest_present: Priority,
    ) {
        report.shed += 1;
        report.per_tenant.entry(tenant).or_default().shed += 1;
        report.shed_events.push(ShedEvent {
            t_ns,
            tenant,
            priority,
            lowest_present,
        });
        *in_layer.get_mut(&tenant).expect("shed request was counted") -= 1;
        self.count("pmove.serve.shed_total", &[("class", priority.label())]);
    }

    /// One serve-span tree per execution: queue wait then execution,
    /// rooted at the triggering member's submission.
    fn emit_trace(&self, fl: &InFlight, status: &str) {
        let Some(reg) = &self.obs else { return };
        let Some(tracer) = reg.tracer() else { return };
        let submit_ns = fl.members.first().map(|m| m.submit_ns).unwrap_or(0);
        let root = tracer.start_trace("serve.request", submit_ns);
        let wait = tracer.child(root, "serve.queue_wait", submit_ns);
        tracer.end_span(wait, fl.dispatch_ns);
        let exec = tracer.child(root, "serve.execute", fl.dispatch_ns);
        tracer.end_span_status(exec, fl.done_ns, status);
        tracer.finish_trace(
            root,
            fl.done_ns,
            if status == "error" { "error" } else { "ok" },
        );
        reg.record_span("serve.request", submit_ns, fl.done_ns);
    }

    fn count(&self, name: &str, labels: &[(&str, &str)]) {
        if let Some(reg) = &self.obs {
            reg.counter(name, labels).inc();
        }
    }

    fn tenant_count(&self, name: &str, tenant: u32) {
        if let Some(reg) = &self.obs {
            let t = tenant.to_string();
            reg.counter(name, &[("tenant", &t)]).inc();
        }
    }

    fn gauge_set(&self, name: &str, v: f64) {
        if let Some(reg) = &self.obs {
            reg.gauge(name, &[]).set(v);
        }
    }

    fn latency(&self, latency_ns: u64, priority: Priority) {
        if let Some(reg) = &self.obs {
            reg.histogram(
                "pmove.serve.latency_ns",
                &[("class", priority.label())],
                latency_buckets(),
            )
            .record(latency_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_tsdb::Point;

    /// A tiny database: one measurement, a few series, 60 s of points.
    fn db() -> Database {
        let db = Database::new("serve-test");
        for s in 0..60i64 {
            for host in ["a", "b"] {
                let p = Point::new("cpu")
                    .timestamp(s * 1_000_000_000)
                    .tag("host", host)
                    .field("busy", s as f64);
                db.write_point(p).unwrap();
            }
        }
        db
    }

    fn req(tenant: u32, priority: Priority, query: &str, at_ns: u64) -> ServeRequest {
        ServeRequest {
            tenant,
            priority,
            query: query.into(),
            at_ns,
        }
    }

    const PANEL: &str = "SELECT mean(\"busy\") FROM \"cpu\" GROUP BY time(10000000000)";

    #[test]
    fn identical_panels_coalesce_into_one_execution() {
        let db = db();
        let mut srv = QueryServer::new(&db, ServingConfig::default()).unwrap();
        // Eight tenants refresh the same panel in one burst: one backend
        // execution serves all eight.
        let schedule: Vec<ServeRequest> = (0..8)
            .map(|t| req(t, Priority::Interactive, PANEL, 1_000))
            .collect();
        let report = srv.run(&schedule).unwrap();
        assert!(report.conserved());
        assert_eq!(report.served, 8);
        assert_eq!(report.executions, 1);
        assert_eq!(report.coalesced, 7);
        assert!(report.coalescing_ratio() >= 8.0);
        // First execution misses; everyone rides it.
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hits, 0);
    }

    #[test]
    fn attach_to_in_flight_execution() {
        let db = db();
        let mut srv = QueryServer::new(&db, ServingConfig::default()).unwrap();
        // Second request lands while the first is mid-execution (service
        // time of this panel is well over 1 µs): it attaches instead of
        // queueing a second execution.
        let schedule = vec![
            req(0, Priority::Interactive, PANEL, 0),
            req(1, Priority::Interactive, PANEL, 1_000),
        ];
        let report = srv.run(&schedule).unwrap();
        assert_eq!(report.executions, 1);
        assert_eq!(report.coalesced, 1);
        assert_eq!(report.served, 2);
    }

    #[test]
    fn repeat_queries_hit_the_shared_cache() {
        let db = db();
        let mut srv = QueryServer::new(&db, ServingConfig::default()).unwrap();
        // Two widely-spaced rounds of the same panel from different
        // tenants: round one executes, round two is a cache hit shared
        // across tenants.
        let schedule = vec![
            req(0, Priority::Interactive, PANEL, 0),
            req(1, Priority::Interactive, PANEL, 50_000_000),
        ];
        let report = srv.run(&schedule).unwrap();
        assert_eq!(report.executions, 2);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hits, 1);
        let t1 = report.per_tenant.get(&1).unwrap();
        assert_eq!(t1.cache_hits, 1);
    }

    #[test]
    fn overload_sheds_only_background() {
        let db = db();
        let cfg = ServingConfig {
            queue_capacity: 4,
            max_concurrency: 1,
            tenant_rate_per_s: 1_000,
            tenant_burst: 1_000,
            ..ServingConfig::default()
        };
        let mut srv = QueryServer::new(&db, cfg).unwrap();
        // Distinct queries defeat coalescing; a burst larger than
        // slots + queue forces shedding, and every victim must be
        // background while background is present.
        let mut schedule = Vec::new();
        for i in 0..6u64 {
            schedule.push(req(
                0,
                Priority::Background,
                &format!(
                    "SELECT mean(\"busy\") FROM \"cpu\" WHERE time >= {} GROUP BY time(10000000000)",
                    i * 1_000_000_000
                ),
                i,
            ));
        }
        // Four interactive requests (= queue capacity): each displaces a
        // queued background request and none ever contends with its own
        // class for space.
        for i in 0..4u64 {
            schedule.push(req(
                1,
                Priority::Interactive,
                &format!(
                    "SELECT max(\"busy\") FROM \"cpu\" WHERE time >= {} GROUP BY time(10000000000)",
                    i * 1_000_000_000
                ),
                10 + i,
            ));
        }
        let report = srv.run(&schedule).unwrap();
        assert!(report.conserved());
        assert!(report.shed > 0, "expected overflow: {report:?}");
        assert!(report.shed_only_lowest());
        assert!(report
            .shed_events
            .iter()
            .all(|e| e.priority == Priority::Background));
        // Interactive traffic is untouched.
        let t1 = report.per_tenant.get(&1).unwrap();
        assert_eq!(t1.shed, 0);
        assert_eq!(t1.served, 4);
    }

    #[test]
    fn reject_policy_refuses_over_rate_traffic() {
        let db = db();
        let cfg = ServingConfig {
            overload: OverloadPolicy::Reject,
            tenant_rate_per_s: 10,
            tenant_burst: 2,
            ..ServingConfig::default()
        };
        let mut srv = QueryServer::new(&db, cfg).unwrap();
        // Five submissions in one instant against burst 2: three rejected.
        let schedule: Vec<ServeRequest> = (0..5u64)
            .map(|i| {
                req(
                    0,
                    Priority::Interactive,
                    &format!(
                        "SELECT mean(\"busy\") FROM \"cpu\" WHERE time >= {}",
                        i * 1_000_000_000
                    ),
                    100,
                )
            })
            .collect();
        let report = srv.run(&schedule).unwrap();
        assert!(report.conserved());
        assert_eq!(report.rejected, 3);
        assert_eq!(report.admitted, 2);
        assert_eq!(report.served, 2);
    }

    #[test]
    fn tenant_cap_rejects_regardless_of_policy() {
        let db = db();
        let cfg = ServingConfig {
            tenant_cap: 2,
            max_concurrency: 1,
            ..ServingConfig::default()
        };
        let mut srv = QueryServer::new(&db, cfg).unwrap();
        let schedule: Vec<ServeRequest> = (0..4u64)
            .map(|i| {
                req(
                    7,
                    Priority::Background,
                    &format!(
                        "SELECT mean(\"busy\") FROM \"cpu\" WHERE time >= {}",
                        i * 1_000_000_000
                    ),
                    i,
                )
            })
            .collect();
        let report = srv.run(&schedule).unwrap();
        assert_eq!(report.rejected, 2);
        let t = report.per_tenant.get(&7).unwrap();
        assert_eq!(t.rejected, 2);
        assert_eq!(t.served, 2);
    }

    #[test]
    fn replay_is_bit_identical() {
        let run = || {
            let db = db();
            let mut srv = QueryServer::new(&db, ServingConfig::default()).unwrap();
            let mut schedule = Vec::new();
            for i in 0..50u64 {
                let tenant = (i % 5) as u32;
                let priority = if i % 3 == 0 {
                    Priority::Background
                } else {
                    Priority::Interactive
                };
                let panel = i % 4;
                schedule.push(req(
                    tenant,
                    priority,
                    &format!(
                        "SELECT mean(\"busy\") FROM \"cpu\" WHERE time >= {} GROUP BY time(10000000000)",
                        panel * 1_000_000_000
                    ),
                    i * 700_000,
                ));
            }
            srv.run(&schedule).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quorum_backend_serves_queries() {
        use pmove_tsdb::{ReplConfig, ReplicaSet};
        let set = ReplicaSet::in_memory("serve-q", ReplConfig::default()).unwrap();
        for s in 0..10i64 {
            let p = Point::new("cpu")
                .timestamp(s * 1_000_000_000)
                .field("busy", 1.0);
            for r in set.replicas() {
                r.apply_remote(p.clone()).unwrap();
            }
        }
        let mut srv = QueryServer::new(&set, ServingConfig::default()).unwrap();
        let schedule = vec![
            req(
                0,
                Priority::Interactive,
                "SELECT mean(\"busy\") FROM \"cpu\"",
                0,
            ),
            req(
                1,
                Priority::Interactive,
                "SELECT mean(\"busy\") FROM \"cpu\"",
                50_000_000,
            ),
        ];
        let report = srv.run(&schedule).unwrap();
        assert_eq!(report.served, 2);
        assert_eq!(report.cache_hits, 1);
    }

    #[test]
    fn invalid_config_is_refused() {
        let db = db();
        let cfg = ServingConfig {
            queue_capacity: 0,
            ..ServingConfig::default()
        };
        assert!(matches!(
            QueryServer::new(&db, cfg),
            Err(ServeError::ZeroCapacityQueue)
        ));
    }
}
