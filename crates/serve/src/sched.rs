//! Bounded, weighted-fair admission queue with deterministic shedding.
//!
//! Queued work is organized as *groups*: every request targeting the same
//! normalized query text joins one group and the group executes once
//! (request coalescing). Groups are ordered by a weighted-fair-queueing
//! virtual clock — each priority class advances its virtual finish time
//! by `SCALE / weight` per group, so a backlog of both classes dispatches
//! `interactive_weight : background_weight` — with admission order
//! (`gseq`) as the tie-break, making the schedule bit-identical across
//! replays.
//!
//! When the queue is full the *lowest-priority* request present —
//! considering the newcomer too — is shed; ties shed the latest-admitted
//! request first, so earlier arrivals keep their place.

use crate::config::Priority;
use std::collections::BTreeMap;

/// Virtual-cost scale: one group costs `SCALE / weight` virtual ticks.
/// `u32` weights keep the per-group cost >= 256 ticks, so distinct groups
/// never collapse onto one virtual instant by rounding.
const VCOST_SCALE: u128 = 1 << 40;

/// One admitted request waiting in the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedRequest {
    /// Global admission sequence number (deterministic tie-break).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// Virtual submit time.
    pub submit_ns: u64,
    /// Earliest virtual time the request may dispatch (its token-bucket
    /// reservation under the queue overload policy).
    pub eligible_ns: u64,
}

/// A coalesced group of identical queued queries.
#[derive(Debug, Clone)]
pub struct QueuedGroup {
    /// Group admission order (tie-break within equal virtual finishes).
    pub gseq: u64,
    /// Normalized query text every member shares.
    pub key: String,
    /// WFQ virtual finish time (ordering key).
    pub vfinish: u128,
    /// Members, in admission order.
    pub members: Vec<QueuedRequest>,
}

impl QueuedGroup {
    /// Earliest member eligibility: the group may dispatch as soon as any
    /// member's reservation is covered (the rest free-ride on the single
    /// execution; their tokens were already debited).
    pub fn eligible_ns(&self) -> u64 {
        self.members
            .iter()
            .map(|m| m.eligible_ns)
            .min()
            .unwrap_or(0)
    }

    /// Highest member priority (drives re-keying on joins).
    pub fn priority(&self) -> Priority {
        self.members
            .iter()
            .map(|m| m.priority)
            .max()
            .unwrap_or(Priority::Background)
    }
}

/// Outcome of [`WfqQueue::admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Entered the queue (new group or joined an existing one), nobody
    /// displaced.
    Queued,
    /// The queue was full and the newcomer itself was the lowest-priority
    /// request present: it is shed on arrival.
    ShedNewcomer {
        /// Lowest priority among queue + newcomer at decision time
        /// (equals the newcomer's own priority by construction).
        lowest_present: Priority,
    },
    /// The queue was full; the given queued request was shed to make
    /// room and the newcomer entered.
    ShedOther {
        /// The displaced request.
        victim: QueuedRequest,
        /// Lowest priority among queue + newcomer at decision time
        /// (equals the victim's priority by construction).
        lowest_present: Priority,
    },
}

/// The weighted-fair admission queue.
#[derive(Debug)]
pub struct WfqQueue {
    interactive_weight: u32,
    background_weight: u32,
    capacity: usize,
    /// WFQ virtual clock: advances to the finish time of dispatched work.
    vtime: u128,
    /// Per-class last assigned virtual finish ([background, interactive]).
    last_vfinish: [u128; 2],
    /// Groups ordered by `(vfinish, gseq)`.
    by_order: BTreeMap<(u128, u64), QueuedGroup>,
    /// Normalized key -> ordering key of its queued group.
    by_key: BTreeMap<String, (u128, u64)>,
    /// Total queued requests (capacity is counted per request).
    len_requests: usize,
    next_gseq: u64,
}

fn class_idx(p: Priority) -> usize {
    match p {
        Priority::Background => 0,
        Priority::Interactive => 1,
    }
}

impl WfqQueue {
    /// Empty queue with the given class weights and request capacity.
    pub fn new(interactive_weight: u32, background_weight: u32, capacity: usize) -> WfqQueue {
        WfqQueue {
            interactive_weight,
            background_weight,
            capacity,
            vtime: 0,
            last_vfinish: [0; 2],
            by_order: BTreeMap::new(),
            by_key: BTreeMap::new(),
            len_requests: 0,
            next_gseq: 0,
        }
    }

    /// Queued requests (not groups).
    pub fn len(&self) -> usize {
        self.len_requests
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len_requests == 0
    }

    /// Queued groups.
    pub fn group_count(&self) -> usize {
        self.by_order.len()
    }

    fn weight(&self, p: Priority) -> u32 {
        match p {
            Priority::Interactive => self.interactive_weight,
            Priority::Background => self.background_weight,
        }
    }

    /// Assign the next virtual finish for class `p`.
    fn position(&mut self, p: Priority) -> u128 {
        let idx = class_idx(p);
        let vstart = self.vtime.max(self.last_vfinish[idx]);
        let vfinish = vstart + VCOST_SCALE / u128::from(self.weight(p));
        self.last_vfinish[idx] = vfinish;
        vfinish
    }

    /// Admit one request under `key`. Full queues shed the lowest-priority
    /// request present (newcomer included); ties shed the latest arrival.
    pub fn admit(&mut self, key: &str, req: QueuedRequest) -> AdmitOutcome {
        let mut outcome = AdmitOutcome::Queued;
        if self.len_requests >= self.capacity {
            // Victim: lowest priority, then highest (latest) seq. The
            // newcomer competes like everyone else.
            let mut victim: (Priority, u64) = (req.priority, req.seq);
            for g in self.by_order.values() {
                for m in &g.members {
                    if (m.priority, std::cmp::Reverse(m.seq))
                        < (victim.0, std::cmp::Reverse(victim.1))
                    {
                        victim = (m.priority, m.seq);
                    }
                }
            }
            let lowest_present = victim.0;
            if victim.1 == req.seq {
                return AdmitOutcome::ShedNewcomer { lowest_present };
            }
            let shed = self
                .remove_by_seq(victim.1)
                .expect("victim chosen from queue contents");
            outcome = AdmitOutcome::ShedOther {
                victim: shed,
                lowest_present,
            };
        }

        if let Some(&order) = self.by_key.get(key) {
            // Join the existing group. A higher-priority join earns the
            // position its own class chain would grant and keeps the
            // better (smaller) of the two, so an interactive refresh is
            // never held hostage by the background export it coalesced
            // onto.
            let mut group = self.by_order.remove(&order).expect("index in sync");
            let joined_priority = req.priority;
            let prev_priority = group.priority();
            group.members.push(req);
            if joined_priority > prev_priority {
                let candidate = self.position(joined_priority);
                group.vfinish = group.vfinish.min(candidate);
            }
            let new_order = (group.vfinish, group.gseq);
            self.by_key.insert(key.to_string(), new_order);
            self.by_order.insert(new_order, group);
        } else {
            let gseq = self.next_gseq;
            self.next_gseq += 1;
            let vfinish = self.position(req.priority);
            let group = QueuedGroup {
                gseq,
                key: key.to_string(),
                vfinish,
                members: vec![req],
            };
            self.by_key.insert(key.to_string(), (vfinish, gseq));
            self.by_order.insert((vfinish, gseq), group);
        }
        self.len_requests += 1;
        outcome
    }

    /// Remove one request by sequence number; drops its group when it was
    /// the last member.
    fn remove_by_seq(&mut self, seq: u64) -> Option<QueuedRequest> {
        let order = *self
            .by_order
            .iter()
            .find(|(_, g)| g.members.iter().any(|m| m.seq == seq))?
            .0;
        let mut group = self.by_order.remove(&order)?;
        let idx = group.members.iter().position(|m| m.seq == seq)?;
        let removed = group.members.remove(idx);
        if group.members.is_empty() {
            self.by_key.remove(&group.key);
        } else {
            self.by_order.insert(order, group);
        }
        self.len_requests -= 1;
        Some(removed)
    }

    /// Dispatch the next group: the smallest `(vfinish, gseq)` whose
    /// eligibility has arrived. Advances the WFQ virtual clock.
    pub fn pop_eligible(&mut self, now_ns: u64) -> Option<QueuedGroup> {
        let order = *self
            .by_order
            .iter()
            .find(|(_, g)| g.eligible_ns() <= now_ns)?
            .0;
        let group = self.by_order.remove(&order)?;
        self.by_key.remove(&group.key);
        self.len_requests -= group.members.len();
        self.vtime = self.vtime.max(group.vfinish);
        Some(group)
    }

    /// Earliest future eligibility among queued groups (for scheduling a
    /// wakeup when everything queued is still rate-deferred).
    pub fn next_eligibility(&self) -> Option<u64> {
        self.by_order.values().map(|g| g.eligible_ns()).min()
    }

    /// Lowest priority currently queued, if any.
    pub fn lowest_queued_priority(&self) -> Option<Priority> {
        self.by_order
            .values()
            .flat_map(|g| g.members.iter().map(|m| m.priority))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64, priority: Priority) -> QueuedRequest {
        QueuedRequest {
            seq,
            tenant: (seq % 4) as u32,
            priority,
            submit_ns: seq * 1_000,
            eligible_ns: 0,
        }
    }

    #[test]
    fn weighted_interleave_is_deterministic() {
        // Backlog of both classes at weights 2:1 dispatches two
        // interactive groups per background group.
        let mut q = WfqQueue::new(2, 1, 64);
        for i in 0..6 {
            q.admit(&format!("int-{i}"), req(i, Priority::Interactive));
            q.admit(&format!("bg-{i}"), req(100 + i, Priority::Background));
        }
        let mut order = Vec::new();
        while let Some(g) = q.pop_eligible(0) {
            order.push(g.key.clone());
        }
        assert_eq!(
            order,
            vec![
                "int-0", "bg-0", "int-1", "int-2", "bg-1", "int-3", "int-4", "bg-2", "int-5",
                "bg-3", "bg-4", "bg-5"
            ]
        );
    }

    #[test]
    fn identical_keys_coalesce_into_one_group() {
        let mut q = WfqQueue::new(8, 1, 64);
        q.admit("panel", req(0, Priority::Interactive));
        q.admit("panel", req(1, Priority::Interactive));
        q.admit("other", req(2, Priority::Interactive));
        assert_eq!(q.len(), 3);
        assert_eq!(q.group_count(), 2);
        let g = q.pop_eligible(0).unwrap();
        assert_eq!(g.key, "panel");
        assert_eq!(g.members.len(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interactive_join_promotes_a_background_group() {
        let mut q = WfqQueue::new(8, 1, 64);
        q.admit("export", req(0, Priority::Background));
        q.admit("refresh-a", req(1, Priority::Interactive));
        q.admit("refresh-b", req(2, Priority::Interactive));
        // An interactive request coalescing onto the background export
        // pulls the group forward to interactive fairness: it now beats
        // interactive work admitted after the join.
        q.admit("export", req(3, Priority::Interactive));
        q.admit("refresh-c", req(4, Priority::Interactive));
        let mut order = Vec::new();
        while let Some(g) = q.pop_eligible(0) {
            if g.key == "export" {
                assert_eq!(g.priority(), Priority::Interactive);
                assert_eq!(g.members.len(), 2);
            }
            order.push(g.key.clone());
        }
        assert_eq!(order, vec!["refresh-a", "refresh-b", "export", "refresh-c"]);
    }

    #[test]
    fn full_queue_sheds_lowest_priority_latest_first() {
        let mut q = WfqQueue::new(8, 1, 3);
        q.admit("a", req(0, Priority::Interactive));
        q.admit("b", req(1, Priority::Background));
        q.admit("c", req(2, Priority::Background));
        // Interactive newcomer displaces the latest background request.
        match q.admit("d", req(3, Priority::Interactive)) {
            AdmitOutcome::ShedOther {
                victim,
                lowest_present,
            } => {
                assert_eq!(victim.seq, 2);
                assert_eq!(victim.priority, Priority::Background);
                assert_eq!(lowest_present, Priority::Background);
            }
            other => panic!("expected ShedOther, got {other:?}"),
        }
        assert_eq!(q.len(), 3);
        // Background newcomer into an all-interactive queue sheds itself.
        q.admit("e", req(4, Priority::Interactive));
        match q.admit("f", req(5, Priority::Background)) {
            AdmitOutcome::ShedNewcomer { lowest_present } => {
                assert_eq!(lowest_present, Priority::Background);
            }
            other => panic!("expected ShedNewcomer, got {other:?}"),
        }
    }

    #[test]
    fn eligibility_defers_dispatch() {
        let mut q = WfqQueue::new(8, 1, 8);
        let mut r = req(0, Priority::Interactive);
        r.eligible_ns = 500;
        q.admit("later", r);
        assert!(q.pop_eligible(499).is_none());
        assert_eq!(q.next_eligibility(), Some(500));
        assert!(q.pop_eligible(500).is_some());
    }

    #[test]
    fn replay_is_bit_identical() {
        let run = || {
            let mut q = WfqQueue::new(5, 2, 6);
            let mut log = Vec::new();
            for i in 0..40u64 {
                let p = if i % 3 == 0 {
                    Priority::Background
                } else {
                    Priority::Interactive
                };
                let outcome = q.admit(&format!("k{}", i % 7), req(i, p));
                log.push(format!("{outcome:?}"));
                if i % 5 == 4 {
                    if let Some(g) = q.pop_eligible(i * 1_000) {
                        log.push(format!("pop {} x{}", g.key, g.members.len()));
                    }
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
