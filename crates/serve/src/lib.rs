//! Multi-tenant query serving for P-MoVE: admission control, per-tenant
//! quotas, weighted priority scheduling, and request coalescing in front
//! of the TSDB query engine.
//!
//! The paper's visualization front-end refreshes many dashboard panels for
//! many users against one telemetry store. This crate is the layer between
//! those panels and the engine:
//!
//! - **Admission control** — a bounded request queue plus a dispatcher
//!   concurrency limit ([`ServingConfig::queue_capacity`],
//!   [`ServingConfig::max_concurrency`]). Overflow sheds the
//!   lowest-priority request present, never silently drops.
//! - **Quotas** — per-tenant token buckets ([`TokenBucket`]) and an
//!   in-layer cap; the bucket either rejects (HTTP-429 semantics) or
//!   parks the request until its deterministic refill instant
//!   ([`OverloadPolicy`]).
//! - **Priority scheduling** — weighted fair queueing over
//!   interactive/background classes ([`WfqQueue`]) with explicit
//!   tie-breaks, so a replay under the same schedule is bit-identical.
//! - **Coalescing** — requests for the same normalized query share one
//!   backend execution, both in the queue and against in-flight work, on
//!   top of the engine's shared (write-invalidated) result cache.
//!
//! Everything runs on the virtual clock as a discrete-event simulation
//! ([`QueryServer::run`]), producing a [`ServeReport`] whose conservation
//! identity — `submitted == rejected + admitted` and
//! `admitted == served + shed` — is checked by a fairness proptest.

pub mod bucket;
pub mod config;
pub mod report;
pub mod sched;
pub mod server;

pub use bucket::TokenBucket;
pub use config::{OverloadPolicy, Priority, ServeError, ServingConfig};
pub use report::{LatencySummary, RejectReason, ServeReport, ShedEvent, TenantStats};
pub use sched::{AdmitOutcome, QueuedGroup, QueuedRequest, WfqQueue};
pub use server::{BackendExec, QueryBackend, QueryServer, ServeRequest};
