//! Serving configuration and its typed validation errors.

use std::fmt;

/// Request class; interactive panel refreshes outrank background exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Bulk work: report exports, long-window scans. Shed first.
    Background,
    /// A human is watching: dashboard panel refresh.
    Interactive,
}

impl Priority {
    /// Stable label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Background => "background",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What to do with a request the tenant's token bucket cannot cover right
/// now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse immediately (HTTP 429 semantics); the request is never
    /// admitted.
    Reject,
    /// Admit and park in the queue until the bucket refills; the request
    /// becomes dispatch-eligible at its deterministic token-reservation
    /// time (and may still be shed if the queue overflows).
    Queue,
}

/// Validated configuration of the serving front-end.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Bounded admission queue: queued requests across all tenants.
    /// Overflow sheds the lowest-priority eligible request.
    pub queue_capacity: usize,
    /// Concurrent query executions (dispatcher slots).
    pub max_concurrency: usize,
    /// Per-tenant token refill rate (requests per virtual second).
    pub tenant_rate_per_s: u64,
    /// Per-tenant bucket capacity (burst allowance).
    pub tenant_burst: u64,
    /// Per-tenant cap on requests in the layer at once (queued +
    /// executing); exceeding it rejects regardless of policy.
    pub tenant_cap: usize,
    /// What happens when a tenant's bucket is empty.
    pub overload: OverloadPolicy,
    /// Weighted-fair-queueing weight of [`Priority::Interactive`].
    pub interactive_weight: u32,
    /// Weighted-fair-queueing weight of [`Priority::Background`].
    pub background_weight: u32,
    /// Serving-latency p99 objective (ns, submit -> completion). The
    /// default SLO installed over the `pmove.serve.latency_ns` histogram
    /// pages when the tail crosses it; must be one of the registry's
    /// latency bucket bounds so budget accounting is exact.
    pub slo_p99_ns: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            queue_capacity: 1024,
            max_concurrency: 8,
            tenant_rate_per_s: 50,
            tenant_burst: 100,
            tenant_cap: 64,
            overload: OverloadPolicy::Queue,
            interactive_weight: 8,
            background_weight: 1,
            slo_p99_ns: 5_000_000,
        }
    }
}

impl ServingConfig {
    /// Weight of one priority class.
    pub fn weight(&self, p: Priority) -> u32 {
        match p {
            Priority::Interactive => self.interactive_weight,
            Priority::Background => self.background_weight,
        }
    }

    /// Validate the configuration; every rejected field maps to a typed
    /// [`ServeError`] so callers can render precise diagnostics.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::ZeroCapacityQueue);
        }
        if self.max_concurrency == 0 {
            return Err(ServeError::ZeroConcurrency);
        }
        if self.tenant_rate_per_s == 0 || self.tenant_burst == 0 {
            return Err(ServeError::ZeroRateBucket {
                rate_per_s: self.tenant_rate_per_s,
                burst: self.tenant_burst,
            });
        }
        if self.tenant_cap == 0 {
            return Err(ServeError::ZeroTenantCap);
        }
        if self.interactive_weight == 0 || self.background_weight == 0 {
            return Err(ServeError::ZeroWeight {
                interactive: self.interactive_weight,
                background: self.background_weight,
            });
        }
        if self
            .interactive_weight
            .checked_add(self.background_weight)
            .is_none()
        {
            return Err(ServeError::WeightSumOverflow {
                interactive: self.interactive_weight,
                background: self.background_weight,
            });
        }
        if self.slo_p99_ns == 0 {
            return Err(ServeError::ZeroSloThreshold);
        }
        Ok(())
    }
}

/// Typed serving-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `queue_capacity == 0`: nothing could ever be admitted under the
    /// queue policy.
    ZeroCapacityQueue,
    /// `max_concurrency == 0`: no dispatcher slots.
    ZeroConcurrency,
    /// A token bucket that can never hold or refill a token.
    ZeroRateBucket {
        /// Configured refill rate.
        rate_per_s: u64,
        /// Configured burst capacity.
        burst: u64,
    },
    /// `tenant_cap == 0`: every request would be refused.
    ZeroTenantCap,
    /// A scheduling class with weight 0 would never be served.
    ZeroWeight {
        /// Interactive weight as configured.
        interactive: u32,
        /// Background weight as configured.
        background: u32,
    },
    /// Class weights whose sum overflows `u32` break the WFQ virtual
    /// clock arithmetic.
    WeightSumOverflow {
        /// Interactive weight as configured.
        interactive: u32,
        /// Background weight as configured.
        background: u32,
    },
    /// `slo_p99_ns == 0`: the latency objective would page on any sample.
    ZeroSloThreshold,
    /// The backend failed to execute a query.
    Backend(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ZeroCapacityQueue => write!(f, "serving config: zero-capacity queue"),
            ServeError::ZeroConcurrency => write!(f, "serving config: zero max_concurrency"),
            ServeError::ZeroRateBucket { rate_per_s, burst } => write!(
                f,
                "serving config: zero-rate token bucket (rate={rate_per_s}/s, burst={burst})"
            ),
            ServeError::ZeroTenantCap => write!(f, "serving config: zero per-tenant cap"),
            ServeError::ZeroWeight {
                interactive,
                background,
            } => write!(
                f,
                "serving config: zero class weight (interactive={interactive}, background={background})"
            ),
            ServeError::WeightSumOverflow {
                interactive,
                background,
            } => write!(
                f,
                "serving config: weight sum overflows u32 (interactive={interactive}, background={background})"
            ),
            ServeError::ZeroSloThreshold => write!(f, "serving config: zero SLO threshold"),
            ServeError::Backend(e) => write!(f, "serving backend: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<pmove_tsdb::TsdbError> for ServeError {
    fn from(e: pmove_tsdb::TsdbError) -> Self {
        ServeError::Backend(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServingConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_capacity_queue_is_rejected() {
        let cfg = ServingConfig {
            queue_capacity: 0,
            ..ServingConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ServeError::ZeroCapacityQueue));
    }

    #[test]
    fn zero_concurrency_is_rejected() {
        let cfg = ServingConfig {
            max_concurrency: 0,
            ..ServingConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ServeError::ZeroConcurrency));
    }

    #[test]
    fn zero_rate_bucket_is_rejected() {
        for (rate, burst) in [(0, 100), (50, 0), (0, 0)] {
            let cfg = ServingConfig {
                tenant_rate_per_s: rate,
                tenant_burst: burst,
                ..ServingConfig::default()
            };
            assert_eq!(
                cfg.validate(),
                Err(ServeError::ZeroRateBucket {
                    rate_per_s: rate,
                    burst,
                })
            );
        }
    }

    #[test]
    fn zero_tenant_cap_is_rejected() {
        let cfg = ServingConfig {
            tenant_cap: 0,
            ..ServingConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ServeError::ZeroTenantCap));
    }

    #[test]
    fn zero_weight_is_rejected() {
        let cfg = ServingConfig {
            background_weight: 0,
            ..ServingConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ServeError::ZeroWeight {
                interactive: 8,
                background: 0,
            })
        );
    }

    #[test]
    fn weight_sum_overflow_is_rejected() {
        let cfg = ServingConfig {
            interactive_weight: u32::MAX,
            background_weight: 1,
            ..ServingConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(ServeError::WeightSumOverflow {
                interactive: u32::MAX,
                background: 1,
            })
        );
    }

    #[test]
    fn zero_slo_threshold_is_rejected() {
        let cfg = ServingConfig {
            slo_p99_ns: 0,
            ..ServingConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ServeError::ZeroSloThreshold));
    }

    #[test]
    fn errors_render() {
        let text = ServeError::ZeroRateBucket {
            rate_per_s: 0,
            burst: 5,
        }
        .to_string();
        assert!(text.contains("zero-rate token bucket"), "{text}");
    }
}
