//! Serving-layer property tests: under *arbitrary* tenant arrival
//! schedules, no admitted query is ever lost — every submitted request is
//! accounted exactly once (`submitted == rejected + admitted` and
//! `admitted == served + shed`) — and every shed decision hits the
//! lowest-priority request present at that moment. A third property pins
//! bit-identical replay: the same schedule against the same data produces
//! the same report, byte for byte.
//!
//! Case count defaults to 192 and is raised in CI's serving job via the
//! `PMOVE_SERVE_CASES` environment variable.

use pmove_serve::{OverloadPolicy, Priority, QueryServer, ServeRequest, ServingConfig};
use pmove_tsdb::{Database, Point};
use proptest::prelude::*;
use proptest::StrategyExt;

fn serve_cases() -> u32 {
    std::env::var("PMOVE_SERVE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(192)
}

/// A small database the schedules query; panel index selects the window.
fn db() -> Database {
    let db = Database::new("serve-prop");
    for s in 0..30i64 {
        for host in ["a", "b", "c"] {
            let p = Point::new("cpu")
                .timestamp(s * 1_000_000_000)
                .tag("host", host)
                .field("busy", (s % 7) as f64);
            db.write_point(p).unwrap();
        }
    }
    db
}

/// One arrival in a generated schedule, in schedule-local units.
#[derive(Debug, Clone)]
struct Arrival {
    tenant: u32,
    interactive: bool,
    panel: u8,
    gap_us: u16,
}

fn arrival() -> impl Strategy<Value = Arrival> {
    (0u32..6, any::<bool>(), 0u8..5, 0u16..800).prop_map(|(tenant, interactive, panel, gap_us)| {
        Arrival {
            tenant,
            interactive,
            panel,
            gap_us,
        }
    })
}

/// Tight limits so arbitrary schedules actually exercise shedding, rate
/// deferral, and tenant caps — not just the happy path.
fn config() -> impl Strategy<Value = ServingConfig> {
    (
        (2usize..10, 1usize..4, 1u64..200),  // queue, concurrency, rate
        (1u64..6, 1usize..8, any::<bool>()), // burst, cap, policy
    )
        .prop_map(
            |((queue_capacity, max_concurrency, rate), (burst, cap, reject))| ServingConfig {
                queue_capacity,
                max_concurrency,
                tenant_rate_per_s: rate,
                tenant_burst: burst,
                tenant_cap: cap,
                overload: if reject {
                    OverloadPolicy::Reject
                } else {
                    OverloadPolicy::Queue
                },
                ..ServingConfig::default()
            },
        )
}

fn schedule_of(arrivals: &[Arrival]) -> Vec<ServeRequest> {
    let mut at_ns = 0u64;
    arrivals
        .iter()
        .map(|a| {
            at_ns += u64::from(a.gap_us) * 1_000;
            ServeRequest {
                tenant: a.tenant,
                priority: if a.interactive {
                    Priority::Interactive
                } else {
                    Priority::Background
                },
                query: format!(
                    "SELECT mean(\"busy\") FROM \"cpu\" WHERE time >= {} GROUP BY time(5000000000)",
                    u64::from(a.panel) * 1_000_000_000
                ),
                at_ns,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: serve_cases() })]

    /// Conservation: nothing is lost and nothing is double-counted, both
    /// globally and per tenant, under any schedule and any configuration.
    #[test]
    fn admitted_requests_are_never_lost(
        arrivals in proptest::collection::vec(arrival(), 1..120),
        cfg in config(),
    ) {
        let db = db();
        let mut srv = QueryServer::new(&db, cfg).unwrap();
        let schedule = schedule_of(&arrivals);
        let report = srv.run(&schedule).unwrap();
        prop_assert_eq!(report.submitted, schedule.len() as u64);
        prop_assert!(report.conserved(), "conservation violated: {:?}", report);
        for (tenant, t) in &report.per_tenant {
            prop_assert_eq!(
                t.submitted, t.rejected + t.admitted,
                "tenant {} admission imbalance", tenant
            );
            prop_assert_eq!(
                t.admitted, t.served + t.shed,
                "tenant {} service imbalance", tenant
            );
        }
        // Coalescing never invents work: executions cover all served.
        prop_assert!(report.executions + report.coalesced <= report.served + report.executions);
        prop_assert_eq!(report.served - report.coalesced, report.executions,
            "every execution serves exactly one non-coalesced request");
    }

    /// Shedding discipline: every victim was the lowest-priority request
    /// present (newcomer included) at the moment of the decision.
    #[test]
    fn shed_requests_are_always_lowest_priority(
        arrivals in proptest::collection::vec(arrival(), 1..120),
        cfg in config(),
    ) {
        let db = db();
        let mut srv = QueryServer::new(&db, cfg).unwrap();
        let report = srv.run(&schedule_of(&arrivals)).unwrap();
        prop_assert!(
            report.shed_only_lowest(),
            "shed over the head of lower-priority work: {:?}",
            report.shed_events
        );
    }

    /// Replay: the same schedule against identically-seeded state yields a
    /// bit-identical report (the bench gate's foundation).
    #[test]
    fn replay_is_bit_identical(
        arrivals in proptest::collection::vec(arrival(), 1..60),
        cfg in config(),
    ) {
        let run = || {
            let db = db();
            let mut srv = QueryServer::new(&db, cfg.clone()).unwrap();
            srv.run(&schedule_of(&arrivals)).unwrap()
        };
        prop_assert_eq!(run(), run());
    }
}
