//! Exact operation accounting for the benchmark kernels.
//!
//! Like `likwid-bench`, every kernel executes a pre-determined number of
//! operations, so FLOP/load/store counts are known *by construction* —
//! this is the ground truth the Fig. 4 accuracy study measures PMU
//! samples against.
//!
//! Byte accounting follows the CARM convention (all core-issued memory
//! traffic counts): AI = flops / (8 × (loads + stores)).
//! With that convention the theoretical intensities are
//! DDOT = 0.125, PeakFlops = 2.0, Triad (4 vectors) = 0.0625 — the values
//! live-CARM captures in Fig. 9 (the paper prints Triad's as "0.625",
//! an apparent typo for 0.0625; see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// Exact per-run operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Double-precision FP operations.
    pub flops: u64,
    /// f64 elements loaded.
    pub load_elems: u64,
    /// f64 elements stored.
    pub store_elems: u64,
    /// Bytes of distinct data touched (the working set).
    pub working_set_bytes: u64,
}

impl OpCounts {
    /// Total bytes moved to/from the core (8 bytes per element op).
    pub fn total_bytes(&self) -> u64 {
        (self.load_elems + self.store_elems) * 8
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.total_bytes() == 0 {
            return f64::INFINITY;
        }
        self.flops as f64 / self.total_bytes() as f64
    }
}

/// `sum`: `s += a[i]` — 1 flop, 1 load per element.
pub fn sum(n: u64) -> OpCounts {
    OpCounts {
        flops: n,
        load_elems: n,
        store_elems: 0,
        working_set_bytes: n * 8,
    }
}

/// `copy`: `b[i] = a[i]` — no flops, 1 load + 1 store.
pub fn copy(n: u64) -> OpCounts {
    OpCounts {
        flops: 0,
        load_elems: n,
        store_elems: n,
        working_set_bytes: 2 * n * 8,
    }
}

/// `scale`: `b[i] = s·a[i]` — 1 flop, 1 load + 1 store.
pub fn scale(n: u64) -> OpCounts {
    OpCounts {
        flops: n,
        load_elems: n,
        store_elems: n,
        working_set_bytes: 2 * n * 8,
    }
}

/// `stream` (likwid's 3-vector triad): `a[i] = b[i] + s·c[i]` —
/// 2 flops, 2 loads, 1 store.
pub fn stream(n: u64) -> OpCounts {
    OpCounts {
        flops: 2 * n,
        load_elems: 2 * n,
        store_elems: n,
        working_set_bytes: 3 * n * 8,
    }
}

/// `triad` (likwid's 4-vector triad): `a[i] = b[i] + c[i]·d[i]` —
/// 2 flops, 3 loads, 1 store. AI = 2/32 = 0.0625.
pub fn triad(n: u64) -> OpCounts {
    OpCounts {
        flops: 2 * n,
        load_elems: 3 * n,
        store_elems: n,
        working_set_bytes: 4 * n * 8,
    }
}

/// `ddot`: `s += a[i]·b[i]` — 2 flops, 2 loads. AI = 2/16 = 0.125.
pub fn ddot(n: u64) -> OpCounts {
    OpCounts {
        flops: 2 * n,
        load_elems: 2 * n,
        store_elems: 0,
        working_set_bytes: 2 * n * 8,
    }
}

/// `daxpy`: `b[i] += s·a[i]` — 2 flops, 2 loads, 1 store.
pub fn daxpy(n: u64) -> OpCounts {
    OpCounts {
        flops: 2 * n,
        load_elems: 2 * n,
        store_elems: n,
        working_set_bytes: 2 * n * 8,
    }
}

/// `peakflops`: 16 FMA-chain flops per loaded element — AI = 16/8 = 2.0,
/// matching the PeakFlops benchmark of Fig. 9.
pub fn peakflops(n: u64) -> OpCounts {
    OpCounts {
        flops: 16 * n,
        load_elems: n,
        store_elems: 0,
        working_set_bytes: n * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_ai_values_match_fig9() {
        assert!((ddot(1000).arithmetic_intensity() - 0.125).abs() < 1e-12);
        assert!((peakflops(1000).arithmetic_intensity() - 2.0).abs() < 1e-12);
        assert!((triad(1000).arithmetic_intensity() - 0.0625).abs() < 1e-12);
        assert!((stream(1000).arithmetic_intensity() - 2.0 / 24.0).abs() < 1e-12);
        assert_eq!(copy(1000).arithmetic_intensity(), 0.0);
        assert!((sum(1000).arithmetic_intensity() - 0.125).abs() < 1e-12);
        assert!((daxpy(1000).arithmetic_intensity() - 2.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn counts_scale_linearly() {
        let a = triad(100);
        let b = triad(200);
        assert_eq!(b.flops, 2 * a.flops);
        assert_eq!(b.load_elems, 2 * a.load_elems);
        assert_eq!(b.working_set_bytes, 2 * a.working_set_bytes);
    }

    #[test]
    fn working_sets_reflect_vector_counts() {
        let n = 1024;
        assert_eq!(sum(n).working_set_bytes, n * 8);
        assert_eq!(ddot(n).working_set_bytes, 2 * n * 8);
        assert_eq!(stream(n).working_set_bytes, 3 * n * 8);
        assert_eq!(triad(n).working_set_bytes, 4 * n * 8);
    }

    #[test]
    fn zero_byte_kernel_infinite_ai() {
        let z = OpCounts {
            flops: 10,
            load_elems: 0,
            store_elems: 0,
            working_set_bytes: 0,
        };
        assert!(z.arithmetic_intensity().is_infinite());
    }
}
