//! The STREAM benchmark (McCalpin), used by P-MoVE's `BenchmarkInterface`.
//!
//! Four kernels — Copy, Scale, Add, Triad — timed best-of-`reps` over
//! arrays sized to defeat caching, reporting sustainable bandwidth in
//! bytes/s exactly as the original reports MB/s.

use rayon::prelude::*;
use std::time::Instant;

/// STREAM results: best-of-N bandwidths in bytes/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResult {
    /// Array length used.
    pub n: usize,
    /// Copy bandwidth (16 bytes/element).
    pub copy_bps: f64,
    /// Scale bandwidth (16 bytes/element).
    pub scale_bps: f64,
    /// Add bandwidth (24 bytes/element).
    pub add_bps: f64,
    /// Triad bandwidth (24 bytes/element).
    pub triad_bps: f64,
    /// Validation outcome: max relative error of final arrays.
    pub max_rel_err: f64,
}

impl StreamResult {
    /// True when validation passed (error below STREAM's 1e-13 epsilon,
    /// scaled for reductions).
    pub fn valid(&self) -> bool {
        self.max_rel_err < 1e-10
    }
}

/// Run STREAM with arrays of `n` f64 elements, `reps` repetitions.
pub fn run_stream(n: usize, reps: usize) -> StreamResult {
    assert!(n >= 16 && reps >= 1, "bad STREAM configuration");
    let scalar = 3.0f64;
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];

    let mut best = [f64::INFINITY; 4];
    for _ in 0..reps {
        // Copy: c = a
        let t = Instant::now();
        c.par_iter_mut().zip(&a).for_each(|(ci, &ai)| *ci = ai);
        best[0] = best[0].min(t.elapsed().as_secs_f64());
        // Scale: b = scalar * c
        let t = Instant::now();
        b.par_iter_mut()
            .zip(&c)
            .for_each(|(bi, &ci)| *bi = scalar * ci);
        best[1] = best[1].min(t.elapsed().as_secs_f64());
        // Add: c = a + b
        let t = Instant::now();
        c.par_iter_mut()
            .zip(a.par_iter().zip(&b))
            .for_each(|(ci, (&ai, &bi))| *ci = ai + bi);
        best[2] = best[2].min(t.elapsed().as_secs_f64());
        // Triad: a = b + scalar * c
        let t = Instant::now();
        a.par_iter_mut()
            .zip(b.par_iter().zip(&c))
            .for_each(|(ai, (&bi, &ci))| *ai = bi + scalar * ci);
        best[3] = best[3].min(t.elapsed().as_secs_f64());
    }

    // Validation: evolve scalars the same way.
    let (mut va, mut vb, mut vc) = (1.0f64, 2.0f64, 0.0f64);
    for _ in 0..reps {
        vc = va;
        vb = scalar * vc;
        vc = va + vb;
        va = vb + scalar * vc;
    }
    let err = |x: f64, v: f64| ((x - v) / v).abs();
    let max_rel_err = err(a[n / 2], va)
        .max(err(b[n / 2], vb))
        .max(err(c[n / 2], vc));

    let nb = n as f64;
    StreamResult {
        n,
        copy_bps: 16.0 * nb / best[0],
        scale_bps: 16.0 * nb / best[1],
        add_bps: 24.0 * nb / best[2],
        triad_bps: 24.0 * nb / best[3],
        max_rel_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_validates_and_reports_positive_bandwidth() {
        let r = run_stream(100_000, 3);
        assert!(r.valid(), "validation error {}", r.max_rel_err);
        assert!(r.copy_bps > 0.0);
        assert!(r.scale_bps > 0.0);
        assert!(r.add_bps > 0.0);
        assert!(r.triad_bps > 0.0);
        assert_eq!(r.n, 100_000);
    }

    #[test]
    fn more_reps_never_hurt_best_time() {
        // Best-of-N timing is monotone in N (with the same data): cheap
        // sanity rather than a perf assertion.
        let r1 = run_stream(50_000, 1);
        let r5 = run_stream(50_000, 5);
        assert!(r5.valid() && r1.valid());
    }

    #[test]
    #[should_panic(expected = "bad STREAM configuration")]
    fn tiny_arrays_rejected() {
        run_stream(8, 1);
    }
}
