//! # pmove-kernels — benchmark kernels with analytic ground truth
//!
//! The paper's accuracy study (Fig. 4) compares PMU samples against
//! `likwid-bench`, which executes *pre-determined, fixed numbers of
//! instruction streams* and reports the exact operation counts afterwards.
//! This crate plays that role:
//!
//! * [`streams`] — the six kernels of Figs. 4/5 (`sum`, `stream`, `triad`,
//!   `peakflops`, `ddot`, `daxpy`) plus `copy`/`scale`, each as a real,
//!   runnable (rayon-parallel) Rust kernel **and** an analytic
//!   [`ground_truth::OpCounts`] record — ground truth by construction;
//! * [`ground_truth`] — exact FLOP/load/store/byte accounting per kernel,
//!   including the theoretical arithmetic intensities the live-CARM study
//!   quotes (Triad 0.625, PeakFlops 2, DDOT 0.125 — Fig. 9);
//! * [`stream_bench`] — a STREAM benchmark (copy/scale/add/triad,
//!   best-of-N timing) for the `BenchmarkInterface`;
//! * [`hpcg`] — a compact but real HPCG: 27-point stencil operator,
//!   preconditioned CG with symmetric Gauss–Seidel, residual-verified;
//! * [`registry`] — kernel lookup by name for Scenario B's
//!   "request an executable" flow.

pub mod ground_truth;
pub mod hpcg;
pub mod registry;
pub mod stream_bench;
pub mod streams;

pub use ground_truth::OpCounts;
pub use registry::{KernelSpec, Registry};
pub use streams::StreamKernel;
