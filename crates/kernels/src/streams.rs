//! The runnable benchmark kernels (rayon-parallel) behind the analytic
//! counts of [`crate::ground_truth`].
//!
//! Each kernel really executes its operation stream, so these serve both
//! as host-side benchmarks (Criterion targets) and as verified
//! implementations whose results are checkable in closed form.

use crate::ground_truth::{self, OpCounts};
use rayon::prelude::*;
use std::time::Instant;

/// The benchmark kernels of Figs. 4, 5 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// Reduction: `s += a[i]`.
    Sum,
    /// `b[i] = a[i]`.
    Copy,
    /// `b[i] = s·a[i]`.
    Scale,
    /// 3-vector triad: `a[i] = b[i] + s·c[i]`.
    Stream,
    /// 4-vector triad: `a[i] = b[i] + c[i]·d[i]`.
    Triad,
    /// Dot product: `s += a[i]·b[i]`.
    Ddot,
    /// `b[i] += s·a[i]`.
    Daxpy,
    /// FMA chain: 16 flops per element.
    Peakflops,
}

/// Result of one kernel run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// A value derived from the output (prevents dead-code elimination and
    /// allows closed-form verification).
    pub checksum: f64,
    /// Wall time of the numeric section.
    pub seconds: f64,
    /// The analytic operation counts for this run.
    pub ops: OpCounts,
}

impl StreamKernel {
    /// The six kernels used by the Fig. 4/5 experiments, in paper order.
    pub fn fig4_set() -> [StreamKernel; 6] {
        [
            StreamKernel::Sum,
            StreamKernel::Stream,
            StreamKernel::Triad,
            StreamKernel::Peakflops,
            StreamKernel::Ddot,
            StreamKernel::Daxpy,
        ]
    }

    /// Kernel name (likwid-bench spelling).
    pub fn name(&self) -> &'static str {
        match self {
            StreamKernel::Sum => "sum",
            StreamKernel::Copy => "copy",
            StreamKernel::Scale => "scale",
            StreamKernel::Stream => "stream",
            StreamKernel::Triad => "triad",
            StreamKernel::Ddot => "ddot",
            StreamKernel::Daxpy => "daxpy",
            StreamKernel::Peakflops => "peakflops",
        }
    }

    /// Look a kernel up by name.
    pub fn by_name(name: &str) -> Option<StreamKernel> {
        Some(match name {
            "sum" => StreamKernel::Sum,
            "copy" => StreamKernel::Copy,
            "scale" => StreamKernel::Scale,
            "stream" => StreamKernel::Stream,
            "triad" => StreamKernel::Triad,
            "ddot" => StreamKernel::Ddot,
            "daxpy" => StreamKernel::Daxpy,
            "peakflops" => StreamKernel::Peakflops,
            _ => return None,
        })
    }

    /// Analytic operation counts for problem size `n`.
    pub fn op_counts(&self, n: u64) -> OpCounts {
        match self {
            StreamKernel::Sum => ground_truth::sum(n),
            StreamKernel::Copy => ground_truth::copy(n),
            StreamKernel::Scale => ground_truth::scale(n),
            StreamKernel::Stream => ground_truth::stream(n),
            StreamKernel::Triad => ground_truth::triad(n),
            StreamKernel::Ddot => ground_truth::ddot(n),
            StreamKernel::Daxpy => ground_truth::daxpy(n),
            StreamKernel::Peakflops => ground_truth::peakflops(n),
        }
    }

    /// Execute the kernel on vectors of length `n`; data is initialized
    /// deterministically so the checksum has a closed form.
    pub fn run(&self, n: usize) -> RunResult {
        let s = 3.0;
        let ops = self.op_counts(n as u64);
        match self {
            StreamKernel::Sum => {
                let a = vec![1.0f64; n];
                let t = Instant::now();
                let sum: f64 = a.par_iter().sum();
                RunResult {
                    checksum: sum,
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
            StreamKernel::Copy => {
                let a = vec![2.0f64; n];
                let mut b = vec![0.0f64; n];
                let t = Instant::now();
                b.par_iter_mut().zip(&a).for_each(|(bi, &ai)| *bi = ai);
                RunResult {
                    checksum: b.par_iter().sum(),
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
            StreamKernel::Scale => {
                let a = vec![2.0f64; n];
                let mut b = vec![0.0f64; n];
                let t = Instant::now();
                b.par_iter_mut().zip(&a).for_each(|(bi, &ai)| *bi = s * ai);
                RunResult {
                    checksum: b.par_iter().sum(),
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
            StreamKernel::Stream => {
                let b = vec![1.0f64; n];
                let c = vec![2.0f64; n];
                let mut a = vec![0.0f64; n];
                let t = Instant::now();
                a.par_iter_mut()
                    .zip(b.par_iter().zip(&c))
                    .for_each(|(ai, (&bi, &ci))| *ai = bi + s * ci);
                RunResult {
                    checksum: a.par_iter().sum(),
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
            StreamKernel::Triad => {
                let b = vec![1.0f64; n];
                let c = vec![2.0f64; n];
                let d = vec![0.5f64; n];
                let mut a = vec![0.0f64; n];
                let t = Instant::now();
                a.par_iter_mut()
                    .zip(b.par_iter().zip(c.par_iter().zip(&d)))
                    .for_each(|(ai, (&bi, (&ci, &di)))| *ai = bi + ci * di);
                RunResult {
                    checksum: a.par_iter().sum(),
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
            StreamKernel::Ddot => {
                let a = vec![2.0f64; n];
                let b = vec![0.5f64; n];
                let t = Instant::now();
                let dot: f64 = a.par_iter().zip(&b).map(|(&x, &y)| x * y).sum();
                RunResult {
                    checksum: dot,
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
            StreamKernel::Daxpy => {
                let a = vec![1.0f64; n];
                let mut b = vec![2.0f64; n];
                let t = Instant::now();
                b.par_iter_mut().zip(&a).for_each(|(bi, &ai)| *bi += s * ai);
                RunResult {
                    checksum: b.par_iter().sum(),
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
            StreamKernel::Peakflops => {
                let a = vec![1.000_000_1f64; n];
                let t = Instant::now();
                // 8 FMAs (16 flops) per element, kept in registers.
                let acc: f64 = a
                    .par_iter()
                    .map(|&x| {
                        let mut r = x;
                        for _ in 0..8 {
                            r = r.mul_add(1.000_000_01, 1e-9);
                        }
                        r
                    })
                    .sum();
                RunResult {
                    checksum: acc,
                    seconds: t.elapsed().as_secs_f64(),
                    ops,
                }
            }
        }
    }

    /// Closed-form expected checksum for `run(n)`.
    pub fn expected_checksum(&self, n: usize) -> f64 {
        let n = n as f64;
        match self {
            StreamKernel::Sum => n,          // Σ 1
            StreamKernel::Copy => 2.0 * n,   // Σ 2
            StreamKernel::Scale => 6.0 * n,  // Σ 3·2
            StreamKernel::Stream => 7.0 * n, // Σ 1 + 3·2
            StreamKernel::Triad => 2.0 * n,  // Σ 1 + 2·0.5
            StreamKernel::Ddot => n,         // Σ 2·0.5
            StreamKernel::Daxpy => 5.0 * n,  // Σ 2 + 3·1
            StreamKernel::Peakflops => {
                // Eight chained FMAs on 1.0000001; compute serially.
                let mut r = 1.000_000_1f64;
                for _ in 0..8 {
                    r = r.mul_add(1.000_000_01, 1e-9);
                }
                r * n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 10_000;

    #[test]
    fn every_kernel_matches_its_closed_form() {
        for k in [
            StreamKernel::Sum,
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Stream,
            StreamKernel::Triad,
            StreamKernel::Ddot,
            StreamKernel::Daxpy,
            StreamKernel::Peakflops,
        ] {
            let r = k.run(N);
            let expect = k.expected_checksum(N);
            let rel = (r.checksum - expect).abs() / expect.abs().max(1.0);
            assert!(rel < 1e-9, "{}: {} vs {}", k.name(), r.checksum, expect);
            assert!(r.seconds >= 0.0);
        }
    }

    #[test]
    fn op_counts_attached_to_results() {
        let r = StreamKernel::Triad.run(N);
        assert_eq!(r.ops.flops, 2 * N as u64);
        assert_eq!(r.ops.load_elems, 3 * N as u64);
    }

    #[test]
    fn name_roundtrip() {
        for k in StreamKernel::fig4_set() {
            assert_eq!(StreamKernel::by_name(k.name()), Some(k));
        }
        assert_eq!(StreamKernel::by_name("bogus"), None);
    }

    #[test]
    fn fig4_set_is_the_papers_six() {
        let names: Vec<&str> = StreamKernel::fig4_set().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["sum", "stream", "triad", "peakflops", "ddot", "daxpy"]
        );
    }
}
