//! Kernel registry: Scenario B requests "an executable and its
//! command-line parameters" — the registry resolves such requests to
//! runnable kernels with known operation profiles.

use crate::ground_truth::OpCounts;
use crate::streams::StreamKernel;

/// A launchable kernel specification (the simulated "executable +
/// parameters" pair of step B2 in the paper's Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Executable name.
    pub name: String,
    /// Parsed problem size.
    pub n: u64,
    /// Requested thread count.
    pub threads: u32,
}

impl KernelSpec {
    /// Parse a command line like `"triad -n 1048576 -t 8"`.
    pub fn parse(cmdline: &str) -> Option<KernelSpec> {
        let mut parts = cmdline.split_whitespace();
        let name = parts.next()?.to_string();
        let mut n = 1 << 20;
        let mut threads = 1;
        while let Some(tok) = parts.next() {
            match tok {
                "-n" => n = parts.next()?.parse().ok()?,
                "-t" => threads = parts.next()?.parse().ok()?,
                _ => return None,
            }
        }
        Some(KernelSpec { name, n, threads })
    }

    /// Render back to a command line.
    pub fn cmdline(&self) -> String {
        format!("{} -n {} -t {}", self.name, self.n, self.threads)
    }
}

/// The registry of launchable kernels.
#[derive(Debug, Default)]
pub struct Registry;

impl Registry {
    /// Known kernel names.
    pub fn names() -> Vec<&'static str> {
        vec![
            "sum",
            "copy",
            "scale",
            "stream",
            "triad",
            "ddot",
            "daxpy",
            "peakflops",
        ]
    }

    /// Whether a spec refers to a known kernel.
    pub fn resolve(spec: &KernelSpec) -> Option<StreamKernel> {
        StreamKernel::by_name(&spec.name)
    }

    /// Analytic op counts for a spec.
    pub fn op_counts(spec: &KernelSpec) -> Option<OpCounts> {
        Some(Registry::resolve(spec)?.op_counts(spec.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let s = KernelSpec::parse("triad -n 4096 -t 8").unwrap();
        assert_eq!(s.name, "triad");
        assert_eq!(s.n, 4096);
        assert_eq!(s.threads, 8);
        assert_eq!(s.cmdline(), "triad -n 4096 -t 8");
    }

    #[test]
    fn parse_defaults_and_failures() {
        let s = KernelSpec::parse("ddot").unwrap();
        assert_eq!(s.n, 1 << 20);
        assert_eq!(s.threads, 1);
        assert!(KernelSpec::parse("").is_none());
        assert!(KernelSpec::parse("triad -n").is_none());
        assert!(KernelSpec::parse("triad --bogus 3").is_none());
        assert!(KernelSpec::parse("triad -n abc").is_none());
    }

    #[test]
    fn resolve_and_counts() {
        let s = KernelSpec::parse("peakflops -n 100 -t 2").unwrap();
        assert_eq!(Registry::resolve(&s), Some(StreamKernel::Peakflops));
        assert_eq!(Registry::op_counts(&s).unwrap().flops, 1600);
        let unknown = KernelSpec::parse("mystery -n 5").unwrap();
        assert!(Registry::resolve(&unknown).is_none());
        assert!(Registry::op_counts(&unknown).is_none());
        assert_eq!(Registry::names().len(), 8);
    }
}
