//! A compact but real HPCG (High Performance Conjugate Gradient).
//!
//! The P-MoVE `BenchmarkInterface` runs CARM, STREAM and HPCG on probed
//! targets (§III-C). This module implements the essential HPCG pipeline:
//! a 27-point stencil operator on a 3-D grid, preconditioned CG with a
//! symmetric Gauss–Seidel sweep, convergence verification and the
//! standard GFLOP/s accounting.

use pmove_spmv::coo::Coo;
use pmove_spmv::csr::Csr;
use pmove_spmv::row::spmv_row_parallel;

/// Build the 27-point stencil operator for an `nx × ny × nz` grid:
/// diagonal 26, off-diagonals −1 (the HPCG reference problem).
pub fn build_operator(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let idx = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as u32;
    let mut coo = Coo::new(n, n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let row = idx(x, y, z);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            let col = idx(xx as usize, yy as usize, zz as usize);
                            let v = if col == row { 26.0 } else { -1.0 };
                            coo.push(row, col, v);
                        }
                    }
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

/// One symmetric Gauss–Seidel sweep: forward solve then backward solve,
/// in place on `x`, for `A x ≈ r`.
pub fn symgs(a: &Csr, r: &[f64], x: &mut [f64]) {
    let n = a.rows;
    // Forward sweep.
    for i in 0..n {
        let (cols, vals) = a.row(i);
        let mut sum = r[i];
        let mut diag = 1.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize == i {
                diag = v;
            } else {
                sum -= v * x[c as usize];
            }
        }
        x[i] = sum / diag;
    }
    // Backward sweep.
    for i in (0..n).rev() {
        let (cols, vals) = a.row(i);
        let mut sum = r[i];
        let mut diag = 1.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize == i {
                diag = v;
            } else {
                sum -= v * x[c as usize];
            }
        }
        x[i] = sum / diag;
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn waxpby(w: &mut [f64], alpha: f64, x: &[f64], beta: f64, y: &[f64]) {
    for ((wi, xi), yi) in w.iter_mut().zip(x).zip(y) {
        *wi = alpha * xi + beta * yi;
    }
}

/// HPCG run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HpcgResult {
    /// Grid dimensions.
    pub dims: (usize, usize, usize),
    /// Iterations executed.
    pub iterations: usize,
    /// Final relative residual ‖b − Ax‖/‖b‖.
    pub final_rel_residual: f64,
    /// Residual after every iteration.
    pub residual_history: Vec<f64>,
    /// Total FP operations (HPCG accounting: SpMV 2·nnz, SymGS 4·nnz,
    /// dots 2n, waxpbys 3n per iteration).
    pub flops: u64,
    /// Wall time of the solve.
    pub seconds: f64,
}

impl HpcgResult {
    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.seconds.max(1e-12) / 1e9
    }

    /// HPCG's pass criterion: ~50 iterations must reduce the residual by
    /// several orders of magnitude.
    pub fn converged(&self, tol: f64) -> bool {
        self.final_rel_residual < tol
    }
}

/// Run preconditioned CG on the 27-point problem with `b = A·1` (so the
/// exact solution is the ones vector) for at most `max_iters` iterations
/// or until the relative residual drops below `tol`.
pub fn run_hpcg(nx: usize, ny: usize, nz: usize, max_iters: usize, tol: f64) -> HpcgResult {
    let a = build_operator(nx, ny, nz);
    let n = a.rows;
    let ones = vec![1.0f64; n];
    let mut b = vec![0.0f64; n];
    spmv_row_parallel(&a, &ones, &mut b);
    let norm_b = dot(&b, &b).sqrt();

    let mut x = vec![0.0f64; n];
    let mut r = b.clone(); // r = b - A·0
    let mut z = vec![0.0f64; n];
    let mut p = vec![0.0f64; n];
    let mut ap = vec![0.0f64; n];

    let start = std::time::Instant::now();
    let mut history = Vec::with_capacity(max_iters);
    let mut flops: u64 = 0;
    let nnz = a.nnz() as u64;
    let mut rz_old = 0.0;
    let mut iterations = 0;

    for it in 0..max_iters {
        // Preconditioner: z = M⁻¹ r via one SymGS sweep (from zero).
        z.iter_mut().for_each(|v| *v = 0.0);
        symgs(&a, &r, &mut z);
        flops += 4 * nnz;
        let rz = dot(&r, &z);
        flops += 2 * n as u64;
        if it == 0 {
            p.copy_from_slice(&z);
        } else {
            let beta = rz / rz_old;
            let p_old = p.clone();
            waxpby(&mut p, 1.0, &z, beta, &p_old);
            flops += 3 * n as u64;
        }
        rz_old = rz;
        spmv_row_parallel(&a, &p, &mut ap);
        flops += 2 * nnz;
        let alpha = rz / dot(&p, &ap);
        flops += 2 * n as u64;
        let x_old = x.clone();
        waxpby(&mut x, 1.0, &x_old, alpha, &p);
        let r_old = r.clone();
        waxpby(&mut r, 1.0, &r_old, -alpha, &ap);
        flops += 6 * n as u64;
        let res = dot(&r, &r).sqrt() / norm_b;
        flops += 2 * n as u64;
        history.push(res);
        iterations = it + 1;
        if res < tol {
            break;
        }
    }

    HpcgResult {
        dims: (nx, ny, nz),
        iterations,
        final_rel_residual: *history.last().unwrap_or(&1.0),
        residual_history: history,
        flops,
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_structure() {
        let a = build_operator(4, 4, 4);
        assert_eq!(a.rows, 64);
        a.validate().unwrap();
        // Interior point has 27 nnz; corner has 8.
        assert_eq!(a.max_row_nnz(), 27);
        assert_eq!(a.row_nnz(0), 8);
        // Rows sum to diag(26) - neighbours: weakly diagonally dominant,
        // corner rows strictly (26 - 7 = 19 > 0).
        let (cols, vals) = a.row(0);
        let _ = cols;
        let sum: f64 = vals.iter().sum();
        assert!((sum - 19.0).abs() < 1e-12);
    }

    #[test]
    fn symgs_reduces_residual() {
        let a = build_operator(5, 5, 5);
        let b = vec![1.0; a.rows];
        let mut x = vec![0.0; a.rows];
        symgs(&a, &b, &mut x);
        let mut ax = vec![0.0; a.rows];
        spmv_row_parallel(&a, &x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).powi(2))
            .sum::<f64>()
            .sqrt();
        let res0 = (a.rows as f64).sqrt(); // ‖b‖ with x = 0
        assert!(res < res0 * 0.5, "res {res} vs {res0}");
    }

    #[test]
    fn cg_converges_to_ones() {
        let r = run_hpcg(8, 8, 8, 50, 1e-9);
        assert!(r.converged(1e-9), "residual {}", r.final_rel_residual);
        assert!(r.iterations < 50);
        // Residual history is monotone-ish decreasing overall.
        assert!(r.residual_history.last().unwrap() < &r.residual_history[0]);
        assert!(r.flops > 0);
        assert!(r.gflops() > 0.0);
    }

    #[test]
    fn larger_grids_take_more_flops() {
        let small = run_hpcg(6, 6, 6, 10, 0.0);
        let large = run_hpcg(12, 12, 12, 10, 0.0);
        assert!(large.flops > 4 * small.flops);
        assert_eq!(small.iterations, 10);
    }
}
