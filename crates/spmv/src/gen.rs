//! Deterministic sparse-matrix generators for the structure classes of the
//! paper's evaluation matrices (Table IV).
//!
//! | class | SuiteSparse exemplar | structure |
//! |---|---|---|
//! | 2-D mesh | `hugetrace-00020` (DIMACS10) | planar, ~3 nnz/row |
//! | 3-D adaptive mesh | `adaptive` (DIMACS10) | grid, 4 nnz/row |
//! | banded FEM | `audikw_1`, `dielFilterV3real` | dense bands, ~80 nnz/row |
//! | dense correlation blocks | `human_gene1` | small n, ~1000 nnz/row, skewed |
//! | uniform random | baseline | Erdős–Rényi |
//!
//! RCM behaviour differs strongly per class — mesh matrices gain a lot
//! (bandwidth collapses), already-banded FEM matrices gain a little, random
//! matrices barely change — which is exactly the gradient Figs. 7/8 exploit.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// 2-D 5-point grid of `nx × ny` vertices, vertices shuffled so the natural
/// order is *not* already banded (giving RCM room to work, like the
/// DIMACS10 trace graphs).
pub fn mesh2d(nx: usize, ny: usize, seed: u64, shuffle: bool) -> Csr {
    let n = nx * ny;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if shuffle {
        shuffle_in_place(&mut perm, seed);
    }
    let mut coo = Coo::new(n, n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x2d);
    for y in 0..ny {
        for x in 0..nx {
            let v = perm[y * nx + x];
            coo.push(v, v, 4.0 + rng.gen_range(-0.1..0.1));
            if x + 1 < nx {
                let u = perm[y * nx + x + 1];
                coo.push_sym(v.min(u), v.max(u), -1.0);
            }
            if y + 1 < ny {
                let u = perm[(y + 1) * nx + x];
                coo.push_sym(v.min(u), v.max(u), -1.0);
            }
        }
    }
    Csr::from_coo(&coo)
}

/// 3-D 7-point grid (`adaptive`-class structure).
pub fn mesh3d(nx: usize, ny: usize, nz: usize, seed: u64, shuffle: bool) -> Csr {
    let n = nx * ny * nz;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if shuffle {
        shuffle_in_place(&mut perm, seed);
    }
    let idx = |x: usize, y: usize, z: usize| perm[(z * ny + y) * nx + x];
    let mut coo = Coo::new(n, n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = idx(x, y, z);
                coo.push(v, v, 6.0);
                if x + 1 < nx {
                    let u = idx(x + 1, y, z);
                    coo.push_sym(v.min(u), v.max(u), -1.0);
                }
                if y + 1 < ny {
                    let u = idx(x, y + 1, z);
                    coo.push_sym(v.min(u), v.max(u), -1.0);
                }
                if z + 1 < nz {
                    let u = idx(x, y, z + 1);
                    coo.push_sym(v.min(u), v.max(u), -1.0);
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Banded FEM-like matrix: `n` rows, ~`band_nnz` entries per row clustered
/// within ±`half_band` of the diagonal (audikw_1 / dielFilter class).
///
/// With `shuffle`, vertex labels are permuted randomly — the state real
/// SuiteSparse FEM matrices arrive in (mesh-generator order, far from the
/// RCM-optimal band), which is what gives RCM something to recover.
pub fn banded_fem(n: usize, half_band: usize, band_nnz: usize, seed: u64, shuffle: bool) -> Csr {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    if shuffle {
        shuffle_in_place(&mut perm, seed ^ 0x5f);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfe);
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        coo.push(perm[r], perm[r], 10.0);
        for _ in 0..band_nnz / 2 {
            let offset = rng.gen_range(1..=half_band.max(1)) as i64;
            let c = r as i64 + if rng.gen_bool(0.5) { offset } else { -offset };
            if c >= 0 && (c as usize) < n && c != r as i64 {
                let (a, b) = (perm[r], perm[c as usize]);
                coo.push_sym(a.min(b), a.max(b), rng.gen_range(-1.0..1.0));
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Dense-block correlation matrix (human_gene1 class): small `n`, very
/// dense rows with a power-law-ish skew — the stress test for row-parallel
/// SpMV load balance.
pub fn gene_blocks(n: usize, mean_row_nnz: usize, seed: u64) -> Csr {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6e);
    let mut coo = Coo::new(n, n);
    for r in 0..n as u32 {
        coo.push(r, r, 1.0);
        // Pareto-ish row length: most rows near the mean, a few huge.
        let u: f64 = rng.gen_range(0.001..1.0f64);
        let len = ((mean_row_nnz as f64) * 0.35 / u.powf(0.7)) as usize;
        let len = len.clamp(1, n - 1);
        for _ in 0..len {
            let c = rng.gen_range(0..n as u32);
            if c != r {
                coo.push(r, c, rng.gen_range(-1.0..1.0));
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Uniform random (Erdős–Rényi) matrix with `row_nnz` entries per row.
pub fn uniform_random(n: usize, row_nnz: usize, seed: u64) -> Csr {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x44);
    let mut coo = Coo::new(n, n);
    for r in 0..n as u32 {
        coo.push(r, r, 2.0);
        for _ in 0..row_nnz {
            let c = rng.gen_range(0..n as u32);
            if c != r {
                coo.push(r, c, rng.gen_range(-1.0..1.0));
            }
        }
    }
    Csr::from_coo(&coo)
}

fn shuffle_in_place(perm: &mut [u32], seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::bandwidth;

    #[test]
    fn mesh2d_structure() {
        let m = mesh2d(20, 20, 7, false);
        assert_eq!(m.rows, 400);
        m.validate().unwrap();
        // Interior vertices have 5 nnz (diag + 4 neighbours).
        assert!((m.mean_row_nnz() - 4.8).abs() < 0.3);
        // Unshuffled grid is already banded; shuffled is not.
        let shuffled = mesh2d(20, 20, 7, true);
        assert!(bandwidth(&shuffled) > bandwidth(&m) * 3);
    }

    #[test]
    fn mesh3d_structure() {
        let m = mesh3d(8, 8, 8, 7, true);
        assert_eq!(m.rows, 512);
        m.validate().unwrap();
        assert!((m.mean_row_nnz() - 6.6).abs() < 0.5);
    }

    #[test]
    fn banded_fem_is_banded_and_denser() {
        let m = banded_fem(500, 20, 40, 3, false);
        m.validate().unwrap();
        assert!(m.mean_row_nnz() > 20.0);
        assert!(bandwidth(&m) <= 20);
    }

    #[test]
    fn gene_blocks_are_skewed() {
        let m = gene_blocks(400, 60, 9);
        m.validate().unwrap();
        assert!(m.mean_row_nnz() > 20.0);
        // Skew: the max row is far above the mean.
        assert!(m.max_row_nnz() as f64 > 3.0 * m.mean_row_nnz());
        assert!(m.row_imbalance() > 0.5);
    }

    #[test]
    fn uniform_random_is_balanced() {
        let m = uniform_random(500, 8, 11);
        m.validate().unwrap();
        assert!(m.row_imbalance() < 0.25);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(mesh2d(10, 10, 5, true), mesh2d(10, 10, 5, true));
        assert_eq!(gene_blocks(100, 20, 5), gene_blocks(100, 20, 5));
        assert_ne!(gene_blocks(100, 20, 5), gene_blocks(100, 20, 6));
    }

    #[test]
    fn matrices_are_symmetric_where_promised() {
        // mesh2d builds symmetric structure: check a sample.
        let m = mesh2d(12, 12, 3, true);
        for r in 0..m.rows {
            let (cols, _) = m.row(r);
            for &c in cols {
                let (back, _) = m.row(c as usize);
                assert!(back.contains(&(r as u32)), "asymmetry at ({r},{c})");
            }
        }
    }
}
