//! Coordinate-format sparse matrices (the construction format).

/// A COO matrix: a list of `(row, col, value)` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Entries (may be unsorted; duplicates are summed on CSR conversion).
    pub entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Add one entry (bounds-checked).
    pub fn push(&mut self, row: u32, col: u32, value: f64) {
        assert!(
            (row as usize) < self.rows && (col as usize) < self.cols,
            "entry ({row},{col}) out of bounds {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Add `(r,c,v)` and `(c,r,v)` (symmetric construction).
    pub fn push_sym(&mut self, row: u32, col: u32, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Number of stored entries (before dedup).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut m = Coo::new(3, 3);
        m.push(0, 1, 1.0);
        m.push_sym(1, 2, 2.0);
        m.push_sym(2, 2, 3.0); // diagonal: no mirror
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        Coo::new(2, 2).push(2, 0, 1.0);
    }
}
