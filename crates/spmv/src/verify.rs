//! Result verification helpers shared by tests, examples and benches.

use crate::csr::Csr;
use crate::merge::spmv_merge;
use crate::row::{spmv_row_parallel, spmv_seq};

/// Max absolute difference between two vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Relative L2 error ‖a−b‖ / ‖b‖ (0 when both are zero).
pub fn rel_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    let den: f64 = b.iter().map(|y| y * y).sum();
    if den == 0.0 {
        return num.sqrt();
    }
    (num / den).sqrt()
}

/// Run every SpMV implementation on the same input and check they agree
/// with the sequential reference within `tol`. Returns the reference `y`.
pub fn cross_check(a: &Csr, x: &[f64], partitions: usize, tol: f64) -> Result<Vec<f64>, String> {
    let mut y_ref = vec![0.0; a.rows];
    spmv_seq(a, x, &mut y_ref);
    let mut y_row = vec![0.0; a.rows];
    spmv_row_parallel(a, x, &mut y_row);
    let d = max_abs_diff(&y_row, &y_ref);
    if d > tol {
        return Err(format!("row-parallel deviates by {d}"));
    }
    let mut y_merge = vec![0.0; a.rows];
    spmv_merge(a, x, &mut y_merge, partitions);
    let d = max_abs_diff(&y_merge, &y_ref);
    if d > tol {
        return Err(format!("merge deviates by {d}"));
    }
    Ok(y_ref)
}

/// Deterministic test vector.
pub fn test_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::mesh2d;

    #[test]
    fn diff_metrics() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert!(rel_l2_error(&[1.0, 0.0], &[1.0, 0.0]) < 1e-15);
        assert_eq!(rel_l2_error(&[0.0], &[0.0]), 0.0);
        assert!((rel_l2_error(&[2.0], &[1.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn cross_check_passes_on_good_implementations() {
        let a = mesh2d(16, 16, 1, true);
        let x = test_vector(a.cols);
        let y = cross_check(&a, &x, 8, 1e-9).unwrap();
        assert_eq!(y.len(), a.rows);
    }

    #[test]
    fn test_vector_is_deterministic_and_bounded() {
        let v = test_vector(100);
        assert_eq!(v, test_vector(100));
        assert!(v.iter().all(|x| (-1.0..=1.0).contains(x)));
    }
}
