//! Merge-path SpMV (Merrill & Garland, "Merge-based SpMV using the CSR
//! storage format").
//!
//! The computation is framed as merging two lists: the row-end offsets
//! (`row_ptr[1..]`) and the natural numbers `0..nnz` (one per non-zero).
//! The merge path has length `rows + nnz` and is split into equal segments,
//! one per worker; a 2-D binary search along each segment's starting
//! diagonal finds its `(row, nnz)` coordinate. Every worker therefore gets
//! the *same amount of work* regardless of row-length skew — the property
//! that makes Merge beat row-parallel SpMV on matrices like `human_gene1`.
//!
//! Workers that end mid-row produce a carry `(row, partial)` fixed up
//! serially afterwards, as in the original algorithm.

use crate::csr::Csr;
use rayon::prelude::*;

/// Coordinate on the merge path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeCoord {
    /// Row index (position in the row-ends list).
    pub row: usize,
    /// Non-zero index (position in the nnz list).
    pub nz: usize,
}

/// 2-D binary search: find the merge-path coordinate on diagonal `d`
/// (i.e. `row + nz == d`) where the path crosses.
pub fn merge_path_search(d: usize, row_ends: &[u32], nnz: usize) -> MergeCoord {
    let mut lo = d.saturating_sub(nnz);
    let mut hi = d.min(row_ends.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // Would the merge consume row-end `mid` before nnz `d - mid - 1`?
        if (row_ends[mid] as usize) < d - mid {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    MergeCoord {
        row: lo,
        nz: d - lo,
    }
}

/// Merge-path parallel `y = A x` with `partitions` equal-work segments.
pub fn spmv_merge(a: &Csr, x: &[f64], y: &mut [f64], partitions: usize) {
    assert!(a.compatible_x(x), "x length mismatch");
    assert_eq!(y.len(), a.rows, "y length mismatch");
    assert!(partitions > 0, "need at least one partition");
    let nnz = a.nnz();
    let row_ends = &a.row_ptr[1..];
    let path_len = a.rows + nnz;
    let per = path_len.div_ceil(partitions.max(1));

    // Segment starting coordinates.
    let coords: Vec<MergeCoord> = (0..=partitions)
        .map(|p| merge_path_search((p * per).min(path_len), row_ends, nnz))
        .collect();

    for v in y.iter_mut() {
        *v = 0.0;
    }

    // Each segment consumes its path span: complete rows accumulate into a
    // per-segment buffer, the trailing partial row becomes a carry. Buffers
    // are merged serially afterwards (rows completed by different segments
    // are disjoint; carries add into rows completed elsewhere).
    let col_idx = &a.col_idx;
    let values = &a.values;
    // (completed rows in the segment, trailing-partial-row carry)
    type SegmentResult = (Vec<(usize, f64)>, (usize, f64));
    let results: Vec<SegmentResult> = coords
        .par_windows(2)
        .map(|w| {
            let (start, end) = (w[0], w[1]);
            let mut complete: Vec<(usize, f64)> = Vec::new();
            let mut row = start.row;
            let mut nz = start.nz;
            let mut acc = 0.0;
            while row < end.row || (row == end.row && nz < end.nz) {
                if row < a.rows && nz < row_ends[row] as usize {
                    acc += values[nz] * x[col_idx[nz] as usize];
                    nz += 1;
                } else {
                    complete.push((row, acc));
                    acc = 0.0;
                    row += 1;
                }
            }
            (complete, (row, acc))
        })
        .collect();

    for (complete, (carry_row, carry)) in results {
        for (r, v) in complete {
            y[r] += v;
        }
        if carry_row < a.rows && carry != 0.0 {
            y[carry_row] += carry;
        }
    }
}

/// Work per partition in consumed path elements — by construction nearly
/// equal; exposed for the load-balance ablation bench.
pub fn merge_partition_work(a: &Csr, partitions: usize) -> Vec<u64> {
    let nnz = a.nnz();
    let path_len = a.rows + nnz;
    let per = path_len.div_ceil(partitions.max(1));
    let row_ends = &a.row_ptr[1..];
    let coords: Vec<MergeCoord> = (0..=partitions)
        .map(|p| merge_path_search((p * per).min(path_len), row_ends, nnz))
        .collect();
    coords
        .windows(2)
        .map(|w| ((w[1].row + w[1].nz) - (w[0].row + w[0].nz)) as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gene_blocks, mesh2d, uniform_random};
    use crate::row::spmv_seq;

    #[test]
    fn search_walks_the_merge_path() {
        // rows with ends [2, 3, 5] and nnz = 5 → path length 8.
        let row_ends = [2u32, 3, 5];
        assert_eq!(
            merge_path_search(0, &row_ends, 5),
            MergeCoord { row: 0, nz: 0 }
        );
        let end = merge_path_search(8, &row_ends, 5);
        assert_eq!(end, MergeCoord { row: 3, nz: 5 });
        // Monotone along diagonals.
        let mut prev = merge_path_search(0, &row_ends, 5);
        for d in 1..=8 {
            let cur = merge_path_search(d, &row_ends, 5);
            assert!(cur.row >= prev.row && cur.nz >= prev.nz);
            assert_eq!(cur.row + cur.nz, d);
            prev = cur;
        }
    }

    #[test]
    fn merge_matches_sequential() {
        for a in [
            mesh2d(20, 20, 3, true),
            uniform_random(250, 12, 4),
            gene_blocks(120, 50, 5),
        ] {
            let x: Vec<f64> = (0..a.cols).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
            let mut y_ref = vec![0.0; a.rows];
            spmv_seq(&a, &x, &mut y_ref);
            for parts in [1, 2, 7, 16, 64] {
                let mut y = vec![0.0; a.rows];
                spmv_merge(&a, &x, &mut y, parts);
                for (i, (v1, v2)) in y_ref.iter().zip(&y).enumerate() {
                    assert!(
                        (v1 - v2).abs() < 1e-9,
                        "parts={parts} row {i}: {v1} vs {v2}"
                    );
                }
            }
        }
    }

    #[test]
    fn handles_empty_rows() {
        // Matrix with several empty rows.
        let mut coo = crate::coo::Coo::new(6, 6);
        coo.push(1, 1, 2.0);
        coo.push(4, 0, 3.0);
        coo.push(4, 5, 4.0);
        let a = Csr::from_coo(&coo);
        let x = vec![1.0; 6];
        let mut y = vec![0.0; 6];
        spmv_merge(&a, &x, &mut y, 4);
        assert_eq!(y, vec![0.0, 2.0, 0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn partition_work_is_balanced_even_on_skewed_matrices() {
        let a = gene_blocks(300, 80, 7);
        let work = merge_partition_work(&a, 16);
        let max = *work.iter().max().unwrap() as f64;
        let min = *work.iter().min().unwrap() as f64;
        // Path elements per partition differ by at most the rounding slack.
        assert!(max - min <= (a.rows + a.nnz()).div_ceil(16) as f64 * 0.1 + 1.0);
        // Contrast: row-chunk work on the same matrix is strictly more
        // skewed than merge-path work.
        let row_work = crate::row::row_chunk_work(&a, 16);
        let rmax = *row_work.iter().max().unwrap() as f64;
        let rmean = row_work.iter().sum::<u64>() as f64 / 16.0;
        let mmax = max;
        let mmean = work.iter().sum::<u64>() as f64 / 16.0;
        assert!(
            rmax / rmean > 1.05 && rmax / rmean > mmax / mmean,
            "row skew {} vs merge skew {}",
            rmax / rmean,
            mmax / mmean
        );
    }

    #[test]
    fn more_partitions_than_path_elements() {
        let mut coo = crate::coo::Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        let a = Csr::from_coo(&coo);
        let mut y = vec![0.0; 2];
        spmv_merge(&a, &[2.0, 2.0], &mut y, 64);
        assert_eq!(y, vec![2.0, 0.0]);
    }
}
