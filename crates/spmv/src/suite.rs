//! Scaled stand-ins for the five SuiteSparse matrices of Table IV.
//!
//! The real matrices (6.8 M–16 M rows, 25 M–89 M nnz) are neither available
//! offline nor tractable for a deterministic test suite, so each is
//! replaced by a generated matrix of the same *structure class* at
//! 1/`scale` of the linear size, preserving the properties the experiments
//! depend on: nnz/row, bandwidth character, row-length skew, and the RCM
//! reordering response.

use crate::csr::Csr;
use crate::gen;

/// One matrix of the evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteMatrix {
    /// `adaptive` (DIMACS10): 3-D adaptive mesh, 6.8 M rows, 27.2 M nnz.
    Adaptive,
    /// `audikw_1` (GHS_psdef): FEM stiffness, 944 k rows, 77.7 M nnz.
    Audikw1,
    /// `dielFilterV3real` (Dziekonski): FEM EM filter, 1.1 M rows, 89.3 M nnz.
    DielFilterV3real,
    /// `hugetrace-00020` (DIMACS10): 2-D trace mesh, 16 M rows, 48 M nnz.
    Hugetrace00020,
    /// `human_gene1` (Belcastro): gene correlation, 22 k rows, 24.7 M nnz.
    HumanGene1,
}

impl SuiteMatrix {
    /// All five, in Table IV order.
    pub fn all() -> [SuiteMatrix; 5] {
        [
            SuiteMatrix::Adaptive,
            SuiteMatrix::Audikw1,
            SuiteMatrix::DielFilterV3real,
            SuiteMatrix::Hugetrace00020,
            SuiteMatrix::HumanGene1,
        ]
    }

    /// SuiteSparse name.
    pub fn name(&self) -> &'static str {
        match self {
            SuiteMatrix::Adaptive => "adaptive",
            SuiteMatrix::Audikw1 => "audikw_1",
            SuiteMatrix::DielFilterV3real => "dielFilterV3real",
            SuiteMatrix::Hugetrace00020 => "hugetrace-00020",
            SuiteMatrix::HumanGene1 => "human_gene1",
        }
    }

    /// SuiteSparse group.
    pub fn group(&self) -> &'static str {
        match self {
            SuiteMatrix::Adaptive | SuiteMatrix::Hugetrace00020 => "DIMACS10",
            SuiteMatrix::Audikw1 => "GHS_psdef",
            SuiteMatrix::DielFilterV3real => "Dziekonski",
            SuiteMatrix::HumanGene1 => "Belcastro",
        }
    }

    /// Original dimensions (rows == cols) from Table IV.
    pub fn original_rows(&self) -> u64 {
        match self {
            SuiteMatrix::Adaptive => 6_815_744,
            SuiteMatrix::Audikw1 => 943_695,
            SuiteMatrix::DielFilterV3real => 1_102_824,
            SuiteMatrix::Hugetrace00020 => 16_002_413,
            SuiteMatrix::HumanGene1 => 22_283,
        }
    }

    /// Original non-zero count from Table IV.
    pub fn original_nnz(&self) -> u64 {
        match self {
            SuiteMatrix::Adaptive => 27_200_000,
            SuiteMatrix::Audikw1 => 77_700_000,
            SuiteMatrix::DielFilterV3real => 89_300_000,
            SuiteMatrix::Hugetrace00020 => 48_000_000,
            SuiteMatrix::HumanGene1 => 24_700_000,
        }
    }

    /// Generate the scaled stand-in. `scale` of 1.0 produces a small test
    /// size (~10–60 k rows depending on class); larger scales grow it.
    pub fn generate(&self, scale: f64) -> Csr {
        assert!(scale > 0.0, "scale must be positive");
        let s = scale.sqrt();
        match self {
            // 3-D mesh: ~4 nnz/row in Table IV (27.2M/6.8M).
            SuiteMatrix::Adaptive => {
                let side = ((22.0 * s) as usize).max(4);
                gen::mesh3d(side, side, side, 0xada1, true)
            }
            // FEM, ~82 nnz/row, banded.
            SuiteMatrix::Audikw1 => {
                let n = ((12_000.0 * scale) as usize).max(256);
                gen::banded_fem(n, 400, 80, 0xa0d, true)
            }
            // FEM, ~81 nnz/row, banded, slightly wider.
            SuiteMatrix::DielFilterV3real => {
                let n = ((14_000.0 * scale) as usize).max(256);
                gen::banded_fem(n, 600, 78, 0xd1e1, true)
            }
            // 2-D trace mesh: 3 nnz/row, planar and heavily shuffled.
            SuiteMatrix::Hugetrace00020 => {
                let side = ((160.0 * s) as usize).max(8);
                gen::mesh2d(side, side, 0x4761, true)
            }
            // Gene correlation: tiny n, ~5 % density (1108 nnz/row at
            // n = 22 k in the original), heavily skewed rows.
            SuiteMatrix::HumanGene1 => {
                let n = ((1_500.0 * scale) as usize).max(128);
                gen::gene_blocks(n, (n as f64 * 0.05) as usize, 0x6e11)
            }
        }
    }

    /// Expected nnz/row class of the original (for shape checks).
    pub fn original_nnz_per_row(&self) -> f64 {
        self.original_nnz() as f64 / self.original_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::bandwidth;
    use crate::reorder::Reordering;

    #[test]
    fn table4_metadata() {
        assert_eq!(SuiteMatrix::all().len(), 5);
        assert_eq!(SuiteMatrix::Hugetrace00020.name(), "hugetrace-00020");
        assert_eq!(SuiteMatrix::HumanGene1.group(), "Belcastro");
        assert_eq!(SuiteMatrix::Adaptive.original_rows(), 6_815_744);
    }

    #[test]
    fn stand_ins_match_structure_class() {
        // Sparse classes: nnz/row tracks the original's.
        let cases = [
            (SuiteMatrix::Adaptive, 4.0, 3.0),
            (SuiteMatrix::Hugetrace00020, 3.0, 2.0),
            (SuiteMatrix::Audikw1, 82.3, 25.0),
        ];
        for (m, orig, tol) in cases {
            let a = m.generate(1.0);
            a.validate().unwrap();
            let got = a.mean_row_nnz();
            assert!(
                (got - orig).abs() < tol,
                "{}: nnz/row {got} vs original {orig}",
                m.name()
            );
        }
        // Dense class: *density* is the preserved property (original
        // human_gene1 holds 1108 nnz/row at n = 22 283 ≈ 5 % dense).
        let g = SuiteMatrix::HumanGene1.generate(1.0);
        g.validate().unwrap();
        let density = g.mean_row_nnz() / g.rows as f64;
        let orig_density = SuiteMatrix::HumanGene1.original_nnz_per_row()
            / SuiteMatrix::HumanGene1.original_rows() as f64;
        assert!(
            (density - orig_density).abs() < 0.04,
            "density {density} vs original {orig_density}"
        );
    }

    #[test]
    fn mesh_standins_respond_to_rcm_like_originals() {
        let a = SuiteMatrix::Hugetrace00020.generate(0.4);
        let r = Reordering::Rcm.apply(&a);
        assert!(bandwidth(&r) * 3 < bandwidth(&a));
    }

    #[test]
    fn gene_standin_is_skewed() {
        let a = SuiteMatrix::HumanGene1.generate(0.5);
        assert!(a.row_imbalance() > 0.5);
    }

    #[test]
    fn scaling_grows_matrices() {
        let small = SuiteMatrix::Audikw1.generate(0.05);
        let large = SuiteMatrix::Audikw1.generate(0.2);
        assert!(large.rows > 2 * small.rows);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SuiteMatrix::Adaptive.generate(0.3);
        let b = SuiteMatrix::Adaptive.generate(0.3);
        assert_eq!(a, b);
    }
}
