//! Row-parallel CSR SpMV — the Intel MKL stand-in.
//!
//! Classic row-split parallelization with rayon: rows are divided into
//! contiguous chunks, one per worker. On hardware, MKL vectorizes the
//! inner dot products with AVX-512; the corresponding simulated ISA mix
//! is produced by [`crate::profile`]. The known weakness — load imbalance
//! when row lengths are skewed — is what merge-path SpMV fixes.

use crate::csr::Csr;
use rayon::prelude::*;

/// Sequential reference: `y = A x`.
pub fn spmv_seq(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert!(a.compatible_x(x), "x length mismatch");
    assert_eq!(y.len(), a.rows, "y length mismatch");
    for (r, out) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c as usize];
        }
        *out = acc;
    }
}

/// Row-parallel `y = A x` using rayon. Rows are chunked contiguously; each
/// chunk is processed independently (no synchronization on `y`).
pub fn spmv_row_parallel(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert!(a.compatible_x(x), "x length mismatch");
    assert_eq!(y.len(), a.rows, "y length mismatch");
    let row_ptr = &a.row_ptr;
    let col_idx = &a.col_idx;
    let values = &a.values;
    y.par_iter_mut().enumerate().for_each(|(r, out)| {
        let lo = row_ptr[r] as usize;
        let hi = row_ptr[r + 1] as usize;
        let mut acc = 0.0;
        for k in lo..hi {
            acc += values[k] * x[col_idx[k] as usize];
        }
        *out = acc;
    });
}

/// Work (nnz) assigned to each of `chunks` contiguous row chunks — the
/// imbalance diagnostic that motivates merge-path partitioning.
pub fn row_chunk_work(a: &Csr, chunks: usize) -> Vec<u64> {
    assert!(chunks > 0, "need at least one chunk");
    let rows_per = a.rows.div_ceil(chunks);
    (0..chunks)
        .map(|c| {
            let lo = (c * rows_per).min(a.rows);
            let hi = ((c + 1) * rows_per).min(a.rows);
            (a.row_ptr[hi] - a.row_ptr[lo]) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gene_blocks, mesh2d, uniform_random};

    fn ones(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn matches_manual_small_case() {
        // [[1 2 0], [0 0 3], [4 0 5]] x [1,2,3] = [5, 9, 19]
        let mut coo = crate::coo::Coo::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 2, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            coo.push(r, c, v);
        }
        let a = Csr::from_coo(&coo);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        spmv_seq(&a, &x, &mut y);
        assert_eq!(y, vec![5.0, 9.0, 19.0]);
        let mut yp = vec![0.0; 3];
        spmv_row_parallel(&a, &x, &mut yp);
        assert_eq!(yp, y);
    }

    #[test]
    fn parallel_matches_sequential_on_generated_matrices() {
        for a in [
            mesh2d(25, 25, 3, true),
            uniform_random(300, 10, 4),
            gene_blocks(150, 40, 5),
        ] {
            let x: Vec<f64> = (0..a.cols).map(|i| (i % 7) as f64 - 3.0).collect();
            let mut y1 = vec![0.0; a.rows];
            let mut y2 = vec![0.0; a.rows];
            spmv_seq(&a, &x, &mut y1);
            spmv_row_parallel(&a, &x, &mut y2);
            for (v1, v2) in y1.iter().zip(&y2) {
                assert!((v1 - v2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn row_sums_via_ones_vector() {
        let a = mesh2d(10, 10, 3, false);
        let mut y = vec![0.0; a.rows];
        spmv_seq(&a, &ones(a.cols), &mut y);
        // 5-point Laplacian-ish rows: diag ~4 plus -1 neighbours.
        for (r, v) in y.iter().enumerate() {
            let expect = {
                let (cols, vals) = a.row(r);
                let _ = cols;
                vals.iter().sum::<f64>()
            };
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn chunk_work_shows_skew_on_gene_matrices() {
        let balanced = uniform_random(400, 8, 1);
        let skewed = gene_blocks(400, 60, 1);
        let imbalance = |w: &[u64]| {
            let max = *w.iter().max().unwrap() as f64;
            let mean = w.iter().sum::<u64>() as f64 / w.len() as f64;
            max / mean
        };
        let wb = row_chunk_work(&balanced, 8);
        let ws = row_chunk_work(&skewed, 8);
        assert!(imbalance(&ws) > imbalance(&wb));
        // All work accounted for.
        assert_eq!(ws.iter().sum::<u64>(), skewed.nnz() as u64);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn dimension_mismatch_panics() {
        let a = mesh2d(4, 4, 1, false);
        let mut y = vec![0.0; a.rows];
        spmv_seq(&a, &[1.0], &mut y);
    }
}
