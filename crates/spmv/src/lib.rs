//! # pmove-spmv — sparse-matrix substrate
//!
//! The paper demonstrates P-MoVE's live monitoring on Sparse Matrix–Vector
//! multiplication (§V-D/E): Intel MKL's vectorized SpMV vs the merge-based
//! SpMV of Merrill & Garland, over five SuiteSparse matrices in original
//! and RCM-reordered form. This crate provides all of that machinery:
//!
//! * [`coo`] / [`csr`] — sparse matrix formats and conversions;
//! * [`gen`] — deterministic generators for the structure classes of the
//!   paper's matrices (2D/3D meshes, banded FEM blocks, dense biological
//!   correlation blocks, uniform random);
//! * [`suite`] — scaled stand-ins for the five Table IV matrices;
//! * [`reorder`] — Reverse Cuthill–McKee (real BFS implementation), degree
//!   sort, random permutation, identity; symmetric permutation application;
//! * [`bandwidth`] — bandwidth/profile locality metrics;
//! * [`row`] — row-parallel CSR SpMV (the MKL stand-in, rayon-parallel);
//! * [`merge`] — merge-path SpMV (real 2-D diagonal binary-search
//!   partitioning per Merrill & Garland);
//! * [`profile`] — derivation of `pmove_hwsim`-style kernel profiles
//!   (`KernelProfile` lives in hwsim; here we compute FLOP/byte/locality
//!   numbers from the matrix structure) — the bridge that lets the machine
//!   simulator monitor these kernels;
//! * [`verify`] — reference implementation and result comparison.

pub mod bandwidth;
pub mod coo;
pub mod csr;
pub mod gen;
pub mod merge;
pub mod profile;
pub mod reorder;
pub mod row;
pub mod suite;
pub mod verify;

pub use coo::Coo;
pub use csr::Csr;
pub use reorder::Reordering;
pub use suite::SuiteMatrix;
