//! Compressed Sparse Row matrices — the kernel format.

use crate::coo::Coo;

/// A CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row pointers, length `rows + 1`.
    pub row_ptr: Vec<u32>,
    /// Column indices, length nnz, sorted within each row.
    pub col_idx: Vec<u32>,
    /// Values, length nnz.
    pub values: Vec<f64>,
}

impl Csr {
    /// Build from COO: sorts entries, sums duplicates.
    pub fn from_coo(coo: &Coo) -> Self {
        let mut entries = coo.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0u32; coo.rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        let mut last: Option<(u32, u32)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                *values.last_mut().expect("duplicate follows a value") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
                last = Some((r, c));
            }
        }
        for i in 0..coo.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr {
            rows: coo.rows,
            cols: coo.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of one row.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of non-zeros in one row.
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Mean non-zeros per row.
    pub fn mean_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.nnz() as f64 / self.rows as f64
    }

    /// Maximum non-zeros in any row (load-imbalance indicator; what makes
    /// merge-based SpMV shine over row-based).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }

    /// Coefficient of variation of row lengths (0 = perfectly regular).
    pub fn row_imbalance(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let mean = self.mean_row_nnz();
        if mean == 0.0 {
            return 0.0;
        }
        let var: f64 = (0..self.rows)
            .map(|r| (self.row_nnz(r) as f64 - mean).powi(2))
            .sum::<f64>()
            / self.rows as f64;
        var.sqrt() / mean
    }

    /// Structural check: monotone row_ptr, in-bounds sorted columns.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err("row_ptr length".into());
        }
        if *self.row_ptr.last().unwrap() as usize != self.nnz() {
            return Err("row_ptr tail != nnz".into());
        }
        for r in 0..self.rows {
            if self.row_ptr[r] > self.row_ptr[r + 1] {
                return Err(format!("row_ptr not monotone at {r}"));
            }
            let (cols, _) = self.row(r);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r} columns not strictly sorted"));
                }
            }
            if let Some(&c) = cols.last() {
                if c as usize >= self.cols {
                    return Err(format!("row {r} column out of bounds"));
                }
            }
        }
        Ok(())
    }

    /// Dense `y = A x` working buffer size check helper.
    pub fn compatible_x(&self, x: &[f64]) -> bool {
        x.len() == self.cols
    }

    /// Total working-set bytes of one SpMV: matrix (values + col_idx +
    /// row_ptr) plus the two vectors.
    pub fn spmv_working_set_bytes(&self) -> u64 {
        (self.values.len() * 8
            + self.col_idx.len() * 4
            + self.row_ptr.len() * 4
            + self.cols * 8
            + self.rows * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [[1 2 0], [0 0 3], [4 0 5]]
    pub fn small() -> Csr {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_coo_builds_sorted_rows() {
        let m = small();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_ptr, vec![0, 2, 3, 5]);
        assert_eq!(m.row(0), (&[0u32, 1][..], &[1.0, 2.0][..]));
        assert_eq!(m.row(2), (&[0u32, 2][..], &[4.0, 5.0][..]));
        m.validate().unwrap();
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        let m = Csr::from_coo(&coo);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.values[0], 3.5);
    }

    #[test]
    fn row_statistics() {
        let m = small();
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.max_row_nnz(), 2);
        assert!((m.mean_row_nnz() - 5.0 / 3.0).abs() < 1e-12);
        assert!(m.row_imbalance() > 0.0);
    }

    #[test]
    fn validation_catches_corruption() {
        let mut m = small();
        m.col_idx[0] = 99;
        assert!(m.validate().is_err());
        let mut m2 = small();
        m2.row_ptr[1] = 5;
        assert!(m2.validate().is_err());
    }

    #[test]
    fn working_set_positive() {
        assert!(small().spmv_working_set_bytes() > 0);
        assert!(small().compatible_x(&[0.0; 3]));
        assert!(!small().compatible_x(&[0.0; 2]));
    }
}
