//! Operation-count profiles of SpMV executions.
//!
//! Computes, from the matrix structure alone, everything the machine
//! simulator needs to monitor an SpMV run: FLOPs, element loads/stores,
//! working set and a locality estimate. `pmove-core` converts these counts
//! into a `pmove_hwsim::KernelProfile` with the algorithm's ISA mix
//! (AVX-512 for the MKL-like row kernel, scalar for Merge — the contrast
//! at the heart of Figs. 7 and 8).

use crate::bandwidth::x_locality;
use crate::csr::Csr;

/// Which SpMV algorithm the counts describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpmvAlgorithm {
    /// Row-parallel, vectorized (Intel MKL stand-in).
    Mkl,
    /// Merge-path, scalar inner loop (Merrill & Garland).
    Merge,
}

impl SpmvAlgorithm {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SpmvAlgorithm::Mkl => "mkl",
            SpmvAlgorithm::Merge => "merge",
        }
    }
}

/// Structure-derived operation counts for one `y = A x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvOpCounts {
    /// FP operations (one multiply + one add per stored non-zero).
    pub flops: u64,
    /// f64 elements loaded (matrix values + x gathers + row bookkeeping).
    pub load_elems: u64,
    /// f64 elements stored (y writes).
    pub store_elems: u64,
    /// Bytes touched overall (matrix + vectors).
    pub working_set_bytes: u64,
    /// Fraction of `x` gathers expected to hit in a cache of the given
    /// probe size (structure-dependent; improves under RCM).
    pub x_hit_fraction: f64,
    /// Extra bookkeeping instructions fraction (merge path pays more).
    pub overhead_factor: f64,
}

/// Derive op counts for an algorithm on a matrix. `locality_cache_bytes`
/// is the cache size used to score x-gather locality (typically the
/// per-core L2 of the target machine).
pub fn op_counts(a: &Csr, algo: SpmvAlgorithm, locality_cache_bytes: u64) -> SpmvOpCounts {
    let nnz = a.nnz() as u64;
    // 2 flops per nnz (multiply–add).
    let flops = 2 * nnz;
    // Loads: value (8 B) + column index (counted as half an element) +
    // x gather, per nnz; plus row_ptr traffic.
    let load_elems = nnz /* values */ + nnz.div_ceil(2) /* col idx */ + nnz /* x */
        + a.rows as u64 / 2;
    let store_elems = a.rows as u64;
    let overhead_factor = match algo {
        // Row kernel: tight vectorized inner loop.
        SpmvAlgorithm::Mkl => 1.1,
        // Merge: per-element path bookkeeping and binary searches.
        SpmvAlgorithm::Merge => 1.45,
    };
    SpmvOpCounts {
        flops,
        load_elems,
        store_elems,
        working_set_bytes: a.spmv_working_set_bytes(),
        x_hit_fraction: x_locality(a, locality_cache_bytes),
        overhead_factor,
    }
}

/// Arithmetic intensity implied by the counts (flops per byte moved).
pub fn arithmetic_intensity(c: &SpmvOpCounts) -> f64 {
    c.flops as f64 / ((c.load_elems + c.store_elems) as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::mesh2d;
    use crate::reorder::Reordering;

    #[test]
    fn counts_scale_with_nnz() {
        let a = mesh2d(20, 20, 3, true);
        let c = op_counts(&a, SpmvAlgorithm::Mkl, 1 << 20);
        assert_eq!(c.flops, 2 * a.nnz() as u64);
        assert!(c.load_elems > a.nnz() as u64 * 2);
        assert_eq!(c.store_elems, a.rows as u64);
        assert!(c.working_set_bytes > 0);
    }

    #[test]
    fn spmv_ai_is_low() {
        // SpMV is strongly memory-bound: AI well under 0.25 flops/byte.
        let a = mesh2d(30, 30, 3, true);
        let c = op_counts(&a, SpmvAlgorithm::Mkl, 1 << 20);
        let ai = arithmetic_intensity(&c);
        assert!(ai > 0.05 && ai < 0.25, "ai {ai}");
    }

    #[test]
    fn merge_pays_more_overhead() {
        let a = mesh2d(20, 20, 3, true);
        let mkl = op_counts(&a, SpmvAlgorithm::Mkl, 1 << 20);
        let merge = op_counts(&a, SpmvAlgorithm::Merge, 1 << 20);
        assert!(merge.overhead_factor > mkl.overhead_factor);
        // Same math either way.
        assert_eq!(mkl.flops, merge.flops);
    }

    #[test]
    fn rcm_improves_x_locality_in_counts() {
        let a = mesh2d(40, 40, 3, true);
        let r = Reordering::Rcm.apply(&a);
        let cache = 32 * 1024; // L1-sized probe: shuffled mesh spans blow it
        let before = op_counts(&a, SpmvAlgorithm::Mkl, cache);
        let after = op_counts(&r, SpmvAlgorithm::Mkl, cache);
        assert!(after.x_hit_fraction > before.x_hit_fraction);
    }

    #[test]
    fn labels() {
        assert_eq!(SpmvAlgorithm::Mkl.label(), "mkl");
        assert_eq!(SpmvAlgorithm::Merge.label(), "merge");
    }
}
