//! Matrix reorderings.
//!
//! The paper's level-view demo (Fig. 2c/d) compares SpMV under `none`,
//! `rcm`, `degree` and `random` orderings; Figs. 7/8 use RCM. This module
//! implements all four. RCM is the real Cuthill–McKee algorithm: BFS from
//! a pseudo-peripheral vertex, neighbours visited in increasing-degree
//! order, final order reversed.

use crate::csr::Csr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Named reordering strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reordering {
    /// Original order.
    None,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Sort by ascending degree.
    Degree,
    /// Random permutation.
    Random(u64),
}

impl Reordering {
    /// Label used in dashboards (`none`, `rcm`, `degree`, `random`).
    pub fn label(&self) -> &'static str {
        match self {
            Reordering::None => "none",
            Reordering::Rcm => "rcm",
            Reordering::Degree => "degree",
            Reordering::Random(_) => "random",
        }
    }

    /// Compute the permutation for a matrix: `perm[new_index] = old_index`.
    pub fn permutation(&self, m: &Csr) -> Vec<u32> {
        match self {
            Reordering::None => (0..m.rows as u32).collect(),
            Reordering::Rcm => rcm_permutation(m),
            Reordering::Degree => degree_permutation(m),
            Reordering::Random(seed) => random_permutation(m.rows, *seed),
        }
    }

    /// Apply to a (structurally symmetric) matrix.
    pub fn apply(&self, m: &Csr) -> Csr {
        apply_symmetric(m, &self.permutation(m))
    }
}

/// Reverse Cuthill–McKee permutation: `perm[new] = old`.
pub fn rcm_permutation(m: &Csr) -> Vec<u32> {
    let n = m.rows;
    let degree: Vec<u32> = (0..n).map(|r| m.row_nnz(r) as u32).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);

    // Process every connected component.
    while order.len() < n {
        let start = pseudo_peripheral(m, &degree, &visited);
        let mut queue = VecDeque::new();
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let (cols, _) = m.row(v as usize);
            let mut neigh: Vec<u32> = cols
                .iter()
                .copied()
                .filter(|&c| !visited[c as usize])
                .collect();
            neigh.sort_unstable_by_key(|&c| degree[c as usize]);
            for c in neigh {
                if !visited[c as usize] {
                    visited[c as usize] = true;
                    queue.push_back(c);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Pick a low-degree unvisited vertex, then walk to the far end of its BFS
/// level structure (two-sweep pseudo-peripheral heuristic).
fn pseudo_peripheral(m: &Csr, degree: &[u32], visited: &[bool]) -> u32 {
    let first = (0..m.rows as u32)
        .filter(|&v| !visited[v as usize])
        .min_by_key(|&v| degree[v as usize])
        .expect("called only when unvisited vertices remain");
    // One BFS sweep: the last vertex of the deepest level, lowest degree.
    let mut seen = visited.to_vec();
    let mut frontier = vec![first];
    seen[first as usize] = true;
    let mut last_level = vec![first];
    while !frontier.is_empty() {
        last_level = frontier.clone();
        let mut next = Vec::new();
        for &v in &frontier {
            let (cols, _) = m.row(v as usize);
            for &c in cols {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    next.push(c);
                }
            }
        }
        frontier = next;
    }
    last_level
        .into_iter()
        .min_by_key(|&v| degree[v as usize])
        .expect("level structure is non-empty")
}

/// Ascending-degree order.
pub fn degree_permutation(m: &Csr) -> Vec<u32> {
    let mut order: Vec<u32> = (0..m.rows as u32).collect();
    order.sort_by_key(|&r| m.row_nnz(r as usize));
    order
}

/// Seeded Fisher–Yates permutation.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    order
}

/// Apply a symmetric permutation `PAPᵀ`: row and column `old` both move to
/// position `new` where `perm[new] = old`.
pub fn apply_symmetric(m: &Csr, perm: &[u32]) -> Csr {
    assert_eq!(perm.len(), m.rows, "permutation length mismatch");
    assert_eq!(
        m.rows, m.cols,
        "symmetric permutation needs a square matrix"
    );
    // inverse: old -> new
    let mut inv = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    let mut coo = crate::coo::Coo::new(m.rows, m.cols);
    for (new_r, &old) in perm.iter().enumerate().take(m.rows) {
        let old_r = old as usize;
        let (cols, vals) = m.row(old_r);
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(new_r as u32, inv[c as usize], v);
        }
    }
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::bandwidth;
    use crate::gen::{mesh2d, uniform_random};

    fn is_permutation(p: &[u32]) -> bool {
        let mut seen = vec![false; p.len()];
        for &v in p {
            if seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        true
    }

    #[test]
    fn all_strategies_produce_valid_permutations() {
        let m = mesh2d(15, 15, 3, true);
        for strat in [
            Reordering::None,
            Reordering::Rcm,
            Reordering::Degree,
            Reordering::Random(5),
        ] {
            let p = strat.permutation(&m);
            assert_eq!(p.len(), m.rows);
            assert!(is_permutation(&p), "{strat:?}");
            let r = strat.apply(&m);
            r.validate().unwrap();
            assert_eq!(r.nnz(), m.nnz());
        }
    }

    #[test]
    fn identity_reordering_is_identity() {
        let m = mesh2d(10, 10, 3, true);
        assert_eq!(Reordering::None.apply(&m), m);
    }

    #[test]
    fn rcm_reduces_mesh_bandwidth_substantially() {
        let m = mesh2d(32, 32, 9, true);
        let r = Reordering::Rcm.apply(&m);
        let before = bandwidth(&m);
        let after = bandwidth(&r);
        assert!(
            after * 4 < before,
            "bandwidth {before} -> {after}, expected >4x reduction"
        );
        // For a 2-D grid, RCM bandwidth should be near the grid width.
        assert!(after < 80, "after {after}");
    }

    #[test]
    fn rcm_barely_helps_random_matrices() {
        let m = uniform_random(400, 8, 3);
        let r = Reordering::Rcm.apply(&m);
        // Expander-like graphs cannot be banded: reduction is small.
        assert!(bandwidth(&r) as f64 > bandwidth(&m) as f64 * 0.5);
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two disjoint 4-cycles.
        let mut coo = crate::coo::Coo::new(8, 8);
        for base in [0u32, 4] {
            for i in 0..4u32 {
                let a = base + i;
                let b = base + (i + 1) % 4;
                coo.push_sym(a.min(b), a.max(b), 1.0);
            }
        }
        let m = Csr::from_coo(&coo);
        let p = rcm_permutation(&m);
        assert!(is_permutation(&p));
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_proxy() {
        // Quick invariant: diagonal sum is preserved under PAPᵀ.
        let m = mesh2d(12, 12, 5, true);
        let r = Reordering::Rcm.apply(&m);
        let diag_sum = |a: &Csr| -> f64 {
            (0..a.rows)
                .map(|i| {
                    let (cols, vals) = a.row(i);
                    cols.iter()
                        .position(|&c| c as usize == i)
                        .map(|p| vals[p])
                        .unwrap_or(0.0)
                })
                .sum()
        };
        assert!((diag_sum(&m) - diag_sum(&r)).abs() < 1e-9);
    }

    #[test]
    fn degree_order_sorts_by_row_length() {
        let m = crate::gen::gene_blocks(200, 30, 4);
        let p = degree_permutation(&m);
        let lens: Vec<usize> = p.iter().map(|&r| m.row_nnz(r as usize)).collect();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn random_permutation_deterministic_per_seed() {
        assert_eq!(random_permutation(50, 1), random_permutation(50, 1));
        assert_ne!(random_permutation(50, 1), random_permutation(50, 2));
    }
}
