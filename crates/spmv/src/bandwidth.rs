//! Matrix bandwidth and profile metrics.
//!
//! Bandwidth is the maximum |row − col| over stored entries; the profile
//! (envelope size) sums per-row spans. Both shrink under a good RCM
//! reordering, and both correlate with SpMV cache locality: a small
//! bandwidth means the touched slice of `x` stays cache-resident.

use crate::csr::Csr;

/// Maximum |row - col| over all non-zeros.
pub fn bandwidth(m: &Csr) -> usize {
    let mut bw = 0usize;
    for r in 0..m.rows {
        let (cols, _) = m.row(r);
        for &c in cols {
            bw = bw.max(r.abs_diff(c as usize));
        }
    }
    bw
}

/// Envelope/profile: Σ_r (r − min_col(r)) over rows with entries left of
/// the diagonal region (standard envelope definition for symmetric
/// matrices).
pub fn profile(m: &Csr) -> u64 {
    let mut total = 0u64;
    for r in 0..m.rows {
        let (cols, _) = m.row(r);
        if let Some(&min_c) = cols.first() {
            total += (r as u64).saturating_sub(min_c as u64);
        }
    }
    total
}

/// Mean per-row span (max_col − min_col): the width of `x` a row touches.
pub fn mean_row_span(m: &Csr) -> f64 {
    if m.rows == 0 {
        return 0.0;
    }
    let mut total = 0u64;
    for r in 0..m.rows {
        let (cols, _) = m.row(r);
        if cols.len() >= 2 {
            total += (cols[cols.len() - 1] - cols[0]) as u64;
        }
    }
    total as f64 / m.rows as f64
}

/// Estimate the cache hit fraction of the `x`-vector accesses during SpMV
/// given a cache of `cache_bytes`: when the working span of `x` (mean row
/// span × 8 bytes, but at least one line per nnz) fits, x-loads hit.
/// Returns a fraction in [0, 1] — higher is better locality. This is the
/// structural knob RCM turns.
pub fn x_locality(m: &Csr, cache_bytes: u64) -> f64 {
    let span_bytes = (mean_row_span(m) * 8.0).max(64.0);
    // Smooth saturation: fully resident when span ≤ cache/8 — the matrix
    // value/index stream competes for most of the cache, so only a small
    // slice is available to hold x — degrading beyond.
    let budget = cache_bytes as f64 / 8.0;
    (budget / span_bytes).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{banded_fem, mesh2d};
    use crate::reorder::{apply_symmetric, rcm_permutation};

    #[test]
    fn banded_matrix_bandwidth_bounded() {
        let m = banded_fem(300, 15, 20, 1, false);
        assert!(bandwidth(&m) <= 15);
        assert!(mean_row_span(&m) <= 31.0);
    }

    #[test]
    fn rcm_shrinks_bandwidth_and_profile() {
        let m = mesh2d(30, 30, 5, true);
        let perm = rcm_permutation(&m);
        let r = apply_symmetric(&m, &perm);
        assert!(bandwidth(&r) < bandwidth(&m) / 3);
        assert!(profile(&r) < profile(&m) / 2);
    }

    #[test]
    fn locality_improves_with_rcm() {
        let m = mesh2d(40, 40, 5, true);
        let perm = rcm_permutation(&m);
        let r = apply_symmetric(&m, &perm);
        let cache = 32 * 1024;
        assert!(x_locality(&r, cache) > x_locality(&m, cache));
    }

    #[test]
    fn locality_bounded_01() {
        let m = mesh2d(10, 10, 5, true);
        for cache in [1024u64, 32 * 1024, 1 << 30] {
            let l = x_locality(&m, cache);
            assert!((0.0..=1.0).contains(&l));
        }
        assert_eq!(x_locality(&m, 1 << 30), 1.0);
    }

    #[test]
    fn empty_matrix_degenerates_gracefully() {
        let empty = Csr {
            rows: 0,
            cols: 0,
            row_ptr: vec![0],
            col_idx: vec![],
            values: vec![],
        };
        assert_eq!(bandwidth(&empty), 0);
        assert_eq!(profile(&empty), 0);
        assert_eq!(mean_row_span(&empty), 0.0);
    }
}
