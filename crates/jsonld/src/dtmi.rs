//! Digital Twin Model Identifiers.
//!
//! DTDL names models with DTMIs of the form `dtmi:<segment>(:<segment>)*;
//! <version>`, e.g. `dtmi:dt:cn1:gpu0;1` from Listing 4 of the paper.
//! Segments must start with a letter, contain only `[A-Za-z0-9_]`, and not
//! end with `_`; the version is a positive integer.

use crate::error::JsonLdError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed, validated DTMI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Dtmi {
    /// Path segments between `dtmi:` and `;version`.
    pub segments: Vec<String>,
    /// Model version (`;1`).
    pub version: u32,
}

impl Dtmi {
    /// Parse and validate a DTMI string.
    pub fn parse(s: &str) -> Result<Self, JsonLdError> {
        let body = s
            .strip_prefix("dtmi:")
            .ok_or_else(|| JsonLdError::BadDtmi(format!("missing dtmi: prefix in {s}")))?;
        let (path, version) = body
            .rsplit_once(';')
            .ok_or_else(|| JsonLdError::BadDtmi(format!("missing ;version in {s}")))?;
        let version: u32 = version
            .parse()
            .map_err(|_| JsonLdError::BadDtmi(format!("bad version in {s}")))?;
        if version == 0 {
            return Err(JsonLdError::BadDtmi(format!("version must be >= 1: {s}")));
        }
        let segments: Vec<String> = path.split(':').map(str::to_string).collect();
        if segments.is_empty() || segments.iter().any(|seg| !valid_segment(seg)) {
            return Err(JsonLdError::BadDtmi(format!("bad path segment in {s}")));
        }
        Ok(Dtmi { segments, version })
    }

    /// Build a DTMI from segments and a version, validating the segments.
    pub fn new<I, S>(segments: I, version: u32) -> Result<Self, JsonLdError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let segments: Vec<String> = segments.into_iter().map(Into::into).collect();
        let d = Dtmi { segments, version };
        // Re-parse the rendering to reuse the validation in one place.
        Dtmi::parse(&d.to_string())
    }

    /// Child DTMI: this path extended by one segment, same version.
    /// Models the paper's hierarchical ids (`dtmi:dt:cn1:gpu0:property0;1`).
    pub fn child(&self, segment: &str) -> Result<Self, JsonLdError> {
        let mut segments = self.segments.clone();
        segments.push(segment.to_string());
        Dtmi::new(segments, self.version)
    }

    /// Parent DTMI (one segment shorter); `None` at the root.
    pub fn parent(&self) -> Option<Self> {
        if self.segments.len() <= 1 {
            return None;
        }
        Some(Dtmi {
            segments: self.segments[..self.segments.len() - 1].to_vec(),
            version: self.version,
        })
    }

    /// Final path segment (the local name).
    pub fn local_name(&self) -> &str {
        self.segments.last().map(String::as_str).unwrap_or("")
    }

    /// Depth in the twin hierarchy (number of segments).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// True when `self` is `other` or a descendant of `other`.
    pub fn is_within(&self, other: &Dtmi) -> bool {
        self.segments.len() >= other.segments.len()
            && self.segments[..other.segments.len()] == other.segments[..]
    }
}

fn valid_segment(seg: &str) -> bool {
    let mut chars = seg.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    if seg.ends_with('_') {
        return false;
    }
    seg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl fmt::Display for Dtmi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dtmi:{};{}", self.segments.join(":"), self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing4_id() {
        let d = Dtmi::parse("dtmi:dt:cn1:gpu0;1").unwrap();
        assert_eq!(d.segments, vec!["dt", "cn1", "gpu0"]);
        assert_eq!(d.version, 1);
        assert_eq!(d.to_string(), "dtmi:dt:cn1:gpu0;1");
        assert_eq!(d.local_name(), "gpu0");
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Dtmi::parse("dt:cn1;1").is_err()); // no prefix
        assert!(Dtmi::parse("dtmi:dt:cn1").is_err()); // no version
        assert!(Dtmi::parse("dtmi:dt:cn1;0").is_err()); // version 0
        assert!(Dtmi::parse("dtmi:dt:cn1;x").is_err()); // non-numeric
        assert!(Dtmi::parse("dtmi:1dt;1").is_err()); // digit-leading segment
        assert!(Dtmi::parse("dtmi:dt_;1").is_err()); // trailing underscore
        assert!(Dtmi::parse("dtmi:dt:cn-1;1").is_err()); // hyphen
    }

    #[test]
    fn child_parent_navigation() {
        let root = Dtmi::parse("dtmi:dt;1").unwrap();
        let node = root.child("cn1").unwrap();
        let gpu = node.child("gpu0").unwrap();
        assert_eq!(gpu.to_string(), "dtmi:dt:cn1:gpu0;1");
        assert_eq!(gpu.parent().unwrap(), node);
        assert_eq!(root.parent(), None);
        assert!(gpu.is_within(&root));
        assert!(gpu.is_within(&gpu));
        assert!(!root.is_within(&gpu));
    }

    #[test]
    fn new_validates() {
        assert!(Dtmi::new(["dt", "ok"], 2).is_ok());
        assert!(Dtmi::new(["bad-seg"], 1).is_err());
        assert!(Dtmi::new(["dt"], 0).is_err());
    }
}
