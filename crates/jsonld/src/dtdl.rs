//! DTDL metamodel classes.
//!
//! The paper builds its ontology on DTDL's six metamodel classes —
//! Interface, Telemetry, Properties, Commands, Relationship and data
//! schemas — treating *every Interface as a stand-alone (sub)twin*.
//! P-MoVE extends Telemetry into two subclasses:
//!
//! * `SWTelemetry` — software/system-state metrics, always sampled at low
//!   frequency (PCP sampler name + DB measurement name);
//! * `HWTelemetry` — PMU events sampled at high frequency during kernel
//!   executions (adds the PMU name and DB field name).

use crate::dtmi::Dtmi;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Primitive DTDL schemas (subset used by the KB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schema {
    /// 64-bit float.
    Double,
    /// 64-bit integer.
    Integer,
    /// UTF-8 string.
    String,
    /// Boolean.
    Boolean,
    /// ISO-8601 duration.
    Duration,
}

impl Schema {
    /// DTDL schema keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            Schema::Double => "double",
            Schema::Integer => "integer",
            Schema::String => "string",
            Schema::Boolean => "boolean",
            Schema::Duration => "duration",
        }
    }

    /// Parse a DTDL schema keyword.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "double" | "float" => Schema::Double,
            "integer" | "long" => Schema::Integer,
            "string" => Schema::String,
            "boolean" => Schema::Boolean,
            "duration" => Schema::Duration,
            _ => return None,
        })
    }
}

/// Whether a telemetry stream is software- or hardware-sourced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TelemetryKind {
    /// System-state metric, always sampled at low frequency.
    Software,
    /// PMU event, sampled at high frequency during kernel executions.
    Hardware,
}

impl TelemetryKind {
    /// The `@type` string used in KB documents.
    pub fn type_name(&self) -> &'static str {
        match self {
            TelemetryKind::Software => "SWTelemetry",
            TelemetryKind::Hardware => "HWTelemetry",
        }
    }
}

/// A DTDL Property: a static characteristic of the component
/// (model name, memory size, NUMA node, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Property {
    /// Identifier of this property entry.
    pub id: Dtmi,
    /// Property name (`model`, `memory`, `numa node`).
    pub name: String,
    /// Value — the paper stores these in `description` (Listing 4).
    pub description: Value,
    /// Declared schema, when known.
    pub schema: Option<Schema>,
}

/// A telemetry stream attached to a component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Identifier of this telemetry entry.
    pub id: Dtmi,
    /// Logical metric name within the KB (`metric4`).
    pub name: String,
    /// SW or HW sourced.
    pub kind: TelemetryKind,
    /// Name understood by the sampler (`nvidia.memused`,
    /// `perfevent.hwcounters.FP_ARITH...`).
    pub sampler_name: String,
    /// Measurement name in the time-series DB.
    pub db_name: String,
    /// Field name within the measurement (`_cpu0`, `_gpu0`); optional for
    /// SW telemetry whose instance domain names the fields.
    pub field_name: Option<String>,
    /// PMU that provides the event (HW only; `ncu`, `skl`, `zen3`).
    pub pmu_name: Option<String>,
    /// Human-readable description.
    pub description: Option<String>,
}

/// A DTDL Relationship edge between twins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relationship {
    /// Identifier of this relationship entry.
    pub id: Dtmi,
    /// Relationship name (`contains`, `connectedTo`, `runsOn`).
    pub name: String,
    /// Target twin.
    pub target: Dtmi,
}

/// A DTDL Command (unused by the evaluation but part of the metamodel;
/// P-MoVE uses it for benchmark/kernel launch hooks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Identifier of this command entry.
    pub id: Dtmi,
    /// Command name (`run_benchmark`).
    pub name: String,
    /// Free-form request schema description.
    pub request: Option<Value>,
}

/// One entry in an Interface's `contents` array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Content {
    /// Static property.
    Property(Property),
    /// Telemetry stream.
    Telemetry(Telemetry),
    /// Edge to another twin.
    Relationship(Relationship),
    /// Invokable command.
    Command(Command),
}

impl Content {
    /// The entry's own DTMI.
    pub fn id(&self) -> &Dtmi {
        match self {
            Content::Property(p) => &p.id,
            Content::Telemetry(t) => &t.id,
            Content::Relationship(r) => &r.id,
            Content::Command(c) => &c.id,
        }
    }

    /// The entry's `name`.
    pub fn name(&self) -> &str {
        match self {
            Content::Property(p) => &p.name,
            Content::Telemetry(t) => &t.name,
            Content::Relationship(r) => &r.name,
            Content::Command(c) => &c.name,
        }
    }
}

/// A DTDL Interface: one component of the HPC system, modelled as a
/// stand-alone digital (sub)twin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interface {
    /// The twin's DTMI (`dtmi:dt:cn1:gpu0;1`).
    pub id: Dtmi,
    /// Component kind tag (`node`, `socket`, `core`, `thread`, `cache`,
    /// `memory`, `disk`, `nic`, `gpu`, `process`, ...). P-MoVE's level view
    /// groups twins by this.
    pub component_type: String,
    /// Display name.
    pub display_name: String,
    /// Contents: properties, telemetry, relationships, commands.
    pub contents: Vec<Content>,
}

impl Interface {
    /// New empty interface.
    pub fn new(
        id: Dtmi,
        component_type: impl Into<String>,
        display_name: impl Into<String>,
    ) -> Self {
        Interface {
            id,
            component_type: component_type.into(),
            display_name: display_name.into(),
            contents: Vec::new(),
        }
    }

    /// Append a property built from `name`/`value`, auto-assigning an id
    /// `<self>:propertyN;v`.
    pub fn add_property(&mut self, name: impl Into<String>, value: Value) {
        let n = self.count_of("property");
        let id = self
            .id
            .child(&format!("property{n}"))
            .expect("generated segment is valid");
        self.contents.push(Content::Property(Property {
            id,
            name: name.into(),
            description: value,
            schema: None,
        }));
    }

    /// Append a telemetry entry, auto-assigning `<self>:telemetryN;v`.
    pub fn add_telemetry(&mut self, mut t: TelemetryBuilder) -> &Telemetry {
        let n = self.count_of("telemetry");
        t.id = Some(
            self.id
                .child(&format!("telemetry{n}"))
                .expect("generated segment is valid"),
        );
        self.contents.push(Content::Telemetry(t.build()));
        match self.contents.last() {
            Some(Content::Telemetry(t)) => t,
            _ => unreachable!("just pushed"),
        }
    }

    /// Append a relationship, auto-assigning `<self>:relationshipN;v`.
    pub fn add_relationship(&mut self, name: impl Into<String>, target: Dtmi) {
        let n = self.count_of("relationship");
        let id = self
            .id
            .child(&format!("relationship{n}"))
            .expect("generated segment is valid");
        self.contents.push(Content::Relationship(Relationship {
            id,
            name: name.into(),
            target,
        }));
    }

    fn count_of(&self, kind: &str) -> usize {
        self.contents
            .iter()
            .filter(|c| c.id().local_name().starts_with(kind))
            .count()
    }

    /// All properties.
    pub fn properties(&self) -> impl Iterator<Item = &Property> {
        self.contents.iter().filter_map(|c| match c {
            Content::Property(p) => Some(p),
            _ => None,
        })
    }

    /// All telemetry entries.
    pub fn telemetry(&self) -> impl Iterator<Item = &Telemetry> {
        self.contents.iter().filter_map(|c| match c {
            Content::Telemetry(t) => Some(t),
            _ => None,
        })
    }

    /// All relationships.
    pub fn relationships(&self) -> impl Iterator<Item = &Relationship> {
        self.contents.iter().filter_map(|c| match c {
            Content::Relationship(r) => Some(r),
            _ => None,
        })
    }

    /// Look up a property value by name.
    pub fn property_value(&self, name: &str) -> Option<&Value> {
        self.properties()
            .find(|p| p.name == name)
            .map(|p| &p.description)
    }
}

/// Builder for [`Telemetry`] entries (ids are assigned by the owning
/// interface).
#[derive(Debug, Clone)]
pub struct TelemetryBuilder {
    id: Option<Dtmi>,
    name: String,
    kind: TelemetryKind,
    sampler_name: String,
    db_name: String,
    field_name: Option<String>,
    pmu_name: Option<String>,
    description: Option<String>,
}

impl TelemetryBuilder {
    /// Software telemetry with the given logical name and sampler metric.
    pub fn software(name: impl Into<String>, sampler: impl Into<String>) -> Self {
        let sampler = sampler.into();
        let db_name = sampler.replace('.', "_");
        TelemetryBuilder {
            id: None,
            name: name.into(),
            kind: TelemetryKind::Software,
            sampler_name: sampler,
            db_name,
            field_name: None,
            pmu_name: None,
            description: None,
        }
    }

    /// Hardware telemetry for a PMU event.
    pub fn hardware(
        name: impl Into<String>,
        pmu: impl Into<String>,
        event: impl Into<String>,
    ) -> Self {
        let event = event.into();
        let db_name = format!("perfevent_hwcounters_{}", event.replace([':', '.'], "_"));
        TelemetryBuilder {
            id: None,
            name: name.into(),
            kind: TelemetryKind::Hardware,
            sampler_name: event,
            db_name,
            field_name: None,
            pmu_name: Some(pmu.into()),
            description: None,
        }
    }

    /// Override the DB measurement name.
    pub fn db_name(mut self, db: impl Into<String>) -> Self {
        self.db_name = db.into();
        self
    }

    /// Set the DB field name (`_cpu0`).
    pub fn field(mut self, f: impl Into<String>) -> Self {
        self.field_name = Some(f.into());
        self
    }

    /// Set the human description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.description = Some(d.into());
        self
    }

    fn build(self) -> Telemetry {
        Telemetry {
            id: self.id.expect("assigned by Interface::add_telemetry"),
            name: self.name,
            kind: self.kind,
            sampler_name: self.sampler_name,
            db_name: self.db_name,
            field_name: self.field_name,
            pmu_name: self.pmu_name,
            description: self.description,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn gpu() -> Interface {
        let id = Dtmi::parse("dtmi:dt:cn1:gpu0;1").unwrap();
        let mut i = Interface::new(id, "gpu", "gpu0");
        i.add_property("model", json!("NVIDIA Quadro GV100"));
        i.add_property("memory", json!("34359 Mb"));
        i.add_telemetry(TelemetryBuilder::software("metric4", "nvidia.memused"));
        i.add_telemetry(
            TelemetryBuilder::hardware("metric137", "ncu", "gpu__compute_memory_access_throughput")
                .field("_gpu0")
                .description("Compute Memory Pipeline"),
        );
        i.add_relationship("partOf", Dtmi::parse("dtmi:dt:cn1;1").unwrap());
        i
    }

    #[test]
    fn content_ids_follow_listing4_scheme() {
        let g = gpu();
        let ids: Vec<String> = g.contents.iter().map(|c| c.id().to_string()).collect();
        assert_eq!(ids[0], "dtmi:dt:cn1:gpu0:property0;1");
        assert_eq!(ids[1], "dtmi:dt:cn1:gpu0:property1;1");
        assert_eq!(ids[2], "dtmi:dt:cn1:gpu0:telemetry0;1");
        assert_eq!(ids[3], "dtmi:dt:cn1:gpu0:telemetry1;1");
        assert_eq!(ids[4], "dtmi:dt:cn1:gpu0:relationship0;1");
    }

    #[test]
    fn telemetry_builders_fill_db_names() {
        let g = gpu();
        let tel: Vec<&Telemetry> = g.telemetry().collect();
        assert_eq!(tel[0].kind, TelemetryKind::Software);
        assert_eq!(tel[0].db_name, "nvidia_memused");
        assert_eq!(tel[1].kind, TelemetryKind::Hardware);
        assert_eq!(tel[1].pmu_name.as_deref(), Some("ncu"));
        assert!(tel[1].db_name.starts_with("perfevent_hwcounters_"));
        assert_eq!(tel[1].field_name.as_deref(), Some("_gpu0"));
    }

    #[test]
    fn property_lookup() {
        let g = gpu();
        assert_eq!(
            g.property_value("model"),
            Some(&json!("NVIDIA Quadro GV100"))
        );
        assert!(g.property_value("nope").is_none());
        assert_eq!(g.properties().count(), 2);
        assert_eq!(g.relationships().count(), 1);
    }

    #[test]
    fn schema_keywords() {
        assert_eq!(Schema::parse("double"), Some(Schema::Double));
        assert_eq!(Schema::parse("long"), Some(Schema::Integer));
        assert_eq!(Schema::parse("nope"), None);
        assert_eq!(Schema::Boolean.keyword(), "boolean");
    }

    #[test]
    fn telemetry_kind_names() {
        assert_eq!(TelemetryKind::Software.type_name(), "SWTelemetry");
        assert_eq!(TelemetryKind::Hardware.type_name(), "HWTelemetry");
    }

    #[test]
    fn content_name_accessor() {
        let g = gpu();
        assert_eq!(g.contents[0].name(), "model");
        assert_eq!(g.contents[4].name(), "partOf");
    }
}
