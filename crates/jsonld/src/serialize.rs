//! Interface ⇄ JSON-LD conversion (the exact document shape of Listing 4)
//! and Interface → RDF triple projection for the graph views.

use crate::context::DTDL_CONTEXT;
use crate::dtdl::{
    Command, Content, Interface, Property, Relationship, Schema, Telemetry, TelemetryKind,
};
use crate::dtmi::Dtmi;
use crate::error::JsonLdError;
use crate::graph::Graph;
use crate::triple::Node;
use serde_json::{json, Map, Value};

/// Serialize an interface into the Listing-4 JSON-LD document shape.
pub fn interface_to_json(i: &Interface) -> Value {
    let mut contents = Vec::with_capacity(i.contents.len());
    for c in &i.contents {
        contents.push(match c {
            Content::Property(p) => {
                let mut m = Map::new();
                m.insert("@id".into(), json!(p.id.to_string()));
                m.insert("@type".into(), json!("Property"));
                m.insert("name".into(), json!(p.name));
                m.insert("description".into(), p.description.clone());
                if let Some(s) = p.schema {
                    m.insert("schema".into(), json!(s.keyword()));
                }
                Value::Object(m)
            }
            Content::Telemetry(t) => {
                let mut m = Map::new();
                m.insert("@id".into(), json!(t.id.to_string()));
                m.insert("@type".into(), json!(t.kind.type_name()));
                m.insert("name".into(), json!(t.name));
                m.insert("SamplerName".into(), json!(t.sampler_name));
                m.insert("DBName".into(), json!(t.db_name));
                if let Some(f) = &t.field_name {
                    m.insert("FieldName".into(), json!(f));
                }
                if let Some(p) = &t.pmu_name {
                    m.insert("PMUName".into(), json!(p));
                }
                if let Some(d) = &t.description {
                    m.insert("description".into(), json!(d));
                }
                Value::Object(m)
            }
            Content::Relationship(r) => json!({
                "@id": r.id.to_string(),
                "@type": "Relationship",
                "name": r.name,
                "target": r.target.to_string(),
            }),
            Content::Command(cmd) => {
                let mut m = Map::new();
                m.insert("@id".into(), json!(cmd.id.to_string()));
                m.insert("@type".into(), json!("Command"));
                m.insert("name".into(), json!(cmd.name));
                if let Some(req) = &cmd.request {
                    m.insert("request".into(), req.clone());
                }
                Value::Object(m)
            }
        });
    }
    json!({
        "@type": "Interface",
        "@id": i.id.to_string(),
        "@context": DTDL_CONTEXT,
        "componentType": i.component_type,
        "displayName": i.display_name,
        "contents": contents,
    })
}

/// Parse a Listing-4 style JSON-LD document back into an [`Interface`].
pub fn interface_from_json(doc: &Value) -> Result<Interface, JsonLdError> {
    let obj = doc
        .as_object()
        .ok_or_else(|| JsonLdError::BadDocument("interface must be an object".into()))?;
    let id = Dtmi::parse(
        obj.get("@id")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonLdError::BadDocument("missing @id".into()))?,
    )?;
    let ty = obj.get("@type").and_then(Value::as_str).unwrap_or("");
    if ty != "Interface" {
        return Err(JsonLdError::BadDocument(format!(
            "@type must be Interface, got {ty}"
        )));
    }
    let mut iface = Interface::new(
        id,
        obj.get("componentType")
            .and_then(Value::as_str)
            .unwrap_or("component"),
        obj.get("displayName").and_then(Value::as_str).unwrap_or(""),
    );
    if let Some(contents) = obj.get("contents").and_then(Value::as_array) {
        for c in contents {
            iface.contents.push(content_from_json(c)?);
        }
    }
    Ok(iface)
}

fn content_from_json(c: &Value) -> Result<Content, JsonLdError> {
    let obj = c
        .as_object()
        .ok_or_else(|| JsonLdError::BadDocument("content must be an object".into()))?;
    let id = Dtmi::parse(
        obj.get("@id")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonLdError::BadDocument("content missing @id".into()))?,
    )?;
    let name = obj
        .get("name")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    let ty = obj
        .get("@type")
        .and_then(Value::as_str)
        .ok_or_else(|| JsonLdError::BadDocument("content missing @type".into()))?;
    Ok(match ty {
        "Property" => Content::Property(Property {
            id,
            name,
            description: obj.get("description").cloned().unwrap_or(Value::Null),
            schema: obj
                .get("schema")
                .and_then(Value::as_str)
                .and_then(Schema::parse),
        }),
        "SWTelemetry" | "HWTelemetry" | "Telemetry" => {
            let kind = if ty == "HWTelemetry" {
                TelemetryKind::Hardware
            } else {
                TelemetryKind::Software
            };
            Content::Telemetry(Telemetry {
                id,
                name,
                kind,
                sampler_name: obj
                    .get("SamplerName")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                db_name: obj
                    .get("DBName")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                field_name: obj
                    .get("FieldName")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                pmu_name: obj
                    .get("PMUName")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                description: obj
                    .get("description")
                    .and_then(Value::as_str)
                    .map(str::to_string),
            })
        }
        "Relationship" => {
            Content::Relationship(Relationship {
                id,
                name,
                target: Dtmi::parse(obj.get("target").and_then(Value::as_str).ok_or_else(
                    || JsonLdError::BadDocument("relationship missing target".into()),
                )?)?,
            })
        }
        "Command" => Content::Command(Command {
            id,
            name,
            request: obj.get("request").cloned(),
        }),
        other => {
            return Err(JsonLdError::BadDocument(format!(
                "unknown content type {other}"
            )))
        }
    })
}

/// Project an interface into RDF triples (for graph-pattern queries).
pub fn interface_to_triples(i: &Interface, graph: &mut Graph) {
    let s = i.id.to_string();
    graph.add(&s, "rdf:type", Node::lit("Interface"));
    graph.add(&s, "pmove:componentType", Node::lit(&i.component_type));
    graph.add(&s, "pmove:displayName", Node::lit(&i.display_name));
    for c in &i.contents {
        match c {
            Content::Property(p) => {
                let val = match &p.description {
                    Value::String(s) => Node::lit(s.clone()),
                    Value::Number(n) => Node::double(n.as_f64().unwrap_or(0.0)),
                    other => Node::lit(other.to_string()),
                };
                graph.add(&s, format!("prop:{}", p.name), val);
            }
            Content::Telemetry(t) => {
                graph.add(&s, "pmove:hasTelemetry", Node::iri(t.id.to_string()));
                graph.add(t.id.to_string(), "rdf:type", Node::lit(t.kind.type_name()));
                graph.add(t.id.to_string(), "pmove:dbName", Node::lit(&t.db_name));
            }
            Content::Relationship(r) => {
                graph.add(
                    &s,
                    format!("rel:{}", r.name),
                    Node::iri(r.target.to_string()),
                );
            }
            Content::Command(cmd) => {
                graph.add(&s, "pmove:hasCommand", Node::lit(&cmd.name));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtdl::TelemetryBuilder;
    use crate::graph::Pattern;

    fn gpu() -> Interface {
        let id = Dtmi::parse("dtmi:dt:cn1:gpu0;1").unwrap();
        let mut i = Interface::new(id, "gpu", "gpu0");
        i.add_property("model", json!("NVIDIA Quadro GV100"));
        i.add_property("numa node", json!(0));
        i.add_telemetry(TelemetryBuilder::software("metric4", "nvidia.memused"));
        i.add_telemetry(
            TelemetryBuilder::hardware("metric137", "ncu", "gpu__compute_memory_access_throughput")
                .field("_gpu0"),
        );
        i.add_relationship("partOf", Dtmi::parse("dtmi:dt:cn1;1").unwrap());
        i
    }

    #[test]
    fn json_shape_matches_listing4() {
        let doc = interface_to_json(&gpu());
        assert_eq!(doc["@type"], json!("Interface"));
        assert_eq!(doc["@id"], json!("dtmi:dt:cn1:gpu0;1"));
        assert_eq!(doc["@context"], json!("dtmi:dtdl:context;2"));
        let contents = doc["contents"].as_array().unwrap();
        assert_eq!(contents[0]["@type"], json!("Property"));
        assert_eq!(contents[2]["@type"], json!("SWTelemetry"));
        assert_eq!(contents[2]["SamplerName"], json!("nvidia.memused"));
        assert_eq!(contents[2]["DBName"], json!("nvidia_memused"));
        assert_eq!(contents[3]["@type"], json!("HWTelemetry"));
        assert_eq!(contents[3]["PMUName"], json!("ncu"));
        assert_eq!(contents[3]["FieldName"], json!("_gpu0"));
    }

    #[test]
    fn json_roundtrip() {
        let original = gpu();
        let doc = interface_to_json(&original);
        let back = interface_from_json(&doc).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(interface_from_json(&json!(1)).is_err());
        assert!(interface_from_json(&json!({"@type": "Interface"})).is_err());
        assert!(interface_from_json(&json!({"@id": "dtmi:x;1", "@type": "Nope"})).is_err());
        let bad_content = json!({
            "@id": "dtmi:x;1", "@type": "Interface",
            "contents": [{"@id": "dtmi:x:c;1", "@type": "Mystery"}]
        });
        assert!(interface_from_json(&bad_content).is_err());
    }

    #[test]
    fn triple_projection() {
        let mut g = Graph::new();
        interface_to_triples(&gpu(), &mut g);
        // rdf:type triples exist for the interface and both telemetry nodes.
        let types = g.query(&Pattern::any().p("rdf:type"));
        assert_eq!(types.len(), 3);
        // Relationship projected as rel:partOf edge.
        let part = g.query(&Pattern::any().p("rel:partOf"));
        assert_eq!(part.len(), 1);
        assert_eq!(part[0].object, Node::iri("dtmi:dt:cn1;1"));
        // Property values queryable.
        assert_eq!(
            g.objects("dtmi:dt:cn1:gpu0;1", "prop:model"),
            vec![&Node::lit("NVIDIA Quadro GV100")]
        );
    }
}
