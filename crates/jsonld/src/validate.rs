//! Structural validation of DTDL documents and interface hierarchies.

use crate::dtdl::{Content, Interface};
use crate::error::JsonLdError;
use std::collections::{BTreeMap, BTreeSet};

/// Validate one interface:
/// * content ids must live under the interface's DTMI;
/// * content names must be non-empty and unique within the interface;
/// * telemetry entries must name a sampler and a DB measurement;
/// * versions must agree between the interface and its contents.
pub fn validate_interface(i: &Interface) -> Result<(), JsonLdError> {
    let mut seen = BTreeSet::new();
    for c in &i.contents {
        let id = c.id();
        if !id.is_within(&i.id) {
            return Err(JsonLdError::Validation(format!(
                "content {id} is not under interface {}",
                i.id
            )));
        }
        if id.version != i.id.version {
            return Err(JsonLdError::Validation(format!(
                "content {id} version differs from interface {}",
                i.id
            )));
        }
        if c.name().is_empty() {
            return Err(JsonLdError::Validation(format!(
                "content {id} has empty name"
            )));
        }
        // Relationships may repeat a name across different targets (one
        // `contains` edge per child); other content names must be unique
        // within their kind.
        let uniqueness_key = match c {
            Content::Relationship(r) => ("relationship", format!("{}->{}", r.name, r.target)),
            other => (discriminant_name(other), other.name().to_string()),
        };
        if !seen.insert(uniqueness_key) {
            return Err(JsonLdError::Validation(format!(
                "duplicate content name {} in {}",
                c.name(),
                i.id
            )));
        }
        if let Content::Telemetry(t) = c {
            if t.sampler_name.is_empty() {
                return Err(JsonLdError::Validation(format!(
                    "telemetry {id} has no sampler name"
                )));
            }
            if t.db_name.is_empty() {
                return Err(JsonLdError::Validation(format!(
                    "telemetry {id} has no DB name"
                )));
            }
        }
    }
    Ok(())
}

fn discriminant_name(c: &Content) -> &'static str {
    match c {
        Content::Property(_) => "property",
        Content::Telemetry(_) => "telemetry",
        Content::Relationship(_) => "relationship",
        Content::Command(_) => "command",
    }
}

/// Validate a set of interfaces as a twin hierarchy:
/// * every interface id must be unique;
/// * every relationship target must resolve to a known interface;
/// * the `partOf`/`contains` containment edges must be acyclic.
pub fn validate_model(interfaces: &[Interface]) -> Result<(), JsonLdError> {
    let mut by_id = BTreeMap::new();
    for i in interfaces {
        validate_interface(i)?;
        if by_id.insert(i.id.clone(), i).is_some() {
            return Err(JsonLdError::Validation(format!(
                "duplicate interface id {}",
                i.id
            )));
        }
    }
    // Targets resolve.
    for i in interfaces {
        for r in i.relationships() {
            if !by_id.contains_key(&r.target) {
                return Err(JsonLdError::Validation(format!(
                    "relationship {} targets unknown interface {}",
                    r.id, r.target
                )));
            }
        }
    }
    // Containment acyclicity (DFS over contains/partOf edges).
    let mut state: BTreeMap<&crate::dtmi::Dtmi, u8> = BTreeMap::new(); // 0 new, 1 visiting, 2 done
    fn dfs<'a>(
        id: &'a crate::dtmi::Dtmi,
        by_id: &BTreeMap<crate::dtmi::Dtmi, &'a Interface>,
        state: &mut BTreeMap<&'a crate::dtmi::Dtmi, u8>,
    ) -> Result<(), JsonLdError> {
        match state.get(id) {
            Some(1) => {
                return Err(JsonLdError::Validation(format!(
                    "containment cycle through {id}"
                )))
            }
            Some(2) => return Ok(()),
            _ => {}
        }
        let Some(iface) = by_id.get(id) else {
            return Ok(());
        };
        state.insert(&iface.id, 1);
        for r in iface.relationships() {
            if r.name == "contains" || r.name == "partOf" {
                if let Some(target) = by_id.get(&r.target) {
                    dfs(&target.id, by_id, state)?;
                }
            }
        }
        state.insert(&iface.id, 2);
        Ok(())
    }
    for i in interfaces {
        dfs(&i.id, &by_id, &mut state)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtdl::{Interface, TelemetryBuilder};
    use crate::dtmi::Dtmi;
    use serde_json::json;

    fn iface(id: &str) -> Interface {
        Interface::new(Dtmi::parse(id).unwrap(), "node", "n")
    }

    #[test]
    fn valid_interface_passes() {
        let mut i = iface("dtmi:dt:cn1;1");
        i.add_property("model", json!("x"));
        i.add_telemetry(TelemetryBuilder::software("m", "kernel.all.load"));
        assert!(validate_interface(&i).is_ok());
    }

    #[test]
    fn foreign_content_id_fails() {
        let mut i = iface("dtmi:dt:cn1;1");
        i.add_property("p", json!(1));
        // Forge a content whose id is outside the interface.
        if let Content::Property(p) = &mut i.contents[0] {
            p.id = Dtmi::parse("dtmi:other:property0;1").unwrap();
        }
        assert!(validate_interface(&i).is_err());
    }

    #[test]
    fn duplicate_names_fail_but_cross_kind_ok() {
        let mut i = iface("dtmi:dt:cn1;1");
        i.add_property("x", json!(1));
        i.add_property("x", json!(2));
        assert!(validate_interface(&i).is_err());

        let mut j = iface("dtmi:dt:cn2;1");
        j.add_property("x", json!(1));
        j.add_telemetry(TelemetryBuilder::software("x", "s.m"));
        assert!(validate_interface(&j).is_ok());
    }

    #[test]
    fn empty_sampler_fails() {
        let mut i = iface("dtmi:dt:cn1;1");
        i.add_telemetry(TelemetryBuilder::software("m", ""));
        assert!(validate_interface(&i).is_err());
    }

    #[test]
    fn model_target_resolution() {
        let mut a = iface("dtmi:dt:a;1");
        let b = iface("dtmi:dt:b;1");
        a.add_relationship("contains", b.id.clone());
        assert!(validate_model(&[a.clone(), b.clone()]).is_ok());
        assert!(validate_model(&[a]).is_err()); // dangling target
    }

    #[test]
    fn model_duplicate_ids_fail() {
        let a = iface("dtmi:dt:a;1");
        let b = iface("dtmi:dt:a;1");
        assert!(validate_model(&[a, b]).is_err());
    }

    #[test]
    fn containment_cycle_detected() {
        let mut a = iface("dtmi:dt:a;1");
        let mut b = iface("dtmi:dt:b;1");
        a.add_relationship("contains", b.id.clone());
        b.add_relationship("contains", a.id.clone());
        assert!(validate_model(&[a, b]).is_err());
    }

    #[test]
    fn non_containment_cycles_allowed() {
        // connectedTo edges may form cycles (e.g. NUMA links).
        let mut a = iface("dtmi:dt:a;1");
        let mut b = iface("dtmi:dt:b;1");
        a.add_relationship("connectedTo", b.id.clone());
        b.add_relationship("connectedTo", a.id.clone());
        assert!(validate_model(&[a, b]).is_ok());
    }
}
