//! JSON-LD expansion (subset): rewrite a compacted document into a form
//! where every key and every `@type` value is a full IRI, using the
//! document's `@context` merged over a base context.

use crate::context::Context;
use crate::error::JsonLdError;
use serde_json::{Map, Value};

/// Expand a JSON-LD document against `base` (typically [`Context::pmove`]).
///
/// * merges the document's own `@context` (which is removed from the output);
/// * expands every object key through the context;
/// * expands string values of `@type`;
/// * recurses into arrays and nested objects.
pub fn expand(doc: &Value, base: &Context) -> Result<Value, JsonLdError> {
    let obj = doc
        .as_object()
        .ok_or_else(|| JsonLdError::BadDocument("top-level must be an object".into()))?;
    let mut ctx = base.clone();
    if let Some(local) = obj.get("@context") {
        ctx.merge_json(local);
    }
    Ok(expand_value(&Value::Object(obj.clone()), &ctx, true))
}

fn expand_value(v: &Value, ctx: &Context, top: bool) -> Value {
    match v {
        Value::Object(map) => {
            let mut out = Map::new();
            for (k, val) in map {
                if top && k == "@context" {
                    continue; // consumed
                }
                let key = ctx.expand_term(k);
                let expanded = if key == "@type" {
                    expand_type(val, ctx)
                } else {
                    expand_value(val, ctx, false)
                };
                out.insert(key, expanded);
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(
            items
                .iter()
                .map(|item| expand_value(item, ctx, false))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn expand_type(v: &Value, ctx: &Context) -> Value {
    match v {
        Value::String(s) => Value::String(ctx.expand_term(s)),
        Value::Array(items) => Value::Array(items.iter().map(|i| expand_type(i, ctx)).collect()),
        other => other.clone(),
    }
}

/// Compact an expanded document's keys and `@type` values back to terms.
pub fn compact(doc: &Value, ctx: &Context) -> Value {
    match doc {
        Value::Object(map) => {
            let mut out = Map::new();
            for (k, v) in map {
                let key = ctx.compact_iri(k);
                let val = if k == "@type" {
                    compact_type(v, ctx)
                } else {
                    compact(v, ctx)
                };
                out.insert(key, val);
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(|i| compact(i, ctx)).collect()),
        other => other.clone(),
    }
}

fn compact_type(v: &Value, ctx: &Context) -> Value {
    match v {
        Value::String(s) => Value::String(ctx.compact_iri(s)),
        Value::Array(items) => Value::Array(items.iter().map(|i| compact_type(i, ctx)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn expands_dtdl_document() {
        let doc = json!({
            "@context": "dtmi:dtdl:context;2",
            "@id": "dtmi:dt:cn1:gpu0;1",
            "@type": "Interface",
            "contents": [
                {"@type": "Property", "name": "model"}
            ]
        });
        let e = expand(&doc, &Context::pmove()).unwrap();
        assert_eq!(e["@type"], json!("dtmi:dtdl:class:Interface;2"));
        assert!(e.get("@context").is_none());
        let contents = &e["dtmi:dtdl:property:contents;2"];
        assert_eq!(contents[0]["@type"], json!("dtmi:dtdl:class:Property;2"));
        assert_eq!(contents[0]["dtmi:dtdl:property:name;2"], json!("model"));
    }

    #[test]
    fn type_arrays_expand() {
        let doc = json!({"@type": ["Telemetry", "SWTelemetry"]});
        let e = expand(&doc, &Context::pmove()).unwrap();
        assert_eq!(
            e["@type"],
            json!([
                "dtmi:dtdl:class:Telemetry;2",
                "dtmi:pmove:class:SWTelemetry;1"
            ])
        );
    }

    #[test]
    fn local_context_wins() {
        let doc = json!({
            "@context": {"name": "custom:name"},
            "name": "x"
        });
        let e = expand(&doc, &Context::pmove()).unwrap();
        assert_eq!(e["custom:name"], json!("x"));
    }

    #[test]
    fn non_object_rejected() {
        assert!(expand(&json!([1]), &Context::pmove()).is_err());
    }

    #[test]
    fn expand_compact_roundtrip() {
        let ctx = Context::pmove();
        let doc = json!({
            "@id": "dtmi:dt:x;1",
            "@type": "Interface",
            "name": "thing",
            "contents": [{"@type": "SWTelemetry", "name": "m"}]
        });
        let e = expand(&doc, &ctx).unwrap();
        let c = compact(&e, &ctx);
        assert_eq!(c, doc);
    }
}
