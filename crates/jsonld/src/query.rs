//! Basic-graph-pattern queries over the triple store — the "advanced
//! analysis" path the paper's linked-data encoding enables: multi-pattern
//! joins with variables, SPARQL-style.
//!
//! ```text
//! ?iface  rdf:type            "Interface"
//! ?iface  pmove:hasTelemetry  ?tel
//! ?tel    pmove:dbName        ?db
//! ```
//!
//! Variables start with `?`; constants match exactly. The solver joins
//! patterns left to right with backtracking over candidate triples.

use crate::graph::{Graph, Pattern};
use crate::triple::Node;
use std::collections::BTreeMap;

/// One term of a BGP pattern: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Named variable (`?iface`).
    Var(String),
    /// Constant IRI/string (matches subjects/predicates by string, objects
    /// by node-aware matching: plain strings match IRIs and literals).
    Const(String),
    /// Constant object node (typed literal etc.).
    ConstNode(Node),
}

impl Term {
    /// Parse `?name` as a variable, anything else as a string constant.
    pub fn parse(s: &str) -> Term {
        if let Some(name) = s.strip_prefix('?') {
            Term::Var(name.to_string())
        } else {
            Term::Const(s.to_string())
        }
    }
}

/// One triple pattern with variables.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject term.
    pub s: Term,
    /// Predicate term.
    pub p: Term,
    /// Object term.
    pub o: Term,
}

impl TriplePattern {
    /// Build from three textual terms (`?x`, constants).
    pub fn new(s: &str, p: &str, o: &str) -> TriplePattern {
        TriplePattern {
            s: Term::parse(s),
            p: Term::parse(p),
            o: Term::parse(o),
        }
    }

    /// Object constant matching both literal and IRI forms: when the
    /// pattern object is a plain string it matches either node kind.
    fn object_matches(&self, node: &Node, binding: Option<&Node>) -> bool {
        if let Some(bound) = binding {
            return bound == node;
        }
        match &self.o {
            Term::Var(_) => true,
            Term::ConstNode(n) => n == node,
            Term::Const(s) => match node {
                Node::Iri(v) | Node::Literal(v) => v == s,
                Node::TypedLiteral(v, _) => v == s,
            },
        }
    }
}

/// A variable binding set (one query solution).
pub type Solution = BTreeMap<String, Node>;

/// Solve a basic graph pattern; returns every solution.
pub fn solve(graph: &Graph, patterns: &[TriplePattern]) -> Vec<Solution> {
    let mut solutions = Vec::new();
    let mut binding: Solution = BTreeMap::new();
    solve_rec(graph, patterns, 0, &mut binding, &mut solutions);
    solutions
}

fn resolve_str(term: &Term, binding: &Solution) -> Option<String> {
    match term {
        Term::Const(s) => Some(s.clone()),
        Term::ConstNode(n) => Some(n.lexical().to_string()),
        Term::Var(v) => binding.get(v).map(|n| n.lexical().to_string()),
    }
}

fn solve_rec(
    graph: &Graph,
    patterns: &[TriplePattern],
    idx: usize,
    binding: &mut Solution,
    out: &mut Vec<Solution>,
) {
    if idx == patterns.len() {
        out.push(binding.clone());
        return;
    }
    let pat = &patterns[idx];
    // Ground what we can from the current binding.
    let s = resolve_str(&pat.s, binding);
    let p = resolve_str(&pat.p, binding);
    // Only variable bindings force exact node equality; constant terms go
    // through `object_matches`, which lets plain strings match both IRI
    // and literal nodes.
    let o_bound = match &pat.o {
        Term::Var(v) => binding.get(v).cloned(),
        _ => None,
    };

    let mut probe = Pattern::any();
    if let Some(s) = &s {
        probe = probe.s(s.clone());
    }
    if let Some(p) = &p {
        probe = probe.p(p.clone());
    }
    // Objects bind exactly when a node form is known (variable bound or
    // ConstNode); plain-string constants are checked per candidate so
    // they can match either IRIs or literals.
    if let (Term::Var(_), Some(node)) = (&pat.o, &o_bound) {
        probe = probe.o(node.clone());
    }
    if let Term::ConstNode(node) = &pat.o {
        probe = probe.o(node.clone());
    }

    for triple in graph.query(&probe) {
        if !pat.object_matches(&triple.object, o_bound.as_ref()) {
            continue;
        }
        // Extend bindings for any variables.
        let mut added: Vec<String> = Vec::new();
        let mut ok = true;
        for (term, value) in [
            (&pat.s, Node::Iri(triple.subject.clone())),
            (&pat.p, Node::Iri(triple.predicate.clone())),
            (&pat.o, triple.object.clone()),
        ] {
            if let Term::Var(v) = term {
                match binding.get(v) {
                    Some(existing) => {
                        // Subjects/predicates bind as IRIs; compare by
                        // lexical form so ?x can join across positions.
                        if existing.lexical() != value.lexical() {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding.insert(v.clone(), value);
                        added.push(v.clone());
                    }
                }
            }
        }
        if ok {
            solve_rec(graph, patterns, idx + 1, binding, out);
        }
        for v in added {
            binding.remove(&v);
        }
    }
}

/// Parse a whitespace-separated BGP text: one pattern per line,
/// `subject predicate object` (object may contain no spaces), `#` comments.
pub fn parse_bgp(text: &str) -> Vec<TriplePattern> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            Some(TriplePattern::new(it.next()?, it.next()?, it.next()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb_graph() -> Graph {
        let mut g = Graph::new();
        for (name, kind) in [("cpu0", "thread"), ("cpu1", "thread"), ("gpu0", "gpu")] {
            g.add(name, "rdf:type", Node::lit("Interface"));
            g.add(name, "pmove:componentType", Node::lit(kind));
        }
        g.add("cpu0", "pmove:hasTelemetry", Node::iri("tel0"));
        g.add("cpu1", "pmove:hasTelemetry", Node::iri("tel1"));
        g.add("tel0", "pmove:dbName", Node::lit("kernel_percpu_cpu_idle"));
        g.add("tel1", "pmove:dbName", Node::lit("kernel_percpu_cpu_idle"));
        g.add("tel0", "rdf:type", Node::lit("SWTelemetry"));
        g.add("tel1", "rdf:type", Node::lit("HWTelemetry"));
        g
    }

    #[test]
    fn single_pattern_with_variable() {
        let g = kb_graph();
        let sols = solve(&g, &[TriplePattern::new("?x", "rdf:type", "Interface")]);
        assert_eq!(sols.len(), 3);
        let names: Vec<&str> = sols.iter().map(|s| s["x"].lexical()).collect();
        assert!(names.contains(&"cpu0"));
        assert!(names.contains(&"gpu0"));
    }

    #[test]
    fn multi_pattern_join() {
        // Threads with telemetry whose db name is the idle metric, plus
        // the telemetry kind.
        let g = kb_graph();
        let bgp = parse_bgp(
            "# find thread telemetry
             ?c pmove:componentType thread
             ?c pmove:hasTelemetry ?t
             ?t pmove:dbName kernel_percpu_cpu_idle
             ?t rdf:type ?kind",
        );
        let sols = solve(&g, &bgp);
        assert_eq!(sols.len(), 2);
        let kinds: Vec<&str> = sols.iter().map(|s| s["kind"].lexical()).collect();
        assert!(kinds.contains(&"SWTelemetry"));
        assert!(kinds.contains(&"HWTelemetry"));
    }

    #[test]
    fn shared_variable_must_join_consistently() {
        let g = kb_graph();
        // ?t appears in two patterns: tel0 must not join with tel1's type.
        let sols = solve(
            &g,
            &[
                TriplePattern::new("cpu0", "pmove:hasTelemetry", "?t"),
                TriplePattern::new("?t", "rdf:type", "HWTelemetry"),
            ],
        );
        assert!(sols.is_empty(), "cpu0's telemetry is SW, not HW");
    }

    #[test]
    fn constant_only_pattern_acts_as_ask() {
        let g = kb_graph();
        assert_eq!(
            solve(&g, &[TriplePattern::new("cpu0", "rdf:type", "Interface")]).len(),
            1
        );
        assert!(solve(&g, &[TriplePattern::new("cpu0", "rdf:type", "Gpu")]).is_empty());
    }

    #[test]
    fn object_constant_matches_iri_nodes_too() {
        let g = kb_graph();
        let sols = solve(
            &g,
            &[TriplePattern::new("?c", "pmove:hasTelemetry", "tel0")],
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0]["c"].lexical(), "cpu0");
    }

    #[test]
    fn empty_bgp_yields_one_empty_solution() {
        let g = kb_graph();
        let sols = solve(&g, &[]);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let bgp = parse_bgp("# c\n\n?a b c\n");
        assert_eq!(bgp.len(), 1);
        assert_eq!(bgp[0].s, Term::Var("a".into()));
    }
}
