//! JSON-LD `@context` handling: term → IRI mapping with prefix support.
//!
//! DTDL documents carry `"@context": "dtmi:dtdl:context;2"`; P-MoVE's KB
//! additionally defines short terms for its own vocabulary. This module
//! implements the subset of context processing those documents need:
//! string term definitions, prefix expansion (`ex:thing`), and keyword
//! passthrough (`@id`, `@type`, ...).

use serde_json::Value;
use std::collections::BTreeMap;

/// An active JSON-LD context.
#[derive(Debug, Clone, Default)]
pub struct Context {
    terms: BTreeMap<String, String>,
}

/// The built-in DTDL v2 context IRI.
pub const DTDL_CONTEXT: &str = "dtmi:dtdl:context;2";

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// The base vocabulary P-MoVE uses for its KB documents: DTDL metamodel
    /// class names plus the P-MoVE telemetry extensions.
    pub fn pmove() -> Self {
        let mut c = Context::new();
        for (term, iri) in [
            ("Interface", "dtmi:dtdl:class:Interface;2"),
            ("Telemetry", "dtmi:dtdl:class:Telemetry;2"),
            ("Property", "dtmi:dtdl:class:Property;2"),
            ("Command", "dtmi:dtdl:class:Command;2"),
            ("Relationship", "dtmi:dtdl:class:Relationship;2"),
            ("Component", "dtmi:dtdl:class:Component;2"),
            ("SWTelemetry", "dtmi:pmove:class:SWTelemetry;1"),
            ("HWTelemetry", "dtmi:pmove:class:HWTelemetry;1"),
            ("name", "dtmi:dtdl:property:name;2"),
            ("description", "dtmi:dtdl:property:description;2"),
            ("contents", "dtmi:dtdl:property:contents;2"),
            ("target", "dtmi:dtdl:property:target;2"),
            ("schema", "dtmi:dtdl:property:schema;2"),
            ("pmove", "dtmi:pmove:"),
        ] {
            c.define(term, iri);
        }
        c
    }

    /// Define one term.
    pub fn define(&mut self, term: impl Into<String>, iri: impl Into<String>) {
        self.terms.insert(term.into(), iri.into());
    }

    /// Merge term definitions from a JSON `@context` value. Accepts a string
    /// (context IRI — recorded as the `@vocab` pseudo-term), an object of
    /// term definitions, or an array of both.
    pub fn merge_json(&mut self, ctx: &Value) {
        match ctx {
            Value::String(s) => {
                self.terms.insert("@vocab".into(), s.clone());
            }
            Value::Object(map) => {
                for (term, def) in map {
                    match def {
                        Value::String(iri) => self.define(term.clone(), iri.clone()),
                        Value::Object(o) => {
                            if let Some(Value::String(iri)) = o.get("@id") {
                                self.define(term.clone(), iri.clone());
                            }
                        }
                        _ => {}
                    }
                }
            }
            Value::Array(items) => {
                for item in items {
                    self.merge_json(item);
                }
            }
            _ => {}
        }
    }

    /// Expand a term to its IRI:
    /// keywords (`@...`) and absolute IRIs pass through; defined terms map;
    /// `prefix:suffix` expands when `prefix` is defined; anything else is
    /// returned unchanged (vocab-relative).
    pub fn expand_term(&self, term: &str) -> String {
        if term.starts_with('@') {
            return term.to_string();
        }
        if let Some(iri) = self.terms.get(term) {
            return iri.clone();
        }
        if let Some((prefix, suffix)) = term.split_once(':') {
            if let Some(base) = self.terms.get(prefix) {
                return format!("{base}{suffix}");
            }
            // Looks like an absolute IRI / DTMI already.
            return term.to_string();
        }
        term.to_string()
    }

    /// Reverse lookup: compact an IRI back to a defined term when possible.
    pub fn compact_iri(&self, iri: &str) -> String {
        for (term, def) in &self.terms {
            if term != "@vocab" && def == iri {
                return term.clone();
            }
        }
        iri.to_string()
    }

    /// Number of defined terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term is defined.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn pmove_context_expands_classes() {
        let c = Context::pmove();
        assert_eq!(c.expand_term("Interface"), "dtmi:dtdl:class:Interface;2");
        assert_eq!(
            c.expand_term("HWTelemetry"),
            "dtmi:pmove:class:HWTelemetry;1"
        );
        assert_eq!(c.expand_term("@id"), "@id");
    }

    #[test]
    fn prefix_expansion() {
        let mut c = Context::new();
        c.define("ex", "http://example.org/");
        assert_eq!(c.expand_term("ex:thing"), "http://example.org/thing");
        // Unknown prefix: treated as absolute.
        assert_eq!(c.expand_term("dtmi:dt:x;1"), "dtmi:dt:x;1");
        // Undefined bare term: vocab-relative passthrough.
        assert_eq!(c.expand_term("bare"), "bare");
    }

    #[test]
    fn merge_json_forms() {
        let mut c = Context::new();
        c.merge_json(&json!("dtmi:dtdl:context;2"));
        c.merge_json(&json!({"a": "iri:a", "b": {"@id": "iri:b"}, "skip": 4}));
        c.merge_json(&json!([{"c": "iri:c"}]));
        assert_eq!(c.expand_term("a"), "iri:a");
        assert_eq!(c.expand_term("b"), "iri:b");
        assert_eq!(c.expand_term("c"), "iri:c");
        assert_eq!(c.expand_term("skip"), "skip");
    }

    #[test]
    fn compaction_roundtrip() {
        let c = Context::pmove();
        let iri = c.expand_term("Telemetry");
        assert_eq!(c.compact_iri(&iri), "Telemetry");
        assert_eq!(c.compact_iri("unknown:iri"), "unknown:iri");
    }
}
