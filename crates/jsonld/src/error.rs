//! Error type for linked-data operations.

use std::fmt;

/// Errors produced while parsing or validating linked-data documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonLdError {
    /// A DTMI string violated the `dtmi:<path>;<version>` grammar.
    BadDtmi(String),
    /// A JSON-LD document was structurally invalid.
    BadDocument(String),
    /// DTDL validation failed.
    Validation(String),
    /// A referenced term had no definition in the active context.
    UnknownTerm(String),
}

impl fmt::Display for JsonLdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonLdError::BadDtmi(s) => write!(f, "invalid DTMI: {s}"),
            JsonLdError::BadDocument(s) => write!(f, "invalid JSON-LD document: {s}"),
            JsonLdError::Validation(s) => write!(f, "DTDL validation error: {s}"),
            JsonLdError::UnknownTerm(s) => write!(f, "unknown term: {s}"),
        }
    }
}

impl std::error::Error for JsonLdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        assert!(JsonLdError::BadDtmi("x".into())
            .to_string()
            .contains("DTMI"));
        assert!(JsonLdError::Validation("v".into())
            .to_string()
            .contains('v'));
    }
}
