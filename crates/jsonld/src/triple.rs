//! RDF triples: subject–predicate–object statements over IRIs and literals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node in the RDF graph: an IRI reference or a literal value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Node {
    /// IRI (or DTMI, which is a valid IRI scheme use).
    Iri(String),
    /// Plain string literal.
    Literal(String),
    /// Typed literal with datatype IRI (e.g. xsd:integer).
    TypedLiteral(String, String),
}

impl Node {
    /// Build an IRI node.
    pub fn iri(s: impl Into<String>) -> Self {
        Node::Iri(s.into())
    }

    /// Build a plain literal node.
    pub fn lit(s: impl Into<String>) -> Self {
        Node::Literal(s.into())
    }

    /// Build an integer-typed literal.
    pub fn int(v: i64) -> Self {
        Node::TypedLiteral(v.to_string(), "xsd:integer".into())
    }

    /// Build a double-typed literal.
    pub fn double(v: f64) -> Self {
        Node::TypedLiteral(v.to_string(), "xsd:double".into())
    }

    /// The lexical form, regardless of node kind.
    pub fn lexical(&self) -> &str {
        match self {
            Node::Iri(s) | Node::Literal(s) | Node::TypedLiteral(s, _) => s,
        }
    }

    /// Is this an IRI node?
    pub fn is_iri(&self) -> bool {
        matches!(self, Node::Iri(_))
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Iri(s) => write!(f, "<{s}>"),
            Node::Literal(s) => write!(f, "\"{s}\""),
            Node::TypedLiteral(s, t) => write!(f, "\"{s}\"^^{t}"),
        }
    }
}

/// One RDF statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Subject (always an IRI in this KB).
    pub subject: String,
    /// Predicate IRI / term.
    pub predicate: String,
    /// Object node.
    pub object: Node,
}

impl Triple {
    /// Build a triple.
    pub fn new(subject: impl Into<String>, predicate: impl Into<String>, object: Node) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}> <{}> {} .",
            self.subject, self.predicate, self.object
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_constructors() {
        assert_eq!(Node::iri("dtmi:dt;1"), Node::Iri("dtmi:dt;1".into()));
        assert_eq!(Node::lit("x").lexical(), "x");
        assert_eq!(
            Node::int(3),
            Node::TypedLiteral("3".into(), "xsd:integer".into())
        );
        assert!(Node::iri("a").is_iri());
        assert!(!Node::lit("a").is_iri());
    }

    #[test]
    fn display_ntriples_like() {
        let t = Triple::new("s", "p", Node::lit("o"));
        assert_eq!(t.to_string(), "<s> <p> \"o\" .");
        let t = Triple::new("s", "p", Node::double(1.5));
        assert!(t.to_string().contains("xsd:double"));
    }
}
