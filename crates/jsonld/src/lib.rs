//! # pmove-jsonld — linked-data substrate
//!
//! RDF, JSON-LD and DTDL building blocks for the P-MoVE knowledge base.
//! The paper encodes an HPC system as a hierarchy of DTDL Interfaces
//! (each component a stand-alone sub-twin) serialized over JSON-LD; this
//! crate supplies:
//!
//! * [`triple`] — RDF triples over IRIs/literals;
//! * [`graph`] — an indexed triple store with `(s?, p?, o?)` pattern queries
//!   (SPO/POS/OSP indexes);
//! * [`dtmi`] — Digital Twin Model Identifier parsing/validation
//!   (`dtmi:dt:cn1:gpu0;1`);
//! * [`context`] / [`expand`] — the JSON-LD `@context` term-expansion subset
//!   that DTDL documents rely on;
//! * [`dtdl`] — the six DTDL metamodel classes the paper lists (Interface,
//!   Telemetry, Property, Command, Relationship, plus schemas) with P-MoVE's
//!   `SWTelemetry`/`HWTelemetry` extension types;
//! * [`validate`] — structural validation of DTDL documents;
//! * [`serialize`] — Interface ⇄ JSON-LD document conversion and
//!   Interface → triple projection.

pub mod context;
pub mod dtdl;
pub mod dtmi;
pub mod error;
pub mod expand;
pub mod graph;
pub mod query;
pub mod serialize;
pub mod triple;
pub mod validate;

pub use dtdl::{Content, Interface, Property, Relationship, Schema, Telemetry, TelemetryKind};
pub use dtmi::Dtmi;
pub use error::JsonLdError;
pub use graph::Graph;
pub use triple::{Node, Triple};
