//! An indexed triple store.
//!
//! Keeps SPO/POS/OSP permutation indexes so every `(s?, p?, o?)` pattern
//! resolves without a full scan — the KB's focus/subtree/level views all
//! reduce to such patterns.

use crate::triple::{Node, Triple};
use std::collections::{BTreeMap, BTreeSet};

/// Triple pattern: `None` matches anything.
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    /// Subject constraint.
    pub subject: Option<String>,
    /// Predicate constraint.
    pub predicate: Option<String>,
    /// Object constraint.
    pub object: Option<Node>,
}

impl Pattern {
    /// Match any triple.
    pub fn any() -> Self {
        Pattern::default()
    }

    /// Constrain the subject.
    pub fn s(mut self, subject: impl Into<String>) -> Self {
        self.subject = Some(subject.into());
        self
    }

    /// Constrain the predicate.
    pub fn p(mut self, predicate: impl Into<String>) -> Self {
        self.predicate = Some(predicate.into());
        self
    }

    /// Constrain the object.
    pub fn o(mut self, object: Node) -> Self {
        self.object = Some(object);
        self
    }
}

/// The triple store.
#[derive(Debug, Default)]
pub struct Graph {
    triples: Vec<Triple>,
    dead: BTreeSet<usize>,
    spo: BTreeMap<String, BTreeSet<usize>>,
    pos: BTreeMap<String, BTreeSet<usize>>,
    osp: BTreeMap<String, BTreeSet<usize>>,
}

impl Graph {
    /// New empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live triples.
    pub fn len(&self) -> usize {
        self.triples.len() - self.dead.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn object_key(o: &Node) -> String {
        format!("{o}")
    }

    /// Insert a triple (duplicates are allowed, as in RDF multisets here).
    pub fn insert(&mut self, t: Triple) {
        let id = self.triples.len();
        self.spo.entry(t.subject.clone()).or_default().insert(id);
        self.pos.entry(t.predicate.clone()).or_default().insert(id);
        self.osp
            .entry(Self::object_key(&t.object))
            .or_default()
            .insert(id);
        self.triples.push(t);
    }

    /// Convenience insert.
    pub fn add(&mut self, subject: impl Into<String>, predicate: impl Into<String>, object: Node) {
        self.insert(Triple::new(subject, predicate, object));
    }

    /// Delete every triple matching the pattern; returns the count removed.
    pub fn delete(&mut self, pattern: &Pattern) -> usize {
        let ids: Vec<usize> = self.candidates(pattern).collect();
        let mut removed = 0;
        for id in ids {
            if self.dead.contains(&id) {
                continue;
            }
            let t = &self.triples[id];
            if Self::matches(t, pattern) {
                self.spo.get_mut(&t.subject).map(|s| s.remove(&id));
                self.pos.get_mut(&t.predicate).map(|s| s.remove(&id));
                self.osp
                    .get_mut(&Self::object_key(&t.object))
                    .map(|s| s.remove(&id));
                self.dead.insert(id);
                removed += 1;
            }
        }
        removed
    }

    fn matches(t: &Triple, p: &Pattern) -> bool {
        p.subject.as_ref().is_none_or(|s| *s == t.subject)
            && p.predicate.as_ref().is_none_or(|pr| *pr == t.predicate)
            && p.object.as_ref().is_none_or(|o| *o == t.object)
    }

    /// Candidate triple ids for a pattern using the most selective index.
    fn candidates<'a>(&'a self, p: &Pattern) -> Box<dyn Iterator<Item = usize> + 'a> {
        let by_s = p.subject.as_ref().and_then(|s| self.spo.get(s));
        let by_p = p.predicate.as_ref().and_then(|pr| self.pos.get(pr));
        let by_o = p
            .object
            .as_ref()
            .and_then(|o| self.osp.get(&Self::object_key(o)));
        let sets: Vec<&BTreeSet<usize>> = [by_s, by_p, by_o].into_iter().flatten().collect();
        match sets.into_iter().min_by_key(|s| s.len()) {
            Some(best) => Box::new(best.iter().copied()),
            None => Box::new(0..self.triples.len()),
        }
    }

    /// All live triples matching a pattern, in insertion order.
    pub fn query(&self, pattern: &Pattern) -> Vec<&Triple> {
        let mut ids: Vec<usize> = self
            .candidates(pattern)
            .filter(|id| !self.dead.contains(id))
            .filter(|&id| Self::matches(&self.triples[id], pattern))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| &self.triples[id]).collect()
    }

    /// Objects of `(subject, predicate, ?)`.
    pub fn objects(&self, subject: &str, predicate: &str) -> Vec<&Node> {
        self.query(&Pattern::any().s(subject).p(predicate))
            .into_iter()
            .map(|t| &t.object)
            .collect()
    }

    /// Subjects of `(?, predicate, object)`.
    pub fn subjects(&self, predicate: &str, object: &Node) -> Vec<&str> {
        self.query(&Pattern::any().p(predicate).o(object.clone()))
            .into_iter()
            .map(|t| t.subject.as_str())
            .collect()
    }

    /// Iterate all live triples.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples
            .iter()
            .enumerate()
            .filter(move |(id, _)| !self.dead.contains(id))
            .map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> Graph {
        let mut g = Graph::new();
        g.add("gpu0", "rdf:type", Node::lit("Interface"));
        g.add("gpu0", "name", Node::lit("NVIDIA GV100"));
        g.add("gpu0", "partOf", Node::iri("cn1"));
        g.add("cpu0", "rdf:type", Node::lit("Interface"));
        g.add("cpu0", "partOf", Node::iri("socket0"));
        g
    }

    #[test]
    fn pattern_queries() {
        let g = filled();
        assert_eq!(g.query(&Pattern::any()).len(), 5);
        assert_eq!(g.query(&Pattern::any().s("gpu0")).len(), 3);
        assert_eq!(g.query(&Pattern::any().p("rdf:type")).len(), 2);
        assert_eq!(g.query(&Pattern::any().o(Node::lit("Interface"))).len(), 2);
        assert_eq!(g.query(&Pattern::any().s("gpu0").p("rdf:type")).len(), 1);
        assert!(g.query(&Pattern::any().s("nosuch")).is_empty());
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let g = filled();
        assert_eq!(g.objects("gpu0", "name"), vec![&Node::lit("NVIDIA GV100")]);
        let subs = g.subjects("rdf:type", &Node::lit("Interface"));
        assert_eq!(subs, vec!["gpu0", "cpu0"]);
    }

    #[test]
    fn delete_by_pattern() {
        let mut g = filled();
        let removed = g.delete(&Pattern::any().s("gpu0"));
        assert_eq!(removed, 3);
        assert_eq!(g.len(), 2);
        assert!(g.query(&Pattern::any().s("gpu0")).is_empty());
        // Deleting again removes nothing.
        assert_eq!(g.delete(&Pattern::any().s("gpu0")), 0);
    }

    #[test]
    fn duplicates_allowed_and_counted() {
        let mut g = Graph::new();
        g.add("s", "p", Node::lit("o"));
        g.add("s", "p", Node::lit("o"));
        assert_eq!(g.len(), 2);
        assert_eq!(g.query(&Pattern::any().s("s")).len(), 2);
    }

    #[test]
    fn iter_skips_deleted() {
        let mut g = filled();
        g.delete(&Pattern::any().p("partOf"));
        assert_eq!(g.iter().count(), 3);
    }
}
