//! # pmove-docdb — embedded document database
//!
//! A deterministic, in-process stand-in for the MongoDB instance that the
//! P-MoVE paper uses to hold the knowledge base (JSON-LD documents extended
//! with per-computation entries). It provides:
//!
//! * **collections** of JSON documents with auto-assigned `_id`s;
//! * a MongoDB-flavoured **filter language**: `$eq`, `$ne`, `$gt`, `$gte`,
//!   `$lt`, `$lte`, `$in`, `$nin`, `$exists`, `$and`, `$or`, `$not`,
//!   `$contains` (substring), with dotted-path field access;
//! * **update operators**: `$set`, `$unset`, `$inc`, `$push`;
//! * **hash indexes** over dotted paths, consulted automatically by equality
//!   queries;
//! * sorted/limited **find** with projection.
//!
//! ```
//! use pmove_docdb::Database;
//! use serde_json::json;
//!
//! let db = Database::new("supertwin");
//! let kb = db.collection("kb");
//! kb.insert_one(json!({"@id": "dtmi:dt:cn1:gpu0;1", "@type": "Interface"})).unwrap();
//! let found = kb.find(&json!({"@type": {"$eq": "Interface"}})).unwrap();
//! assert_eq!(found.len(), 1);
//! ```

pub mod collection;
pub mod database;
pub mod document;
pub mod error;
pub mod filter;
pub mod index;
pub mod journal;
pub mod update;

pub use collection::{Collection, FindOptions};
pub use database::Database;
pub use error::DocDbError;
pub use journal::{DurableDatabase, JournalReport};

/// Convenience macro building a `serde_json::Value` document.
#[macro_export]
macro_rules! doc {
    ($($t:tt)*) => { serde_json::json!({ $($t)* }) };
}
