//! MongoDB-flavoured update operators: `$set`, `$unset`, `$inc`, `$push`.

use crate::document::{get_path_mut, remove_path, set_path};
use crate::error::DocDbError;
use serde_json::{json, Value};

/// Apply an update specification to a document in place.
///
/// The spec is an object of operator sections, e.g.
/// `{"$set": {"a.b": 1}, "$inc": {"count": 2}}`. A spec without any `$`
/// operator replaces the entire document body (preserving `_id`), matching
/// Mongo's replace semantics.
pub fn apply(doc: &mut Value, spec: &Value) -> Result<(), DocDbError> {
    let obj = spec
        .as_object()
        .ok_or_else(|| DocDbError::BadUpdate("update must be an object".into()))?;

    if !obj.keys().any(|k| k.starts_with('$')) {
        // Whole-document replacement, `_id` preserved.
        let id = doc.get("_id").cloned();
        *doc = spec.clone();
        if let (Some(id), Some(map)) = (id, doc.as_object_mut()) {
            map.insert("_id".into(), id);
        }
        return Ok(());
    }

    for (op, args) in obj {
        let args = args
            .as_object()
            .ok_or_else(|| DocDbError::BadUpdate(format!("{op} expects an object")))?;
        match op.as_str() {
            "$set" => {
                for (path, v) in args {
                    if !set_path(doc, path, v.clone()) {
                        return Err(DocDbError::BadUpdate(format!("cannot set {path}")));
                    }
                }
            }
            "$unset" => {
                for path in args.keys() {
                    remove_path(doc, path);
                }
            }
            "$inc" => {
                for (path, delta) in args {
                    let d = delta
                        .as_f64()
                        .ok_or_else(|| DocDbError::BadUpdate("$inc needs a number".into()))?;
                    match get_path_mut(doc, path) {
                        Some(Value::Number(n)) => {
                            let cur = n.as_f64().unwrap_or(0.0);
                            *get_path_mut(doc, path).expect("checked") = json!(cur + d);
                        }
                        Some(_) => {
                            return Err(DocDbError::BadUpdate(format!(
                                "$inc target {path} is not a number"
                            )))
                        }
                        None => {
                            if !set_path(doc, path, json!(d)) {
                                return Err(DocDbError::BadUpdate(format!("cannot set {path}")));
                            }
                        }
                    }
                }
            }
            "$push" => {
                for (path, v) in args {
                    match get_path_mut(doc, path) {
                        Some(Value::Array(arr)) => arr.push(v.clone()),
                        Some(_) => {
                            return Err(DocDbError::BadUpdate(format!(
                                "$push target {path} is not an array"
                            )))
                        }
                        None => {
                            if !set_path(doc, path, json!([v])) {
                                return Err(DocDbError::BadUpdate(format!("cannot set {path}")));
                            }
                        }
                    }
                }
            }
            other => return Err(DocDbError::BadUpdate(format!("unknown operator {other}"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_unset() {
        let mut d = json!({"_id": "1", "a": 1});
        apply(&mut d, &json!({"$set": {"b.c": 2}, "$unset": {"a": ""}})).unwrap();
        assert_eq!(d, json!({"_id": "1", "b": {"c": 2}}));
    }

    #[test]
    fn inc_existing_and_new() {
        let mut d = json!({"n": 5});
        apply(&mut d, &json!({"$inc": {"n": 2.5, "m": 1}})).unwrap();
        assert_eq!(d["n"], json!(7.5));
        assert_eq!(d["m"], json!(1.0));
    }

    #[test]
    fn inc_non_number_errors() {
        let mut d = json!({"s": "x"});
        assert!(apply(&mut d, &json!({"$inc": {"s": 1}})).is_err());
        assert!(apply(&mut d, &json!({"$inc": {"s": "one"}})).is_err());
    }

    #[test]
    fn push_appends_or_creates() {
        let mut d = json!({"arr": [1]});
        apply(&mut d, &json!({"$push": {"arr": 2, "new": 3}})).unwrap();
        assert_eq!(d["arr"], json!([1, 2]));
        assert_eq!(d["new"], json!([3]));
        assert!(apply(&mut d, &json!({"$push": {"arr.0": 9}})).is_err());
    }

    #[test]
    fn replacement_preserves_id() {
        let mut d = json!({"_id": "keep", "old": true});
        apply(&mut d, &json!({"fresh": 1})).unwrap();
        assert_eq!(d, json!({"_id": "keep", "fresh": 1}));
    }

    #[test]
    fn malformed_specs_error() {
        let mut d = json!({});
        assert!(apply(&mut d, &json!(7)).is_err());
        assert!(apply(&mut d, &json!({"$set": 7})).is_err());
        assert!(apply(&mut d, &json!({"$frobnicate": {}})).is_err());
    }
}
