//! Dotted-path access into JSON documents (`a.b.c`, with numeric segments
//! indexing into arrays), mirroring MongoDB's field-path semantics.

use serde_json::Value;

/// Read the value at a dotted path; `None` when any segment is missing.
pub fn get_path<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = match cur {
            Value::Object(map) => map.get(seg)?,
            Value::Array(arr) => {
                let idx: usize = seg.parse().ok()?;
                arr.get(idx)?
            }
            _ => return None,
        };
    }
    Some(cur)
}

/// Write `value` at a dotted path, creating intermediate objects as needed.
/// Returns `false` (and leaves the document untouched) when the path walks
/// through a non-object, non-creatable value.
pub fn set_path(doc: &mut Value, path: &str, value: Value) -> bool {
    let mut cur = doc;
    let segs: Vec<&str> = path.split('.').collect();
    for (i, seg) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        match cur {
            Value::Object(map) => {
                if last {
                    map.insert(seg.to_string(), value);
                    return true;
                }
                cur = map
                    .entry(seg.to_string())
                    .or_insert_with(|| Value::Object(Default::default()));
            }
            Value::Array(arr) => {
                let Ok(idx) = seg.parse::<usize>() else {
                    return false;
                };
                if idx >= arr.len() {
                    return false;
                }
                if last {
                    arr[idx] = value;
                    return true;
                }
                cur = &mut arr[idx];
            }
            _ => return false,
        }
    }
    false
}

/// Remove the value at a dotted path; returns the removed value if present.
pub fn remove_path(doc: &mut Value, path: &str) -> Option<Value> {
    let (parent_path, leaf) = match path.rfind('.') {
        Some(i) => (Some(&path[..i]), &path[i + 1..]),
        None => (None, path),
    };
    let parent = match parent_path {
        Some(p) => get_path_mut(doc, p)?,
        None => doc,
    };
    match parent {
        Value::Object(map) => map.remove(leaf),
        _ => None,
    }
}

/// Mutable dotted-path access.
pub fn get_path_mut<'a>(doc: &'a mut Value, path: &str) -> Option<&'a mut Value> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = match cur {
            Value::Object(map) => map.get_mut(seg)?,
            Value::Array(arr) => {
                let idx: usize = seg.parse().ok()?;
                arr.get_mut(idx)?
            }
            _ => return None,
        };
    }
    Some(cur)
}

/// Total order over JSON values used for comparisons and sorting:
/// null < bool < number < string < array < object (Mongo's BSON ordering,
/// simplified).
pub fn compare(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => {
            let xf = x.as_f64().unwrap_or(f64::NAN);
            let yf = y.as_f64().unwrap_or(f64::NAN);
            xf.partial_cmp(&yf).unwrap_or(Ordering::Equal)
        }
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let ord = compare(xa, ya);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn get_nested_and_array() {
        let d = json!({"a": {"b": [10, {"c": 42}]}});
        assert_eq!(get_path(&d, "a.b.1.c"), Some(&json!(42)));
        assert_eq!(get_path(&d, "a.b.0"), Some(&json!(10)));
        assert_eq!(get_path(&d, "a.x"), None);
        assert_eq!(get_path(&d, "a.b.9"), None);
        assert_eq!(get_path(&d, "a.b.zz"), None);
    }

    #[test]
    fn set_creates_intermediates() {
        let mut d = json!({});
        assert!(set_path(&mut d, "a.b.c", json!(1)));
        assert_eq!(d, json!({"a": {"b": {"c": 1}}}));
    }

    #[test]
    fn set_into_array_element() {
        let mut d = json!({"a": [1, 2]});
        assert!(set_path(&mut d, "a.1", json!(9)));
        assert_eq!(d, json!({"a": [1, 9]}));
        assert!(!set_path(&mut d, "a.5", json!(0)));
        assert!(!set_path(&mut d, "a.1.b", json!(0)));
    }

    #[test]
    fn remove_leaf_and_missing() {
        let mut d = json!({"a": {"b": 1, "c": 2}});
        assert_eq!(remove_path(&mut d, "a.b"), Some(json!(1)));
        assert_eq!(remove_path(&mut d, "a.b"), None);
        assert_eq!(d, json!({"a": {"c": 2}}));
        assert_eq!(remove_path(&mut d, "a"), Some(json!({"c": 2})));
    }

    #[test]
    fn ordering_across_types() {
        use std::cmp::Ordering::*;
        assert_eq!(compare(&json!(null), &json!(false)), Less);
        assert_eq!(compare(&json!(1), &json!(2.5)), Less);
        assert_eq!(compare(&json!("a"), &json!("b")), Less);
        assert_eq!(compare(&json!([1, 2]), &json!([1, 3])), Less);
        assert_eq!(compare(&json!([1]), &json!([1, 0])), Less);
        assert_eq!(compare(&json!(2), &json!("1")), Less); // number < string
        assert_eq!(compare(&json!(true), &json!(true)), Equal);
    }
}
