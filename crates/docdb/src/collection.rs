//! Collections: ordered bags of JSON documents with filters, updates,
//! indexes and find options.

use crate::document::{compare, get_path};
use crate::error::DocDbError;
use crate::filter::{equality_constraints, matches};
use crate::index::PathIndex;
use crate::update;
use parking_lot::RwLock;
use pmove_obs::{Counter, Registry};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Options controlling `find_with`.
#[derive(Debug, Clone, Default)]
pub struct FindOptions {
    /// Sort by this dotted path (ascending unless `descending`).
    pub sort_by: Option<String>,
    /// Reverse the sort order.
    pub descending: bool,
    /// Keep at most this many results.
    pub limit: Option<usize>,
    /// Project only these dotted paths (plus `_id`).
    pub projection: Option<Vec<String>>,
}

impl FindOptions {
    /// Sort ascending by `path`.
    pub fn sort(path: impl Into<String>) -> Self {
        FindOptions {
            sort_by: Some(path.into()),
            ..Default::default()
        }
    }

    /// Flip to descending order.
    pub fn desc(mut self) -> Self {
        self.descending = true;
        self
    }

    /// Cap the number of results.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Project only the given paths.
    pub fn project<I: IntoIterator<Item = S>, S: Into<String>>(mut self, paths: I) -> Self {
        self.projection = Some(paths.into_iter().map(Into::into).collect());
        self
    }
}

struct Inner {
    /// Slot-addressed documents; `None` marks deleted slots.
    docs: Vec<Option<Value>>,
    indexes: Vec<PathIndex>,
    live: usize,
}

/// Hoisted per-collection `docdb.*` op counters, labelled by collection.
struct CollectionObs {
    inserts: Arc<Counter>,
    finds: Arc<Counter>,
    updates: Arc<Counter>,
    deletes: Arc<Counter>,
}

impl CollectionObs {
    fn new(registry: &Registry, collection: &str) -> CollectionObs {
        let labels = [("collection", collection)];
        CollectionObs {
            inserts: registry.counter("docdb.inserts", &labels),
            finds: registry.counter("docdb.finds", &labels),
            updates: registry.counter("docdb.updates", &labels),
            deletes: registry.counter("docdb.deletes", &labels),
        }
    }
}

/// A named document collection. Cloneable handles share state via the
/// database; `Collection` itself is the storage object.
pub struct Collection {
    name: String,
    inner: RwLock<Inner>,
    next_id: AtomicU64,
    obs: Option<CollectionObs>,
}

impl Collection {
    /// New empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Collection {
            name: name.into(),
            inner: RwLock::new(Inner {
                docs: Vec::new(),
                indexes: Vec::new(),
                live: 0,
            }),
            next_id: AtomicU64::new(1),
            obs: None,
        }
    }

    /// [`Collection::new`] with `docdb.*` op counters (labelled with the
    /// collection name) registered in `registry`.
    pub fn with_obs(name: impl Into<String>, registry: &Registry) -> Self {
        let mut c = Collection::new(name);
        c.obs = Some(CollectionObs::new(registry, &c.name));
        c
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raise the auto-`_id` counter to at least `min`, so documents
    /// restored from a journal never collide with freshly assigned ids.
    pub(crate) fn bump_next_id(&self, min: u64) {
        self.next_id.fetch_max(min, Ordering::Relaxed);
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.inner.read().live
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Create a hash index over `path` and index existing documents.
    pub fn create_index(&self, path: impl Into<String>) {
        let mut inner = self.inner.write();
        let mut idx = PathIndex::new(path);
        for (slot, doc) in inner.docs.iter().enumerate() {
            if let Some(doc) = doc {
                idx.add(slot, doc);
            }
        }
        inner.indexes.push(idx);
    }

    /// Insert one document; assigns `_id` if absent. Returns the `_id`.
    pub fn insert_one(&self, mut doc: Value) -> Result<String, DocDbError> {
        if let Some(o) = &self.obs {
            o.inserts.inc();
        }
        let map = doc.as_object_mut().ok_or(DocDbError::NotAnObject)?;
        let id = match map.get("_id") {
            Some(Value::String(s)) => s.clone(),
            Some(other) => other.to_string(),
            None => {
                let id = format!("oid{:08x}", self.next_id.fetch_add(1, Ordering::Relaxed));
                map.insert("_id".into(), json!(id));
                id
            }
        };
        let mut inner = self.inner.write();
        // _id uniqueness check (scan or index).
        let id_value = json!(id);
        let dup = if let Some(idx) = inner.indexes.iter().find(|i| i.path() == "_id") {
            idx.lookup(&id_value).is_some_and(|s| !s.is_empty())
        } else {
            inner
                .docs
                .iter()
                .flatten()
                .any(|d| d.get("_id") == Some(&id_value))
        };
        if dup {
            return Err(DocDbError::DuplicateId(id));
        }
        let slot = inner.docs.len();
        for idx in &mut inner.indexes {
            idx.add(slot, &doc);
        }
        inner.docs.push(Some(doc));
        inner.live += 1;
        Ok(id)
    }

    /// Insert many documents; stops at the first error.
    pub fn insert_many<I: IntoIterator<Item = Value>>(
        &self,
        docs: I,
    ) -> Result<Vec<String>, DocDbError> {
        docs.into_iter().map(|d| self.insert_one(d)).collect()
    }

    fn candidate_slots(&self, inner: &Inner, filter: &Value) -> Option<Vec<usize>> {
        // Use the most selective matching index among top-level equality
        // constraints, if any.
        let eqs = equality_constraints(filter);
        let mut best: Option<Vec<usize>> = None;
        for (path, value) in &eqs {
            if let Some(idx) = inner.indexes.iter().find(|i| i.path() == path.as_str()) {
                let slots: Vec<usize> = idx
                    .lookup(value)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                if best.as_ref().is_none_or(|b| slots.len() < b.len()) {
                    best = Some(slots);
                }
            }
        }
        best
    }

    /// Find documents matching `filter` (insertion order).
    pub fn find(&self, filter: &Value) -> Result<Vec<Value>, DocDbError> {
        self.find_with(filter, &FindOptions::default())
    }

    /// Find with sort/limit/projection options.
    pub fn find_with(&self, filter: &Value, opts: &FindOptions) -> Result<Vec<Value>, DocDbError> {
        if let Some(o) = &self.obs {
            o.finds.inc();
        }
        let inner = self.inner.read();
        let mut out = Vec::new();
        match self.candidate_slots(&inner, filter) {
            Some(slots) => {
                for slot in slots {
                    if let Some(Some(doc)) = inner.docs.get(slot) {
                        if matches(doc, filter)? {
                            out.push(doc.clone());
                        }
                    }
                }
            }
            None => {
                for doc in inner.docs.iter().flatten() {
                    if matches(doc, filter)? {
                        out.push(doc.clone());
                    }
                }
            }
        }
        if let Some(path) = &opts.sort_by {
            out.sort_by(|a, b| {
                let av = get_path(a, path).unwrap_or(&Value::Null);
                let bv = get_path(b, path).unwrap_or(&Value::Null);
                compare(av, bv)
            });
            if opts.descending {
                out.reverse();
            }
        }
        if let Some(limit) = opts.limit {
            out.truncate(limit);
        }
        if let Some(proj) = &opts.projection {
            out = out
                .into_iter()
                .map(|doc| {
                    let mut slim = serde_json::Map::new();
                    if let Some(id) = doc.get("_id") {
                        slim.insert("_id".into(), id.clone());
                    }
                    for p in proj {
                        if let Some(v) = get_path(&doc, p) {
                            slim.insert(p.clone(), v.clone());
                        }
                    }
                    Value::Object(slim)
                })
                .collect();
        }
        Ok(out)
    }

    /// First matching document, if any.
    pub fn find_one(&self, filter: &Value) -> Result<Option<Value>, DocDbError> {
        Ok(self
            .find_with(filter, &FindOptions::default().limit(1))?
            .into_iter()
            .next())
    }

    /// Update all matching documents; returns the number updated.
    pub fn update_many(&self, filter: &Value, spec: &Value) -> Result<usize, DocDbError> {
        if let Some(o) = &self.obs {
            o.updates.inc();
        }
        let mut inner = self.inner.write();
        let mut updated = 0;
        for slot in 0..inner.docs.len() {
            let Some(doc) = inner.docs[slot].clone() else {
                continue;
            };
            if matches(&doc, filter)? {
                let mut new_doc = doc.clone();
                update::apply(&mut new_doc, spec)?;
                for idx in &mut inner.indexes {
                    idx.remove(slot, &doc);
                    idx.add(slot, &new_doc);
                }
                inner.docs[slot] = Some(new_doc);
                updated += 1;
            }
        }
        Ok(updated)
    }

    /// Delete all matching documents; returns the number deleted.
    pub fn delete_many(&self, filter: &Value) -> Result<usize, DocDbError> {
        if let Some(o) = &self.obs {
            o.deletes.inc();
        }
        let mut inner = self.inner.write();
        let mut deleted = 0;
        for slot in 0..inner.docs.len() {
            let Some(doc) = inner.docs[slot].clone() else {
                continue;
            };
            if matches(&doc, filter)? {
                for idx in &mut inner.indexes {
                    idx.remove(slot, &doc);
                }
                inner.docs[slot] = None;
                inner.live -= 1;
                deleted += 1;
            }
        }
        Ok(deleted)
    }

    /// Count documents matching the filter.
    pub fn count(&self, filter: &Value) -> Result<usize, DocDbError> {
        Ok(self.find(filter)?.len())
    }

    /// All documents (insertion order).
    pub fn all(&self) -> Vec<Value> {
        self.inner.read().docs.iter().flatten().cloned().collect()
    }
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection")
            .field("name", &self.name)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> Collection {
        let c = Collection::new("kb");
        c.insert_many([
            json!({"@type": "Interface", "name": "cpu0", "freq": 3.7}),
            json!({"@type": "Interface", "name": "cpu1", "freq": 2.7}),
            json!({"@type": "Telemetry", "name": "metric4"}),
        ])
        .unwrap();
        c
    }

    #[test]
    fn insert_assigns_unique_ids() {
        let c = filled();
        assert_eq!(c.len(), 3);
        let ids: Vec<Value> = c.all().iter().map(|d| d["_id"].clone()).collect();
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|i| i.is_string()));
    }

    #[test]
    fn duplicate_id_rejected() {
        let c = Collection::new("t");
        c.insert_one(json!({"_id": "x"})).unwrap();
        assert_eq!(
            c.insert_one(json!({"_id": "x"})),
            Err(DocDbError::DuplicateId("x".into()))
        );
    }

    #[test]
    fn non_object_rejected() {
        let c = Collection::new("t");
        assert_eq!(c.insert_one(json!([1, 2])), Err(DocDbError::NotAnObject));
    }

    #[test]
    fn find_with_filter() {
        let c = filled();
        assert_eq!(c.count(&json!({"@type": "Interface"})).unwrap(), 2);
        let one = c.find_one(&json!({"name": "metric4"})).unwrap().unwrap();
        assert_eq!(one["@type"], json!("Telemetry"));
        assert!(c.find_one(&json!({"name": "nope"})).unwrap().is_none());
    }

    #[test]
    fn sort_limit_project() {
        let c = filled();
        let opts = FindOptions::sort("freq").desc().limit(1).project(["name"]);
        let r = c.find_with(&json!({"@type": "Interface"}), &opts).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0]["name"], json!("cpu0"));
        assert!(r[0].get("freq").is_none());
        assert!(r[0].get("_id").is_some());
    }

    #[test]
    fn update_many_applies_operators() {
        let c = filled();
        let n = c
            .update_many(
                &json!({"@type": "Interface"}),
                &json!({"$inc": {"freq": 1}}),
            )
            .unwrap();
        assert_eq!(n, 2);
        let d = c.find_one(&json!({"name": "cpu0"})).unwrap().unwrap();
        assert_eq!(d["freq"], json!(4.7));
    }

    #[test]
    fn delete_many_removes() {
        let c = filled();
        let n = c.delete_many(&json!({"@type": "Telemetry"})).unwrap();
        assert_eq!(n, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.count(&json!({"@type": "Telemetry"})).unwrap(), 0);
    }

    #[test]
    fn index_is_used_and_stays_consistent() {
        let c = filled();
        c.create_index("@type");
        assert_eq!(c.count(&json!({"@type": "Interface"})).unwrap(), 2);
        // Update moves documents between index keys.
        c.update_many(
            &json!({"name": "cpu1"}),
            &json!({"$set": {"@type": "Retired"}}),
        )
        .unwrap();
        assert_eq!(c.count(&json!({"@type": "Interface"})).unwrap(), 1);
        assert_eq!(c.count(&json!({"@type": "Retired"})).unwrap(), 1);
        // Delete removes from the index.
        c.delete_many(&json!({"@type": "Retired"})).unwrap();
        assert_eq!(c.count(&json!({"@type": "Retired"})).unwrap(), 0);
    }

    #[test]
    fn index_on_id_speeds_duplicate_check() {
        let c = Collection::new("t");
        c.create_index("_id");
        c.insert_one(json!({"_id": "a"})).unwrap();
        assert!(c.insert_one(json!({"_id": "a"})).is_err());
        assert!(c.insert_one(json!({"_id": "b"})).is_ok());
    }
}
