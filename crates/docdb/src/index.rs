//! Hash indexes over dotted document paths.
//!
//! The KB collection is queried heavily by `@id` and `@type`; indexes turn
//! those equality lookups from collection scans into hash probes.

use crate::document::get_path;
use serde_json::Value;
use std::collections::{BTreeSet, HashMap};

/// Index over one dotted path. Values are keyed by their canonical JSON
/// serialization, which is exact for strings/numbers/bools.
#[derive(Debug, Default)]
pub struct PathIndex {
    path: String,
    postings: HashMap<String, BTreeSet<usize>>,
}

impl PathIndex {
    /// New empty index over `path`.
    pub fn new(path: impl Into<String>) -> Self {
        PathIndex {
            path: path.into(),
            postings: HashMap::new(),
        }
    }

    /// Indexed path.
    pub fn path(&self) -> &str {
        &self.path
    }

    fn key_of(value: &Value) -> String {
        value.to_string()
    }

    /// Index a document stored at `slot`.
    pub fn add(&mut self, slot: usize, doc: &Value) {
        if let Some(v) = get_path(doc, &self.path) {
            self.postings
                .entry(Self::key_of(v))
                .or_default()
                .insert(slot);
        }
    }

    /// Remove a document from the index.
    pub fn remove(&mut self, slot: usize, doc: &Value) {
        if let Some(v) = get_path(doc, &self.path) {
            let key = Self::key_of(v);
            if let Some(set) = self.postings.get_mut(&key) {
                set.remove(&slot);
                if set.is_empty() {
                    self.postings.remove(&key);
                }
            }
        }
    }

    /// Slots whose document holds exactly `value` at the indexed path.
    pub fn lookup(&self, value: &Value) -> Option<&BTreeSet<usize>> {
        self.postings.get(&Self::key_of(value))
    }

    /// Number of distinct indexed values.
    pub fn cardinality(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn add_lookup_remove() {
        let mut idx = PathIndex::new("@type");
        idx.add(0, &json!({"@type": "Interface"}));
        idx.add(1, &json!({"@type": "Interface"}));
        idx.add(2, &json!({"@type": "Telemetry"}));
        idx.add(3, &json!({"other": 1})); // no value at path: not indexed
        assert_eq!(idx.lookup(&json!("Interface")).unwrap().len(), 2);
        assert_eq!(idx.lookup(&json!("Telemetry")).unwrap().len(), 1);
        assert!(idx.lookup(&json!("Command")).is_none());
        idx.remove(1, &json!({"@type": "Interface"}));
        assert_eq!(idx.lookup(&json!("Interface")).unwrap().len(), 1);
        assert_eq!(idx.cardinality(), 2);
    }

    #[test]
    fn nested_path_and_numeric_values() {
        let mut idx = PathIndex::new("a.b");
        idx.add(7, &json!({"a": {"b": 42}}));
        assert!(idx.lookup(&json!(42)).unwrap().contains(&7));
        // 42 and 42.0 serialize differently and are distinct keys, documented
        // behaviour of the hash index (range queries bypass indexes anyway).
        assert!(idx.lookup(&json!(42.0)).is_none());
    }
}
