//! Error type for document-database operations.

use std::fmt;

/// Errors produced by the document database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocDbError {
    /// Documents must be JSON objects.
    NotAnObject,
    /// A filter expression was malformed.
    BadFilter(String),
    /// An update expression was malformed.
    BadUpdate(String),
    /// `_id` collision on insert.
    DuplicateId(String),
    /// The durable journal failed (disk error, crash, corruption).
    Storage(String),
}

impl From<pmove_store::StoreError> for DocDbError {
    fn from(e: pmove_store::StoreError) -> Self {
        DocDbError::Storage(e.to_string())
    }
}

impl fmt::Display for DocDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocDbError::NotAnObject => write!(f, "document is not a JSON object"),
            DocDbError::BadFilter(m) => write!(f, "bad filter: {m}"),
            DocDbError::BadUpdate(m) => write!(f, "bad update: {m}"),
            DocDbError::DuplicateId(id) => write!(f, "duplicate _id: {id}"),
            DocDbError::Storage(m) => write!(f, "journal storage error: {m}"),
        }
    }
}

impl std::error::Error for DocDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DocDbError::DuplicateId("x".into())
            .to_string()
            .contains('x'));
        assert!(DocDbError::BadFilter("f".into())
            .to_string()
            .contains("filter"));
    }
}
