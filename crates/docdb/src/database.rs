//! Named databases holding collections, plus JSON snapshot import/export
//! (the stand-in for mongodump/mongorestore used by SUPERDB uploads).

use crate::collection::Collection;
use parking_lot::RwLock;
use pmove_obs::Registry;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A database: a set of named collections.
pub struct Database {
    name: String,
    collections: RwLock<BTreeMap<String, Arc<Collection>>>,
    obs: Option<Arc<Registry>>,
}

impl Database {
    /// New empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            collections: RwLock::new(BTreeMap::new()),
            obs: None,
        }
    }

    /// [`Database::new`] with an observability registry: every collection
    /// created through [`Database::collection`] counts its operations
    /// under `docdb.*`, labelled with the collection name.
    pub fn with_obs(name: impl Into<String>, registry: Arc<Registry>) -> Self {
        let mut db = Database::new(name);
        db.obs = Some(registry);
        db
    }

    /// The attached observability registry, if any.
    pub fn obs_registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref()
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Get or create a collection.
    pub fn collection(&self, name: &str) -> Arc<Collection> {
        let mut cols = self.collections.write();
        cols.entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(match &self.obs {
                    Some(reg) => Collection::with_obs(name, reg),
                    None => Collection::new(name),
                })
            })
            .clone()
    }

    /// Existing collection, if any.
    pub fn get_collection(&self, name: &str) -> Option<Arc<Collection>> {
        self.collections.read().get(name).cloned()
    }

    /// Sorted collection names.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Drop a collection; returns whether it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }

    /// Export everything as one JSON value: `{collection: [docs...]}`.
    pub fn export_snapshot(&self) -> Value {
        let cols = self.collections.read();
        let mut out = serde_json::Map::new();
        for (name, col) in cols.iter() {
            out.insert(name.clone(), json!(col.all()));
        }
        Value::Object(out)
    }

    /// Import a snapshot produced by [`Database::export_snapshot`],
    /// appending to existing collections. Returns documents imported.
    pub fn import_snapshot(&self, snapshot: &Value) -> usize {
        let mut imported = 0;
        if let Some(map) = snapshot.as_object() {
            for (name, docs) in map {
                if let Some(arr) = docs.as_array() {
                    let col = self.collection(name);
                    for doc in arr {
                        if col.insert_one(doc.clone()).is_ok() {
                            imported += 1;
                        }
                    }
                }
            }
        }
        imported
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.name)
            .field("collections", &self.collection_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collections_are_created_on_demand_and_shared() {
        let db = Database::new("st");
        let a = db.collection("kb");
        let b = db.collection("kb");
        a.insert_one(json!({"x": 1})).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(db.collection_names(), vec!["kb".to_string()]);
        assert!(db.get_collection("nosuch").is_none());
    }

    #[test]
    fn drop_collection_removes() {
        let db = Database::new("st");
        db.collection("tmp");
        assert!(db.drop_collection("tmp"));
        assert!(!db.drop_collection("tmp"));
    }

    #[test]
    fn observed_database_counts_collection_ops() {
        let reg = Registry::shared();
        let db = Database::with_obs("st", reg.clone());
        let kb = db.collection("kb");
        kb.insert_one(json!({"x": 1})).unwrap();
        kb.insert_one(json!({"x": 2})).unwrap();
        kb.find(&json!({"x": 1})).unwrap();
        kb.update_many(&json!({"x": 1}), &json!({"$set": {"y": 3}}))
            .unwrap();
        kb.delete_many(&json!({"x": 2})).unwrap();
        let snap = reg.snapshot();
        let labels = [("collection", "kb")];
        assert_eq!(snap.counter("docdb.inserts", &labels), Some(2));
        assert_eq!(snap.counter("docdb.finds", &labels), Some(1));
        assert_eq!(snap.counter("docdb.updates", &labels), Some(1));
        assert_eq!(snap.counter("docdb.deletes", &labels), Some(1));
        assert!(db.obs_registry().is_some());
    }

    #[test]
    fn snapshot_roundtrip() {
        let src = Database::new("src");
        src.collection("kb").insert_one(json!({"a": 1})).unwrap();
        src.collection("obs").insert_one(json!({"b": 2})).unwrap();
        let snap = src.export_snapshot();

        let dst = Database::new("dst");
        let n = dst.import_snapshot(&snap);
        assert_eq!(n, 2);
        assert_eq!(dst.collection("kb").len(), 1);
        assert_eq!(dst.collection("obs").len(), 1);
        // Re-import collides on _id and imports nothing.
        assert_eq!(dst.import_snapshot(&snap), 0);
    }
}
