//! MongoDB-flavoured filter evaluation.
//!
//! A filter is a JSON object. Each key is either a logical operator
//! (`$and`, `$or`, `$not`) or a dotted field path whose value is either a
//! literal (implicit `$eq`) or an object of comparison operators:
//!
//! ```json
//! { "@type": "Interface",
//!   "contents.0.name": { "$contains": "model" },
//!   "$or": [ {"vendor": "intel"}, {"vendor": "amd"} ] }
//! ```

use crate::document::{compare, get_path};
use crate::error::DocDbError;
use serde_json::Value;
use std::cmp::Ordering;

/// Evaluate `filter` against `doc`.
pub fn matches(doc: &Value, filter: &Value) -> Result<bool, DocDbError> {
    let obj = filter
        .as_object()
        .ok_or_else(|| DocDbError::BadFilter("filter must be an object".into()))?;
    for (key, cond) in obj {
        let ok = match key.as_str() {
            "$and" => all_of(doc, cond)?,
            "$or" => any_of(doc, cond)?,
            "$not" => !matches(doc, cond)?,
            path => field_matches(get_path(doc, path), cond)?,
        };
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

fn all_of(doc: &Value, cond: &Value) -> Result<bool, DocDbError> {
    let arr = cond
        .as_array()
        .ok_or_else(|| DocDbError::BadFilter("$and expects an array".into()))?;
    for f in arr {
        if !matches(doc, f)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn any_of(doc: &Value, cond: &Value) -> Result<bool, DocDbError> {
    let arr = cond
        .as_array()
        .ok_or_else(|| DocDbError::BadFilter("$or expects an array".into()))?;
    for f in arr {
        if matches(doc, f)? {
            return Ok(true);
        }
    }
    Ok(false)
}

fn field_matches(actual: Option<&Value>, cond: &Value) -> Result<bool, DocDbError> {
    // Operator object?
    if let Some(ops) = cond.as_object() {
        if ops.keys().any(|k| k.starts_with('$')) {
            for (op, operand) in ops {
                if !apply_op(actual, op, operand)? {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
    }
    // Literal: implicit $eq.
    Ok(match actual {
        Some(v) => v == cond,
        None => cond.is_null(),
    })
}

fn apply_op(actual: Option<&Value>, op: &str, operand: &Value) -> Result<bool, DocDbError> {
    match op {
        "$exists" => {
            let want = operand
                .as_bool()
                .ok_or_else(|| DocDbError::BadFilter("$exists expects a bool".into()))?;
            Ok(actual.is_some() == want)
        }
        "$eq" => {
            Ok(actual.is_some_and(|v| v == operand) || (actual.is_none() && operand.is_null()))
        }
        "$ne" => {
            Ok(!(actual.is_some_and(|v| v == operand) || (actual.is_none() && operand.is_null())))
        }
        "$gt" | "$gte" | "$lt" | "$lte" => {
            let Some(v) = actual else { return Ok(false) };
            let ord = compare(v, operand);
            Ok(match op {
                "$gt" => ord == Ordering::Greater,
                "$gte" => ord != Ordering::Less,
                "$lt" => ord == Ordering::Less,
                "$lte" => ord != Ordering::Greater,
                _ => unreachable!(),
            })
        }
        "$in" => {
            let arr = operand
                .as_array()
                .ok_or_else(|| DocDbError::BadFilter("$in expects an array".into()))?;
            Ok(actual.is_some_and(|v| arr.contains(v)))
        }
        "$nin" => {
            let arr = operand
                .as_array()
                .ok_or_else(|| DocDbError::BadFilter("$nin expects an array".into()))?;
            Ok(!actual.is_some_and(|v| arr.contains(v)))
        }
        "$contains" => {
            let needle = operand
                .as_str()
                .ok_or_else(|| DocDbError::BadFilter("$contains expects a string".into()))?;
            Ok(actual
                .and_then(Value::as_str)
                .is_some_and(|s| s.contains(needle)))
        }
        other => Err(DocDbError::BadFilter(format!("unknown operator {other}"))),
    }
}

/// If the filter is (or contains at top level) a plain equality on a path,
/// return `(path, value)` pairs usable for index lookups.
pub fn equality_constraints(filter: &Value) -> Vec<(String, Value)> {
    let mut out = Vec::new();
    if let Some(obj) = filter.as_object() {
        for (key, cond) in obj {
            if key.starts_with('$') {
                continue;
            }
            match cond {
                Value::Object(ops) => {
                    if let Some(v) = ops.get("$eq") {
                        if ops.len() == 1 {
                            out.push((key.clone(), v.clone()));
                        }
                    }
                }
                literal => out.push((key.clone(), literal.clone())),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc() -> Value {
        json!({
            "@type": "Interface",
            "name": "gpu0",
            "props": {"numa": 0, "mem_mb": 34359},
            "tags": ["gpu", "nvidia"]
        })
    }

    #[test]
    fn implicit_eq() {
        assert!(matches(&doc(), &json!({"@type": "Interface"})).unwrap());
        assert!(!matches(&doc(), &json!({"@type": "Telemetry"})).unwrap());
        assert!(matches(&doc(), &json!({"props.numa": 0})).unwrap());
    }

    #[test]
    fn comparison_ops() {
        assert!(matches(&doc(), &json!({"props.mem_mb": {"$gt": 1000}})).unwrap());
        assert!(matches(&doc(), &json!({"props.mem_mb": {"$gte": 34359}})).unwrap());
        assert!(!matches(&doc(), &json!({"props.mem_mb": {"$lt": 1000}})).unwrap());
        assert!(matches(&doc(), &json!({"props.numa": {"$lte": 0}})).unwrap());
        assert!(matches(&doc(), &json!({"name": {"$ne": "gpu1"}})).unwrap());
    }

    #[test]
    fn membership_and_substring() {
        assert!(matches(&doc(), &json!({"name": {"$in": ["gpu0", "gpu1"]}})).unwrap());
        assert!(matches(&doc(), &json!({"name": {"$nin": ["cpu0"]}})).unwrap());
        assert!(matches(&doc(), &json!({"name": {"$contains": "pu"}})).unwrap());
        assert!(!matches(&doc(), &json!({"props.numa": {"$contains": "0"}})).unwrap());
    }

    #[test]
    fn exists() {
        assert!(matches(&doc(), &json!({"props.numa": {"$exists": true}})).unwrap());
        assert!(matches(&doc(), &json!({"missing": {"$exists": false}})).unwrap());
        assert!(!matches(&doc(), &json!({"missing": {"$exists": true}})).unwrap());
    }

    #[test]
    fn logical_ops() {
        let f = json!({"$or": [{"name": "gpu1"}, {"props.numa": 0}]});
        assert!(matches(&doc(), &f).unwrap());
        let f = json!({"$and": [{"@type": "Interface"}, {"name": "gpu0"}]});
        assert!(matches(&doc(), &f).unwrap());
        let f = json!({"$not": {"name": "gpu0"}});
        assert!(!matches(&doc(), &f).unwrap());
    }

    #[test]
    fn missing_field_matches_null_literal() {
        assert!(matches(&doc(), &json!({"missing": null})).unwrap());
        assert!(matches(&doc(), &json!({"missing": {"$eq": null}})).unwrap());
        assert!(!matches(&doc(), &json!({"missing": {"$gt": 0}})).unwrap());
    }

    #[test]
    fn bad_filters_error() {
        assert!(matches(&doc(), &json!("not an object")).is_err());
        assert!(matches(&doc(), &json!({"$and": 3})).is_err());
        assert!(matches(&doc(), &json!({"x": {"$bogus": 1}})).is_err());
        assert!(matches(&doc(), &json!({"x": {"$in": 3}})).is_err());
        assert!(matches(&doc(), &json!({"x": {"$exists": "yes"}})).is_err());
    }

    #[test]
    fn extracts_equality_constraints() {
        let f = json!({"a": 1, "b": {"$eq": "x"}, "c": {"$gt": 0}, "$or": []});
        let eq = equality_constraints(&f);
        assert_eq!(eq.len(), 2);
        assert!(eq.contains(&("a".to_string(), json!(1))));
        assert!(eq.contains(&("b".to_string(), json!("x"))));
    }
}
