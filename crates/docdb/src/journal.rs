//! Durable document databases: collection mutations journaled through the
//! storage engine's WAL and replayed at open.
//!
//! The knowledge base the paper keeps in MongoDB is small and
//! insert-dominated, so the journal is deliberately simple: an
//! append-only operation log (`docdb-<name>.journal`) with no
//! checkpointing. Every mutation is applied in memory, encoded as a JSON
//! op record, framed and group-committed through [`Wal`]; the write is
//! acknowledged only once the commit syncs. [`DurableDatabase::open`]
//! rebuilds the database by replaying the journal in order — operations
//! are deterministic, so replay reproduces the exact acknowledged state,
//! including auto-assigned `_id`s.

use crate::collection::Collection;
use crate::database::Database;
use crate::error::DocDbError;
use parking_lot::Mutex;
use pmove_obs::{Counter, Registry};
use pmove_store::{Vfs, Wal};
use serde_json::{json, Value};
use std::sync::Arc;

/// I/O granularity used for modeled journal latencies (matches the
/// tsdb store's accounting block size).
const IO_BLOCK_SIZE: u64 = 8192;

/// What replaying the journal at open recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalReport {
    /// Operations replayed into the database.
    pub records_replayed: u64,
    /// Well-formed records whose operation failed to re-apply (should be
    /// zero on an uncorrupted journal).
    pub records_skipped: u64,
    /// Bytes of tail damage discarded by WAL recovery.
    pub bytes_dropped: u64,
    /// Modeled time spent reading the journal, in nanoseconds.
    pub modeled_ns: u64,
}

/// Hoisted `docdb.journal.*` metric handles, labelled by database.
struct JournalObs {
    records_appended: Arc<Counter>,
    commits: Arc<Counter>,
    bytes_committed: Arc<Counter>,
    records_replayed: Arc<Counter>,
}

impl JournalObs {
    fn new(registry: &Registry, db: &str) -> JournalObs {
        let l: &[(&str, &str)] = &[("db", db)];
        JournalObs {
            records_appended: registry.counter("docdb.journal.records_appended", l),
            commits: registry.counter("docdb.journal.commits", l),
            bytes_committed: registry.counter("docdb.journal.bytes_committed", l),
            records_replayed: registry.counter("docdb.journal.records_replayed", l),
        }
    }
}

/// A [`Database`] whose mutations survive restarts.
///
/// Reads go through [`DurableDatabase::db`]; mutations MUST go through
/// the methods here — a mutation applied directly to a collection handle
/// bypasses the journal and will not survive a reopen.
pub struct DurableDatabase {
    db: Arc<Database>,
    wal: Mutex<Wal>,
    obs: Option<JournalObs>,
}

/// Journal file name for database `name`.
fn journal_file(name: &str) -> String {
    format!("docdb-{name}.journal")
}

impl DurableDatabase {
    /// Open (or create) a durable database on `vfs`, replaying any
    /// existing journal.
    pub fn open(
        name: impl Into<String>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(DurableDatabase, JournalReport), DocDbError> {
        Self::open_inner(name.into(), vfs, None)
    }

    /// [`DurableDatabase::open`] with `docdb.*` and `docdb.journal.*`
    /// metrics registered in `registry`.
    pub fn open_with_obs(
        name: impl Into<String>,
        vfs: Arc<dyn Vfs>,
        registry: Arc<Registry>,
    ) -> Result<(DurableDatabase, JournalReport), DocDbError> {
        Self::open_inner(name.into(), vfs, Some(registry))
    }

    fn open_inner(
        name: String,
        vfs: Arc<dyn Vfs>,
        registry: Option<Arc<Registry>>,
    ) -> Result<(DurableDatabase, JournalReport), DocDbError> {
        let obs = registry
            .as_ref()
            .map(|reg| JournalObs::new(reg, name.as_str()));
        let db = Arc::new(match registry {
            Some(reg) => Database::with_obs(name.clone(), reg),
            None => Database::new(name.clone()),
        });
        let (wal, payloads, replay) = Wal::open(vfs.clone(), &journal_file(&name))?;
        let mut report = JournalReport {
            bytes_dropped: replay.bytes_dropped,
            ..JournalReport::default()
        };
        let mut bytes_read = 0u64;
        for payload in &payloads {
            bytes_read += payload.len() as u64 + 8;
            // A payload that deframes but is not valid JSON can only come
            // from a bit flip past the CRC: it and everything after it
            // are discarded, like a CRC failure.
            let Ok(op) = std::str::from_utf8(payload)
                .map_err(|_| ())
                .and_then(|s| serde_json::from_str::<Value>(s).map_err(|_| ()))
            else {
                break;
            };
            match apply_op(&db, &op) {
                Ok(()) => report.records_replayed += 1,
                Err(_) => report.records_skipped += 1,
            }
        }
        report.modeled_ns = (vfs
            .disk_spec()
            .write_time(bytes_read, IO_BLOCK_SIZE as usize)
            * 1e9) as u64;
        if let Some(obs) = &obs {
            obs.records_replayed.add(report.records_replayed);
        }
        Ok((
            DurableDatabase {
                db,
                wal: Mutex::new(wal),
                obs,
            },
            report,
        ))
    }

    /// The underlying database, for reads (`collection`, `find`, exports).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// A shared handle to the underlying database. Callers may read
    /// through it freely; mutations must still go through the journal.
    pub fn shared(&self) -> Arc<Database> {
        self.db.clone()
    }

    /// Database name.
    pub fn name(&self) -> &str {
        self.db.name()
    }

    /// Durable journal size in bytes.
    pub fn journal_size(&self) -> Result<u64, DocDbError> {
        Ok(self.wal.lock().size()?)
    }

    /// Operations made durable since open (excluding replayed ones).
    pub fn journal_records(&self) -> u64 {
        self.wal.lock().durable_records()
    }

    /// Frame `op` and group-commit it; the mutation it describes is
    /// acknowledged only when this returns `Ok`.
    fn log(&self, op: Value) -> Result<(), DocDbError> {
        let payload = serde_json::to_string(&op)
            .expect("op records are plain JSON")
            .into_bytes();
        let mut wal = self.wal.lock();
        wal.append(&payload);
        let info = wal.commit()?;
        if let Some(obs) = &self.obs {
            obs.records_appended.add(info.records);
            obs.commits.inc();
            obs.bytes_committed.add(info.bytes);
        }
        Ok(())
    }

    /// Insert one document into `collection` (journaled). Returns the
    /// assigned `_id`.
    pub fn insert_one(&self, collection: &str, doc: Value) -> Result<String, DocDbError> {
        // Journal the document exactly as stored: `insert_one` only
        // mutates the document when `_id` is absent.
        let mut stored = doc.clone();
        let id = self.db.collection(collection).insert_one(doc)?;
        if stored.get("_id").is_none() {
            stored
                .as_object_mut()
                .expect("insert_one accepted it, so it is an object")
                .insert("_id".into(), json!(id));
        }
        self.log(json!({"op": "insert", "c": collection, "doc": stored}))?;
        Ok(id)
    }

    /// Insert many documents (each journaled); stops at the first error.
    pub fn insert_many<I: IntoIterator<Item = Value>>(
        &self,
        collection: &str,
        docs: I,
    ) -> Result<Vec<String>, DocDbError> {
        docs.into_iter()
            .map(|d| self.insert_one(collection, d))
            .collect()
    }

    /// Update all matching documents (journaled); returns the number
    /// updated.
    pub fn update_many(
        &self,
        collection: &str,
        filter: &Value,
        spec: &Value,
    ) -> Result<usize, DocDbError> {
        let n = self.db.collection(collection).update_many(filter, spec)?;
        self.log(json!({"op": "update", "c": collection, "filter": filter, "spec": spec}))?;
        Ok(n)
    }

    /// Delete all matching documents (journaled); returns the number
    /// deleted.
    pub fn delete_many(&self, collection: &str, filter: &Value) -> Result<usize, DocDbError> {
        let n = self.db.collection(collection).delete_many(filter)?;
        self.log(json!({"op": "delete", "c": collection, "filter": filter}))?;
        Ok(n)
    }

    /// Create a hash index on `collection` over `path` (journaled, so the
    /// index is rebuilt on reopen).
    pub fn create_index(&self, collection: &str, path: &str) -> Result<(), DocDbError> {
        self.db.collection(collection).create_index(path);
        self.log(json!({"op": "index", "c": collection, "path": path}))
    }

    /// Drop a collection (journaled); returns whether it existed.
    pub fn drop_collection(&self, collection: &str) -> Result<bool, DocDbError> {
        let existed = self.db.drop_collection(collection);
        self.log(json!({"op": "drop", "c": collection}))?;
        Ok(existed)
    }
}

impl std::fmt::Debug for DurableDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableDatabase")
            .field("db", &self.db)
            .field("journal_records", &self.journal_records())
            .finish()
    }
}

/// Restore the auto-`_id` counter from a replayed document so fresh
/// inserts never collide with restored ids.
fn note_assigned_id(col: &Collection, doc: &Value) {
    if let Some(id) = doc.get("_id").and_then(Value::as_str) {
        if let Some(hex) = id.strip_prefix("oid") {
            if let Ok(v) = u64::from_str_radix(hex, 16) {
                col.bump_next_id(v + 1);
            }
        }
    }
}

/// Apply one journaled op record to `db`.
fn apply_op(db: &Database, op: &Value) -> Result<(), DocDbError> {
    let kind = op["op"].as_str().unwrap_or_default();
    let name = op["c"].as_str().unwrap_or_default();
    match kind {
        "insert" => {
            let col = db.collection(name);
            note_assigned_id(&col, &op["doc"]);
            col.insert_one(op["doc"].clone())?;
        }
        "update" => {
            db.collection(name)
                .update_many(&op["filter"], &op["spec"])?;
        }
        "delete" => {
            db.collection(name).delete_many(&op["filter"])?;
        }
        "index" => {
            db.collection(name)
                .create_index(op["path"].as_str().unwrap_or_default());
        }
        "drop" => {
            db.drop_collection(name);
        }
        other => {
            return Err(DocDbError::Storage(format!(
                "unknown journal op: {other:?}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_store::{FaultMode, FaultPlan, MemDisk};

    fn disk() -> (Arc<MemDisk>, Arc<dyn Vfs>) {
        let disk = Arc::new(MemDisk::new(7));
        let vfs: Arc<dyn Vfs> = disk.clone();
        (disk, vfs)
    }

    #[test]
    fn reopen_replays_every_acknowledged_op() {
        let (_, vfs) = disk();
        let (db, report) = DurableDatabase::open("kb", vfs.clone()).unwrap();
        assert_eq!(report, JournalReport::default());
        db.create_index("twins", "@type").unwrap();
        db.insert_many(
            "twins",
            [
                json!({"@type": "Interface", "name": "cpu0", "freq": 3.7}),
                json!({"@type": "Interface", "name": "cpu1", "freq": 2.7}),
                json!({"@type": "Telemetry", "name": "metric4"}),
            ],
        )
        .unwrap();
        db.insert_one("scratch", json!({"tmp": true})).unwrap();
        db.update_many(
            "twins",
            &json!({"@type": "Interface"}),
            &json!({"$inc": {"freq": 1.0}}),
        )
        .unwrap();
        db.delete_many("twins", &json!({"name": "metric4"}))
            .unwrap();
        db.drop_collection("scratch").unwrap();
        let before = db.db().export_snapshot();
        drop(db);

        let (db2, report) = DurableDatabase::open("kb", vfs).unwrap();
        assert_eq!(report.records_replayed, 8);
        assert_eq!(report.records_skipped, 0);
        assert_eq!(report.bytes_dropped, 0);
        assert!(report.modeled_ns > 0);
        assert_eq!(db2.db().export_snapshot(), before);
        // The rebuilt index answers equality queries.
        assert_eq!(
            db2.db()
                .collection("twins")
                .count(&json!({"@type": "Interface"}))
                .unwrap(),
            2
        );
        let d = db2
            .db()
            .collection("twins")
            .find_one(&json!({"name": "cpu0"}))
            .unwrap()
            .unwrap();
        assert_eq!(d["freq"], json!(4.7));
    }

    #[test]
    fn auto_id_counter_survives_reopen() {
        let (_, vfs) = disk();
        let (db, _) = DurableDatabase::open("kb", vfs.clone()).unwrap();
        let a = db.insert_one("c", json!({"x": 1})).unwrap();
        drop(db);
        let (db2, _) = DurableDatabase::open("kb", vfs).unwrap();
        let b = db2.insert_one("c", json!({"x": 2})).unwrap();
        assert_ne!(a, b, "restored counter must not re-issue {a}");
        assert_eq!(db2.db().collection("c").len(), 2);
    }

    #[test]
    fn unacknowledged_op_is_absent_after_crash() {
        let (disk, vfs) = disk();
        let (db, _) = DurableDatabase::open("kb", vfs.clone()).unwrap();
        db.insert_one("c", json!({"n": 1})).unwrap();
        // Crash on the very next disk operation (the append of op 2).
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 1,
            mode: FaultMode::CleanStop,
        });
        let err = db.insert_one("c", json!({"n": 2})).unwrap_err();
        assert!(matches!(err, DocDbError::Storage(_)));
        drop(db);

        disk.restart();
        let (db2, report) = DurableDatabase::open("kb", vfs).unwrap();
        assert_eq!(report.records_replayed, 1);
        let docs = db2.db().collection("c").all();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0]["n"], json!(1));
    }

    #[test]
    fn torn_tail_loses_only_the_unacknowledged_suffix() {
        let (disk, vfs) = disk();
        let (db, _) = DurableDatabase::open("kb", vfs.clone()).unwrap();
        db.insert_one("c", json!({"n": 1})).unwrap();
        db.insert_one("c", json!({"n": 2})).unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 2, // the sync inside commit
            mode: FaultMode::TornTail,
        });
        assert!(db.insert_one("c", json!({"n": 3})).is_err());
        drop(db);

        disk.restart();
        let (db2, _) = DurableDatabase::open("kb", vfs.clone()).unwrap();
        assert_eq!(db2.db().collection("c").len(), 2);
        // And the repaired journal keeps accepting writes.
        db2.insert_one("c", json!({"n": 4})).unwrap();
        drop(db2);
        let (db3, _) = DurableDatabase::open("kb", vfs).unwrap();
        assert_eq!(db3.db().collection("c").len(), 3);
    }

    #[test]
    fn torn_write_mid_append_replays_prefix_and_reaccepts_writes() {
        // Tear the disk while the appended frame is being persisted, so
        // an arbitrary prefix of the in-flight record reaches the
        // platter. Recovery must replay exactly the acknowledged ops
        // (plus the torn op only if every one of its bytes happened to
        // land), drop the damaged tail, and leave the journal
        // appendable. The MemDisk seed decides how many in-flight bytes
        // survive, so a sweep covers empty, partial, and complete tails.
        let mut torn_cases = 0u64;
        for seed in 0..16u64 {
            let disk = Arc::new(MemDisk::new(seed));
            let vfs: Arc<dyn Vfs> = disk.clone();
            let (db, _) = DurableDatabase::open("kb", vfs.clone()).unwrap();
            db.insert_one("c", json!({"n": 1})).unwrap();
            db.insert_one("c", json!({"n": 2})).unwrap();
            disk.schedule_fault(FaultPlan {
                crash_at_op: disk.ops_done() + 2, // mid-persist of the frame
                mode: FaultMode::TornTail,
            });
            assert!(db.insert_one("c", json!({"n": 3})).is_err());
            drop(db);

            disk.restart();
            let (db2, report) = DurableDatabase::open("kb", vfs.clone()).unwrap();
            let docs = db2.db().collection("c").all();
            // A clean prefix: both acked docs, the torn one only if its
            // frame survived whole — never a partial or garbled record.
            assert!(
                (2..=3).contains(&docs.len()),
                "seed {seed}: {} docs recovered",
                docs.len()
            );
            for (i, d) in docs.iter().enumerate() {
                assert_eq!(d["n"], json!(i + 1), "seed {seed}: replay out of order");
            }
            assert_eq!(report.records_replayed, docs.len() as u64);
            assert_eq!(report.records_skipped, 0);
            if report.bytes_dropped > 0 {
                torn_cases += 1;
                assert_eq!(
                    docs.len(),
                    2,
                    "seed {seed}: dropped bytes yet replayed the torn op"
                );
            }
            // The rewritten journal is clean and keeps accepting writes.
            db2.insert_one("c", json!({"n": docs.len() + 1})).unwrap();
            drop(db2);
            let (db3, report3) = DurableDatabase::open("kb", vfs).unwrap();
            assert_eq!(
                report3.bytes_dropped, 0,
                "seed {seed}: damage survived recovery"
            );
            assert_eq!(db3.db().collection("c").len(), docs.len() + 1);
        }
        assert!(
            torn_cases > 0,
            "sweep never produced a genuinely torn frame"
        );
    }

    #[test]
    fn journal_metrics_are_exported() {
        let (_, vfs) = disk();
        let reg = Registry::shared();
        let (db, _) = DurableDatabase::open_with_obs("kb", vfs.clone(), reg.clone()).unwrap();
        db.insert_one("c", json!({"x": 1})).unwrap();
        db.insert_one("c", json!({"x": 2})).unwrap();
        drop(db);
        let reg2 = Registry::shared();
        let (_db2, _) = DurableDatabase::open_with_obs("kb", vfs, reg2.clone()).unwrap();
        let l = [("db", "kb")];
        let snap = reg.snapshot();
        assert_eq!(snap.counter("docdb.journal.records_appended", &l), Some(2));
        assert_eq!(snap.counter("docdb.journal.commits", &l), Some(2));
        assert!(snap.counter("docdb.journal.bytes_committed", &l).unwrap() > 0);
        let snap2 = reg2.snapshot();
        assert_eq!(snap2.counter("docdb.journal.records_replayed", &l), Some(2));
        // Replayed inserts count as collection ops on the fresh registry.
        assert_eq!(
            snap2.counter("docdb.inserts", &[("collection", "c")]),
            Some(2)
        );
    }

    #[test]
    fn two_databases_share_a_disk_without_colliding() {
        let (_, vfs) = disk();
        let (a, _) = DurableDatabase::open("alpha", vfs.clone()).unwrap();
        let (b, _) = DurableDatabase::open("beta", vfs.clone()).unwrap();
        a.insert_one("c", json!({"who": "a"})).unwrap();
        b.insert_one("c", json!({"who": "b"})).unwrap();
        drop((a, b));
        let (a2, _) = DurableDatabase::open("alpha", vfs.clone()).unwrap();
        let (b2, _) = DurableDatabase::open("beta", vfs).unwrap();
        assert_eq!(a2.db().collection("c").all()[0]["who"], json!("a"));
        assert_eq!(b2.db().collection("c").all()[0]["who"], json!("b"));
    }
}
