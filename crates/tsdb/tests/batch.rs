//! Differential harness: the columnar batched write path vs row-at-a-time
//! ingest.
//!
//! Random point streams — multi-field points, duplicate timestamps (last
//! write wins), NaN/±0.0/±inf payloads, interleaved measurements, and an
//! ingest limiter tight enough to reject some of the stream — are pushed
//! through `Database::write_batch` under random batch chunkings and through
//! per-point `Database::write_point` calls. The two databases must then be
//! observationally identical **bit for bit**:
//!
//! * every stored cell (`for_each_cell` walk, `f64::to_bits` rendering);
//! * query results across modes (the Fig. 9 surface);
//! * the `IngestStats` ledger the Table III reproduction reads
//!   (`points_offered`/`inserted`/`values`/`zeros`/`rejected`);
//! * per-point accept/reject outcomes in arrival order;
//! * the subscription stream dashboards consume.
//!
//! `PMOVE_BATCH_CASES` overrides the case count (default 192).

use pmove_tsdb::subscribe::{drain, Subscription};
use pmove_tsdb::{
    BatchOutcome, Database, ExecMode, FieldValue, IngestLimiter, Point, Query, QueryResult,
    TsdbError,
};
use proptest::prelude::*;

const MEASUREMENTS: [&str; 2] = ["m", "n"];
const FIELDS: [&str; 3] = ["value", "aux", "gap"];

fn batch_cases() -> u32 {
    std::env::var("PMOVE_BATCH_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(192)
}

/// Decode a value code into an f64, covering the awkward surface.
fn value_of(code: u32) -> f64 {
    match code {
        0..=899 => (code as f64 - 450.0) * 1.372_251,
        900..=924 => 0.0,
        925..=949 => -0.0,
        950..=964 => f64::INFINITY,
        965..=979 => f64::NEG_INFINITY,
        _ => f64::NAN,
    }
}

/// ((measurement, host, ts, field), (value code, extra-field code — 1000
/// for single-field, shape code — 0 of 0..20 marks an empty-fields point))
type PointCode = ((usize, usize, i64, usize), (u32, u32, u32));

fn point_of(&((m, h, ts, f), (code, extra, shape)): &PointCode) -> Point {
    let mut p = Point::new(MEASUREMENTS[m % MEASUREMENTS.len()])
        .tag("host", format!("h{h}"))
        .timestamp(ts);
    if shape == 0 {
        return p; // exercises the EmptyFields reject path
    }
    p = p.field(FIELDS[f % FIELDS.len()], FieldValue::Float(value_of(code)));
    if extra < 1000 {
        p = p.field(
            FIELDS[(f + 1) % FIELDS.len()],
            FieldValue::Float(value_of(extra)),
        );
    }
    p
}

/// Canonical, bit-exact rendering of a query outcome.
fn outcome(r: Result<QueryResult, TsdbError>) -> String {
    use std::fmt::Write as _;
    match r {
        Err(e) => format!("error: {e:?}"),
        Ok(res) => {
            let mut s = format!("columns={:?}\n", res.columns);
            for row in &res.rows {
                let _ = write!(s, "{}:", row.timestamp);
                for (k, v) in &row.values {
                    match v {
                        Some(x) => {
                            let _ = write!(s, " {k}={:016x}", x.to_bits());
                        }
                        None => {
                            let _ = write!(s, " {k}=null");
                        }
                    }
                }
                s.push('\n');
            }
            s
        }
    }
}

/// Bit-exact rendering of every stored cell, in the deterministic
/// Merkle-walk order.
fn cells(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    db.for_each_cell(&mut |key, ts, field, value| {
        let v = match value {
            FieldValue::Float(x) => format!("{:016x}", x.to_bits()),
            other => format!("{other:?}"),
        };
        let _ = writeln!(s, "{} {ts} {field}={v}", key.canonical());
    });
    s
}

fn rendered_points(points: &[Point]) -> String {
    points
        .iter()
        .map(|p| format!("{p:?}"))
        .collect::<Vec<_>>()
        .join("\n")
}

const QUERIES: [&str; 6] = [
    "SELECT * FROM \"m\"",
    "SELECT * FROM \"n\" WHERE host='h1'",
    "SELECT min(\"value\"), max(\"value\"), count(\"value\") FROM \"m\" GROUP BY time(7)",
    "SELECT sum(\"aux\"), last(\"aux\") FROM \"m\" WHERE time >= 3 AND time < 90 GROUP BY time(5)",
    "SELECT first(\"value\"), count(\"gap\") FROM \"n\" GROUP BY time(13)",
    "SELECT mean(\"value\") FROM \"m\" WHERE host='h0' GROUP BY time(11)",
];

fn check_case(stream: &[PointCode], chunks: &[u8], limited: bool) {
    let row_db = Database::new("row");
    let batch_db = Database::new("batch");
    if limited {
        // Tight enough that real streams overflow some windows; keyed on
        // point timestamps, so queue-delay cannot change admission.
        row_db.set_ingest_limiter(IngestLimiter::per_window(16, 6));
        batch_db.set_ingest_limiter(IngestLimiter::per_window(16, 6));
    }
    let row_rx = row_db.subscribe(Subscription::all());
    let batch_rx = batch_db.subscribe(Subscription::all());

    // Row-at-a-time reference: per-point accept/reject outcomes.
    let mut row_results: Vec<bool> = Vec::new();
    for code in stream {
        row_results.push(row_db.write_point(point_of(code)).is_ok());
    }

    // Batched subject: the same stream, random chunk boundaries.
    let mut batch_results: Vec<bool> = Vec::new();
    let mut it = stream.iter();
    let mut chunk_sizes = chunks.iter().cycle();
    loop {
        let take = (*chunk_sizes.next().unwrap() as usize % 7) + 1;
        let chunk: Vec<Point> = it.by_ref().take(take).map(point_of).collect();
        if chunk.is_empty() {
            break;
        }
        let BatchOutcome { results, .. } = batch_db.write_batch(chunk).unwrap();
        batch_results.extend(results.iter().map(Result::is_ok));
    }

    assert_eq!(
        batch_results, row_results,
        "per-point accept/reject outcomes diverged"
    );
    assert_eq!(
        batch_db.stats(),
        row_db.stats(),
        "IngestStats ledger diverged (Table III surface)"
    );
    assert_eq!(cells(&batch_db), cells(&row_db), "stored cells diverged");
    assert_eq!(
        rendered_points(&drain(&batch_rx)),
        rendered_points(&drain(&row_rx)),
        "subscription stream diverged"
    );

    for text in QUERIES {
        let q = Query::parse(text).unwrap();
        for mode in [ExecMode::Sequential, ExecMode::Parallel(4)] {
            assert_eq!(
                outcome(batch_db.query_with_mode(&q, mode)),
                outcome(row_db.query_with_mode(&q, mode)),
                "query diverged in {mode:?}: {text}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(batch_cases()))]

    #[test]
    fn batch_ingest_is_bit_identical_to_row_at_a_time(
        stream in prop::collection::vec(
            ((0usize..2, 0usize..4, 0i64..160, 0usize..3),
             (0u32..1000, 0u32..2000, 0u32..20)),
            1..160,
        ),
        chunks in prop::collection::vec(0u8..255, 1..12),
        limited in any::<bool>(),
    ) {
        check_case(&stream, &chunks, limited);
    }
}

/// Deterministic pin: duplicate timestamps inside one batch merge
/// last-write-wins exactly as sequential writes do, including across
/// series and fields.
#[test]
fn duplicate_timestamps_in_one_batch_are_lww() {
    let stream: Vec<PointCode> = vec![
        ((0, 0, 10, 0), (100, 1000, 1)),
        ((0, 0, 10, 0), (200, 1000, 1)), // same cell, later in arrival
        ((0, 0, 10, 1), (300, 1000, 1)), // same ts, different field: merge
        ((0, 1, 10, 0), (999, 1000, 1)), // NaN in a different series
        ((0, 0, 10, 0), (925, 1000, 1)), // final winner: -0.0
    ];
    check_case(&stream, &[4], false);
}

/// Deterministic pin: a batch overflowing a limiter window rejects
/// exactly the points the row-at-a-time path rejects, and the retry of
/// the rejected tail in a later window is accepted by both.
#[test]
fn limiter_rejections_match_row_path() {
    let mut stream: Vec<PointCode> = (0..12)
        .map(|i| ((0, 0, i % 4, 0), (100 + i as u32, 1000, 1)))
        .collect();
    // Later window: retries land cleanly.
    stream.extend((0..4).map(|i| ((0, 0, 100 + i, 0), (700 + i as u32, 1000, 1))));
    check_case(&stream, &[6, 2, 9], true);
}

/// An empty batch is a no-op with a well-formed outcome.
#[test]
fn empty_batch_is_a_no_op() {
    let db = Database::new("empty");
    let out = db.write_batch(Vec::new()).unwrap();
    assert!(out.all_accepted());
    assert_eq!(out.accepted, 0);
    assert_eq!(out.series, 0);
    assert_eq!(db.stats().points_offered, 0);
}
