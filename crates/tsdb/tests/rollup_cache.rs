//! Query-cache freshness under rollup materialization.
//!
//! The LRU query cache validates entries against a per-measurement write
//! version. A rollup tick changes how aggregate queries over a
//! measurement are *served* — buckets that fell back to raw scans while
//! dirty are served from tier cells afterwards — so the tick must bump
//! the version of every measurement it materialized, exactly as
//! `apply_remote` must for replicated writes (see `repl_cache.rs`).
//! Serving is bit-identical either way, but a stale entry would pin the
//! pre-tick routing stats and, worse, outlive a later tier rewrite.

use pmove_tsdb::{Database, ExecMode, FieldValue, Point, RollupConfig};

fn point(ts: i64, v: f64) -> Point {
    Point::new("m")
        .tag("tag", "x")
        .field("f", FieldValue::Float(v))
        .timestamp(ts)
}

#[test]
fn rollup_tick_bumps_the_write_version() {
    let db = Database::new("r");
    db.enable_rollups(RollupConfig::with_tiers(&[10]));
    db.write_point(point(5, 1.25)).unwrap();
    let v0 = db.write_version("m");
    let report = db.rollup_tick().unwrap();
    assert!(report.buckets_materialized > 0, "tick had nothing to do");
    assert!(
        db.write_version("m") > v0,
        "rollup tick left the write version stale"
    );
}

#[test]
fn idle_tick_bumps_nothing() {
    let db = Database::new("r");
    db.enable_rollups(RollupConfig::with_tiers(&[10]));
    db.write_point(point(5, 1.25)).unwrap();
    db.rollup_tick().unwrap();
    let v0 = db.write_version("m");
    let report = db.rollup_tick().unwrap();
    assert_eq!(report.buckets_materialized, 0);
    assert_eq!(
        db.write_version("m"),
        v0,
        "idle tick must not churn cached entries"
    );
}

#[test]
fn cached_aggregates_stay_bit_identical_across_ticks() {
    let db = Database::new("r");
    db.set_exec_mode(ExecMode::Parallel(4));
    db.enable_rollups(RollupConfig::with_tiers(&[10]));
    for ts in 0..30 {
        db.write_point(point(ts, ts as f64 * 0.5)).unwrap();
    }

    // Populate the cache while the tiers are still dirty (raw fallback).
    let q = "SELECT count(\"f\"), max(\"f\") FROM \"m\" GROUP BY time(10)";
    let before = db.query(q).unwrap();
    assert!(db.query_cache_len() > 0, "query was not cached");

    // The tick re-routes the same query to tier cells; the cached raw
    // result must be invalidated, and the fresh result bit-identical.
    db.rollup_tick().unwrap();
    let after = db.query(q).unwrap();
    assert_eq!(before.columns, after.columns);
    assert_eq!(before.rows.len(), after.rows.len());
    for (b, a) in before.rows.iter().zip(&after.rows) {
        assert_eq!(b.timestamp, a.timestamp);
        for (k, v) in &b.values {
            assert_eq!(
                v.map(f64::to_bits),
                a.values[k].map(f64::to_bits),
                "tier-served {k} diverged at {}",
                b.timestamp
            );
        }
    }
}
