//! Differential harness: the parallel sharded executor vs the sequential
//! reference oracle.
//!
//! Random corpora (including NaN, ±0.0, ±inf values and sparse series) and
//! random queries (raw scans, every aggregate, group-by windows, tag
//! filters, empty/inverted time windows, unknown measurements) are run
//! through `ExecMode::Sequential` and through `ExecMode::Parallel` at 1, 2,
//! and 8 threads, with the query cache disabled and enabled. Results are
//! compared *bit-for-bit* (`f64::to_bits`, so NaN payloads and signed
//! zeros count), errors included. Cached configurations run every query
//! twice (the second serves from cache) and re-run after an interleaved
//! write (the cache must invalidate).
//!
//! `PMOVE_DIFF_CASES` overrides the case count (default 256).

use pmove_tsdb::aggregate::AggregateFn;
use pmove_tsdb::query::Projection;
use pmove_tsdb::{Database, ExecMode, Point, Query, QueryResult, TsdbError};
use proptest::prelude::*;

const FIELDS: [&str; 3] = ["value", "aux", "gap"];

fn diff_cases() -> u32 {
    std::env::var("PMOVE_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Decode a value code into an f64, covering the full awkward surface.
fn value_of(code: u32) -> f64 {
    match code {
        0..=899 => (code as f64 - 450.0) * 1.372_251, // finite, non-integral
        900..=924 => 0.0,
        925..=949 => -0.0,
        950..=964 => f64::INFINITY,
        965..=979 => f64::NEG_INFINITY,
        _ => f64::NAN,
    }
}

/// Decode a projection code; `field` indexes [`FIELDS`].
fn projection_of(kind: u8, field: u8) -> Projection {
    let f = FIELDS[field as usize % FIELDS.len()].to_string();
    match kind {
        0 => Projection::Wildcard,
        1 | 11 => Projection::Field(f),
        2 => Projection::Aggregate(AggregateFn::Min, f),
        3 => Projection::Aggregate(AggregateFn::Max, f),
        4 => Projection::Aggregate(AggregateFn::Mean, f),
        5 => Projection::Aggregate(AggregateFn::Sum, f),
        6 => Projection::Aggregate(AggregateFn::Count, f),
        7 => Projection::Aggregate(AggregateFn::Stddev, f),
        8 => Projection::Aggregate(AggregateFn::First, f),
        9 => Projection::Aggregate(AggregateFn::Last, f),
        _ => Projection::Aggregate(AggregateFn::Median, f),
    }
}

type ProjCode = (u8, u8);
type QueryCode = ((Vec<ProjCode>, u8), (u16, u16, u8));

/// Decode one generated query.
fn query_of(((projs, tagsel), (t0, t1, bucket)): &QueryCode) -> Query {
    let projections: Vec<Projection> = projs.iter().map(|&(k, f)| projection_of(k, f)).collect();
    let tag_filters = match tagsel {
        0..=5 => vec![("host".to_string(), format!("h{tagsel}"))],
        6 => Vec::new(),
        _ => vec![("host".to_string(), "h99".to_string())], // no match
    };
    Query {
        projections,
        // One code point targets a measurement that never exists, so the
        // error paths are differentially pinned too.
        measurement: if *t0 == 299 {
            "ghost".into()
        } else {
            "m".into()
        },
        tag_filters,
        time_start: (*t0 < 240).then(|| *t0 as i64 - 20),
        time_end: (*t1 < 240).then(|| *t1 as i64 - 20),
        group_by_time: (*bucket < 40).then(|| *bucket as i64 + 1),
    }
}

/// Canonical, bit-exact rendering of a query outcome.
fn outcome(r: Result<QueryResult, TsdbError>) -> String {
    use std::fmt::Write as _;
    match r {
        Err(e) => format!("error: {e:?}"),
        Ok(res) => {
            let mut s = format!("columns={:?}\n", res.columns);
            for row in &res.rows {
                let _ = write!(s, "{}:", row.timestamp);
                for (k, v) in &row.values {
                    match v {
                        Some(x) => {
                            let _ = write!(s, " {k}={:016x}", x.to_bits());
                        }
                        None => {
                            let _ = write!(s, " {k}=null");
                        }
                    }
                }
                s.push('\n');
            }
            s
        }
    }
}

fn db(mode: ExecMode, cache: bool) -> Database {
    let d = Database::new("diff");
    d.set_exec_mode(mode);
    d.set_query_cache_capacity(if cache { 64 } else { 0 });
    d
}

fn point(host: usize, ts: i64, field: usize, value: f64) -> Point {
    Point::new("m")
        .tag("host", format!("h{host}"))
        .field(FIELDS[field % FIELDS.len()], value)
        .timestamp(ts)
}

type PointCode = (usize, i64, usize, u32);

fn check_case(points: &[PointCode], queries: &[QueryCode], extra: PointCode) {
    let queries: Vec<Query> = queries.iter().map(query_of).collect();
    // `percentile` (Median) has no defined NaN ordering — the oracle
    // panics on it — so NaN-bearing corpora and Median are mutually
    // exclusive; every other special value stays in play.
    let has_median = queries.iter().any(|q| {
        q.projections
            .iter()
            .any(|p| matches!(p, Projection::Aggregate(AggregateFn::Median, _)))
    });
    let fix = |code: u32| {
        let v = value_of(code);
        if has_median && v.is_nan() {
            4.25e2
        } else {
            v
        }
    };

    let oracle = db(ExecMode::Sequential, false);
    let subjects: Vec<(Database, bool)> = [1usize, 2, 8]
        .iter()
        .flat_map(|&t| {
            [false, true]
                .iter()
                .map(move |&c| (db(ExecMode::Parallel(t), c), c))
        })
        .collect();

    for &(h, ts, f, code) in points {
        oracle.write_point(point(h, ts, f, fix(code))).unwrap();
        for (s, _) in &subjects {
            s.write_point(point(h, ts, f, fix(code))).unwrap();
        }
    }

    // Phase A: identical cold, and identical served from cache.
    for q in &queries {
        let want = outcome(oracle.query_parsed(q));
        for (s, cached) in &subjects {
            assert_eq!(
                outcome(s.query_parsed(q)),
                want,
                "mode {:?} cache={cached} query {}",
                s.exec_mode(),
                q.normalized()
            );
            assert_eq!(
                outcome(s.query_parsed(q)),
                want,
                "repeat (cache hit) diverged: mode {:?} cache={cached} query {}",
                s.exec_mode(),
                q.normalized()
            );
        }
    }

    // Phase B: a write lands; cached entries must not serve stale rows.
    let (h, ts, f, code) = extra;
    oracle.write_point(point(h, ts, f, fix(code))).unwrap();
    for (s, _) in &subjects {
        s.write_point(point(h, ts, f, fix(code))).unwrap();
    }
    for q in &queries {
        let want = outcome(oracle.query_parsed(q));
        for (s, cached) in &subjects {
            assert_eq!(
                outcome(s.query_parsed(q)),
                want,
                "post-write mode {:?} cache={cached} query {}",
                s.exec_mode(),
                q.normalized()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential(
        points in prop::collection::vec((0usize..6, 0i64..200, 0usize..3, 0u32..1000), 1..120),
        queries in prop::collection::vec(
            (
                (prop::collection::vec((0u8..12, 0u8..3), 1..4), 0u8..8),
                (0u16..300, 0u16..300, 0u8..60),
            ),
            1..5,
        ),
        extra in (0usize..6, 0i64..220, 0usize..3, 0u32..900),
    ) {
        check_case(&points, &queries, extra);
    }
}

/// Deterministic pin: an all-NaN window, a NaN-poisoned sum, signed
/// zeros, and infinities agree bit-for-bit across every mode.
#[test]
fn nan_and_signed_zero_windows_are_bit_identical() {
    let points: Vec<PointCode> = vec![
        (0, 0, 0, 999), // NaN
        (0, 1, 0, 999), // NaN (all-NaN bucket with bucket=2)
        (1, 0, 0, 930), // -0.0
        (2, 0, 0, 910), // 0.0
        (3, 5, 0, 950), // +inf
        (3, 6, 0, 970), // -inf (inf + -inf = NaN in sums)
        (4, 9, 1, 100), // finite, different field
    ];
    let queries: Vec<QueryCode> = vec![
        (
            (vec![(2, 0), (3, 0), (5, 0), (4, 0), (7, 0)], 6),
            (280, 280, 2),
        ),
        ((vec![(6, 0), (8, 0), (9, 0)], 6), (280, 280, 1)),
        ((vec![(0, 0)], 6), (280, 280, 59)),
        ((vec![(1, 0)], 2), (280, 280, 59)),
    ];
    check_case(&points, &queries, (5, 3, 0, 400));
}

/// Deterministic pin: inverted and out-of-range windows (zero matching
/// rows) produce identical shapes in every mode, cached or not.
#[test]
fn empty_windows_are_bit_identical() {
    let points: Vec<PointCode> = vec![(0, 10, 0, 100), (1, 11, 0, 200), (2, 12, 2, 300)];
    let queries: Vec<QueryCode> = vec![
        // time >= 180 (code 200): beyond all data.
        ((vec![(1, 0), (4, 0)], 6), (200, 280, 5)),
        // Inverted: start 80 (code 100), end -20 (code 0).
        ((vec![(5, 0)], 6), (100, 0, 59)),
        // Unknown measurement error path.
        ((vec![(1, 0)], 6), (299, 280, 59)),
    ];
    check_case(&points, &queries, (0, 13, 0, 500));
}
