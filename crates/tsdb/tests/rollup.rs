//! Differential harness: aggregate queries served from rollup tiers vs
//! the raw-scan oracle.
//!
//! Random point streams (NaN payloads, signed zeros, infinities, duplicate
//! timestamps, multiple measurements) are interleaved with rollup ticks at
//! random positions, and aggregate queries (`sum`/`count`/`min`/`max`/
//! `first`/`last`, tier-aligned and unaligned windows, single- and
//! multi-series filters) run at 1, 2, and 8 threads against a
//! rollup-enabled database. Every result must be **bit-identical**
//! (`f64::to_bits`) to a plain database running the sequential reference
//! oracle — whether the touched buckets were materialized, still dirty
//! (raw fallback), or half-and-half. After a final tick the widened
//! conservation audit must balance: every raw row accounted in every tier.
//!
//! `PMOVE_ROLLUP_CASES` overrides the case count (default 128).

use pmove_obs::Registry;
use pmove_tsdb::{
    Database, ExecMode, FieldValue, Point, Query, QueryResult, RollupConfig, TsdbError,
};
use proptest::prelude::*;

const FIELDS: [&str; 2] = ["value", "aux"];
/// Tier intervals in raw timestamp units: queries bucketed by a multiple
/// of 5 or 20 can route; others fall back to raw scans.
const TIERS: [i64; 2] = [5, 20];

fn rollup_cases() -> u32 {
    std::env::var("PMOVE_ROLLUP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Decode a value code into an f64, covering the awkward surface.
fn value_of(code: u32) -> f64 {
    match code {
        0..=899 => (code as f64 - 450.0) * 1.372_251,
        900..=924 => 0.0,
        925..=949 => -0.0,
        950..=964 => f64::INFINITY,
        965..=979 => f64::NEG_INFINITY,
        _ => f64::NAN,
    }
}

/// ((host, ts, field), (value code, tick-before flag of 0..8))
type PointCode = ((usize, i64, usize), (u32, u32));

fn point_of(&((h, ts, f), (code, _)): &PointCode) -> Point {
    Point::new("m")
        .tag("host", format!("h{h}"))
        .field(FIELDS[f % FIELDS.len()], FieldValue::Float(value_of(code)))
        .timestamp(ts)
}

/// (aggregate code, field, host selector, bucket code)
type QueryCode = (u8, u8, u8, u8);

fn query_of(&(agg, field, host, bucket): &QueryCode) -> Query {
    let f = FIELDS[field as usize % FIELDS.len()];
    let agg = match agg % 6 {
        0 => "sum",
        1 => "count",
        2 => "min",
        3 => "max",
        4 => "first",
        _ => "last",
    };
    // Buckets: tier-aligned (5, 20, 40, 100) and unaligned (7, 13).
    let b = [5i64, 20, 40, 100, 7, 13][bucket as usize % 6];
    let filter = match host {
        0..=3 => format!(" WHERE host='h{host}'"),
        _ => String::new(),
    };
    Query::parse(&format!(
        "SELECT {agg}(\"{f}\") FROM \"m\"{filter} GROUP BY time({b})"
    ))
    .unwrap()
}

/// Canonical, bit-exact rendering of a query outcome.
fn outcome(r: Result<QueryResult, TsdbError>) -> String {
    use std::fmt::Write as _;
    match r {
        Err(e) => format!("error: {e:?}"),
        Ok(res) => {
            let mut s = format!("columns={:?}\n", res.columns);
            for row in &res.rows {
                let _ = write!(s, "{}:", row.timestamp);
                for (k, v) in &row.values {
                    match v {
                        Some(x) => {
                            let _ = write!(s, " {k}={:016x}", x.to_bits());
                        }
                        None => {
                            let _ = write!(s, " {k}=null");
                        }
                    }
                }
                s.push('\n');
            }
            s
        }
    }
}

fn check_case(stream: &[PointCode], queries: &[QueryCode]) {
    let oracle = Database::new("oracle");
    oracle.set_exec_mode(ExecMode::Sequential);
    oracle.set_query_cache_capacity(0);

    let subjects: Vec<Database> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            let d = Database::new("rollup");
            d.set_exec_mode(ExecMode::Parallel(t));
            d.set_query_cache_capacity(0);
            d.enable_rollups(RollupConfig::with_tiers(&TIERS));
            d
        })
        .collect();
    let queries: Vec<Query> = queries.iter().map(query_of).collect();

    let compare = |stage: &str| {
        for q in &queries {
            let want = outcome(oracle.query_parsed(q));
            for s in &subjects {
                assert_eq!(
                    outcome(s.query_parsed(q)),
                    want,
                    "{stage}: mode {:?} query {}",
                    s.exec_mode(),
                    q.normalized()
                );
            }
        }
    };

    // Interleave writes with ticks at random positions; the tiers are
    // dirty, fresh, or mixed at every comparison point.
    for (i, code) in stream.iter().enumerate() {
        let ((_, _, _), (_, tick)) = code;
        if *tick == 0 {
            for s in &subjects {
                s.rollup_tick().unwrap();
            }
        }
        oracle.write_point(point_of(code)).unwrap();
        for s in &subjects {
            s.write_point(point_of(code)).unwrap();
        }
        if i == stream.len() / 2 {
            compare("mid-stream");
        }
    }
    compare("pre-tick");
    for s in &subjects {
        s.rollup_tick().unwrap();
    }
    compare("post-tick");

    // Conservation through the rollup path: with every dirty bucket
    // drained, each tier accounts for every raw row exactly.
    for s in &subjects {
        let audit = s.rollup_audit().unwrap();
        assert!(
            audit.conserved(),
            "rollup conservation violated: {audit:?} (mode {:?})",
            s.exec_mode()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(rollup_cases()))]

    #[test]
    fn tier_served_aggregates_are_bit_identical_to_raw_oracle(
        stream in prop::collection::vec(
            ((0usize..4, 0i64..200, 0usize..2), (0u32..1000, 0u32..8)),
            1..100,
        ),
        queries in prop::collection::vec((0u8..6, 0u8..2, 0u8..6, 0u8..6), 1..6),
    ) {
        check_case(&stream, &queries);
    }
}

/// Deterministic pin: NaN payloads, signed zeros, and infinities served
/// from materialized tier cells are bit-identical to the raw oracle for
/// every tier-servable aggregate, and the planner provably routed — the
/// `tsdb.rollup.queries_routed` counter moves.
#[test]
fn nan_and_signed_zero_cells_route_and_match() {
    let stream: Vec<PointCode> = vec![
        ((0, 0, 0), (999, 1)),  // NaN
        ((0, 1, 0), (999, 1)),  // NaN (all-NaN bucket)
        ((1, 2, 0), (925, 1)),  // -0.0
        ((1, 3, 0), (910, 1)),  // 0.0 (same series: max(-0.0, 0.0) ties)
        ((2, 21, 0), (950, 1)), // +inf
        ((2, 22, 0), (970, 1)), // -inf
        ((3, 41, 1), (100, 1)), // finite, other field
    ];
    let queries: Vec<QueryCode> = vec![
        (1, 0, 4, 1), // count over time(20), all hosts
        (2, 0, 4, 0), // min over time(5)
        (3, 0, 4, 1), // max over time(20)
        (4, 0, 4, 1), // first over time(20)
        (5, 0, 4, 3), // last over time(100)
        (0, 0, 0, 0), // sum, single series, b == tier exactly
        (0, 0, 4, 2), // sum, multi-series: must fall back, still identical
    ];
    check_case(&stream, &queries);

    // Routing proof: the same setup on an obs-instrumented database
    // bumps the routed-queries counter once ticked.
    let reg = Registry::shared();
    let db = Database::with_obs("routed", reg.clone());
    db.set_exec_mode(ExecMode::Parallel(4));
    db.set_query_cache_capacity(0);
    db.enable_rollups(RollupConfig::with_tiers(&TIERS));
    for code in &stream {
        db.write_point(point_of(code)).unwrap();
    }
    db.rollup_tick().unwrap();
    let q = Query::parse("SELECT count(\"value\") FROM \"m\" GROUP BY time(20)").unwrap();
    db.query_parsed(&q).unwrap();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("tsdb.rollup.queries_routed", &[]), Some(1));
    assert!(snap.counter("tsdb.rollup.buckets_tier", &[]).unwrap() > 0);
    assert_eq!(snap.counter("tsdb.rollup.buckets_raw", &[]), Some(0));
}

/// Sequential mode never routes to tiers: it IS the oracle.
#[test]
fn sequential_mode_never_routes() {
    let reg = Registry::shared();
    let db = Database::with_obs("seq", reg.clone());
    db.set_exec_mode(ExecMode::Sequential);
    db.set_query_cache_capacity(0);
    db.enable_rollups(RollupConfig::with_tiers(&TIERS));
    for ts in 0..40 {
        db.write_point(
            Point::new("m")
                .tag("host", "h0")
                .field("value", FieldValue::Float(ts as f64))
                .timestamp(ts),
        )
        .unwrap();
    }
    db.rollup_tick().unwrap();
    let q = Query::parse("SELECT count(\"value\") FROM \"m\" GROUP BY time(20)").unwrap();
    db.query_parsed(&q).unwrap();
    assert_eq!(
        reg.snapshot().counter("tsdb.rollup.queries_routed", &[]),
        Some(0)
    );
}
