//! Query-cache freshness under replication.
//!
//! The LRU query cache (PR 4) validates entries against a
//! per-measurement write version. Locally ingested points bump it in
//! `write_point`; this suite pins the regression risk replication
//! introduced: writes that arrive *remotely* — hint replay and
//! anti-entropy repair both land through `Database::apply_remote` —
//! must bump the same version, or a replica that cached a result while
//! it was behind would keep serving pre-repair rows forever.

use pmove_tsdb::repl::{ReplConfig, ReplicaSet};
use pmove_tsdb::{Database, FieldValue, Point};

fn point(ts: i64, v: f64) -> Point {
    Point::new("m")
        .tag("tag", "x")
        .field("f", FieldValue::Float(v))
        .timestamp(ts)
}

#[test]
fn apply_remote_bumps_the_write_version() {
    let db = Database::new("r");
    let v0 = db.write_version("m");
    db.apply_remote(point(1_000, 1.25)).unwrap();
    assert!(
        db.write_version("m") > v0,
        "remote write left version stale"
    );
}

#[test]
fn cache_never_serves_pre_repair_rows_after_anti_entropy() {
    let set = ReplicaSet::in_memory("cache", ReplConfig::default()).unwrap();
    // A quorum write that missed replica 2, then a second one that
    // reached everyone: the lagging replica holds a strict subset.
    for i in 0..2 {
        set.replica(i).write_point(point(1_000, 1.25)).unwrap();
    }
    for i in 0..3 {
        set.replica(i).write_point(point(2_000, 2.5)).unwrap();
    }
    let lagging = set.replica(2);

    // Populate the lagging replica's cache with the pre-repair result.
    let q = "SELECT \"f\" FROM \"m\"";
    let before = lagging.query(q).unwrap();
    assert_eq!(before.rows.len(), 1, "lagging replica should miss one row");
    assert!(lagging.query_cache_len() > 0, "query was not cached");
    let again = lagging.query(q).unwrap();
    assert_eq!(again.rows.len(), 1);

    // Anti-entropy streams the divergent range in via `apply_remote`.
    let v_pre = lagging.write_version("m");
    let repair = set.repair_until_converged(4).unwrap();
    assert!(repair.converged);
    assert!(repair.cells_streamed > 0, "repair had nothing to stream");
    assert!(
        lagging.write_version("m") > v_pre,
        "repair did not bump the write version"
    );

    // The cached entry is now stale by version: the same query must see
    // the repaired row, bit-exactly.
    let after = lagging.query(q).unwrap();
    assert_eq!(after.rows.len(), 2, "cache served pre-repair rows");
    let bits: Vec<Option<u64>> = after
        .rows
        .iter()
        .map(|r| r.values["f"].map(f64::to_bits))
        .collect();
    assert_eq!(
        bits,
        vec![Some(1.25f64.to_bits()), Some(2.5f64.to_bits())],
        "repaired rows are not bit-identical"
    );
}
