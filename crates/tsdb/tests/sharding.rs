//! Regression pins for sharded storage: duplicate-timestamp LWW merges
//! stay within their series' shard, rows sharing a timestamp across
//! shards are never conflated, retention prunes every shard, and the
//! shard count itself is observationally invisible.

use pmove_tsdb::query::Projection;
use pmove_tsdb::series::SeriesKey;
use pmove_tsdb::storage::{shard_of_key, Storage};
use pmove_tsdb::{exec, Database, ExecMode, Point, Query, DEFAULT_SHARD_COUNT};

/// Two hosts of the same measurement whose series keys hash to
/// *different* shards (found deterministically, asserted, not assumed).
fn cross_shard_hosts() -> (String, String) {
    let shard = |host: &str| {
        shard_of_key(
            &SeriesKey::new("m", [("host", host)]).canonical(),
            DEFAULT_SHARD_COUNT,
        )
    };
    let a = "h0".to_string();
    for i in 1..200 {
        let b = format!("h{i}");
        if shard(&b) != shard(&a) {
            return (a, b);
        }
    }
    panic!("no cross-shard host pair in 200 candidates");
}

fn pt(host: &str, ts: i64, v: f64) -> Point {
    Point::new("m")
        .tag("host", host)
        .field("value", v)
        .timestamp(ts)
}

fn raw_query() -> Query {
    Query {
        projections: vec![Projection::Field("value".into())],
        measurement: "m".into(),
        tag_filters: Vec::new(),
        time_start: None,
        time_end: None,
        group_by_time: None,
    }
}

/// Same timestamp written to series in different shards of one
/// measurement: LWW must merge *within* each series only, and the merged
/// scan must keep one row per (timestamp, series) in canonical order —
/// identically at every thread count.
#[test]
fn duplicate_timestamps_across_shards_stay_distinct_and_lww_merges_within() {
    let (a, b) = cross_shard_hosts();
    let db = Database::new("t");
    db.set_query_cache_capacity(0);
    db.write_point(pt(&a, 10, 1.0)).unwrap();
    db.write_point(pt(&b, 10, 2.0)).unwrap();
    // Overwrite series a at the same timestamp: last write wins in a's
    // shard; b's shard must be untouched.
    db.write_point(pt(&a, 10, 7.5)).unwrap();

    let q = raw_query();
    let seq = db.query_with_mode(&q, ExecMode::Sequential).unwrap();
    for threads in [1, 2, 8] {
        let par = db.query_with_mode(&q, ExecMode::Parallel(threads)).unwrap();
        assert_eq!(par, seq, "threads={threads}");
    }
    // Two rows survive at ts 10 (one per series), a's carrying the
    // overwritten value, in series-id (insertion) order.
    assert_eq!(seq.rows.len(), 2);
    assert!(seq.rows.iter().all(|r| r.timestamp == 10));
    let values: Vec<f64> = seq
        .rows
        .iter()
        .map(|r| r.values["value"].unwrap())
        .collect();
    assert_eq!(values, vec![7.5, 2.0]);
}

/// Retention must prune rows in *every* shard, drop emptied series from
/// placement and index, and leave both executors agreeing afterwards.
#[test]
fn retention_prunes_every_shard() {
    let mut s = Storage::new();
    // 40 hosts spread over the 16 shards, each with old and new rows.
    for i in 0..40 {
        let host = format!("h{i}");
        s.insert(pt(&host, 10, i as f64));
        s.insert(pt(&host, 200, i as f64 + 0.5));
    }
    // 8 hosts with *only* old rows: their series must disappear entirely.
    for i in 40..48 {
        s.insert(pt(&format!("h{i}"), 20, 1.0));
    }
    assert_eq!(s.total_rows(), 88);

    let removed = s.drop_before(100);
    assert_eq!(removed, 48);
    assert_eq!(s.total_rows(), 40);
    let m = s.measurement("m").unwrap();
    assert_eq!(m.series_count(), 40);
    for series in m.series_iter() {
        assert!(series.rows.iter().all(|r| r.timestamp >= 100));
    }

    let q = raw_query();
    let (seq, _) = exec::run(&s, &q, ExecMode::Sequential).unwrap();
    assert_eq!(seq.rows.len(), 40);
    for threads in [2, 8] {
        let (par, _) = exec::run(&s, &q, ExecMode::Parallel(threads)).unwrap();
        assert_eq!(par, seq, "threads={threads}");
    }
}

/// The shard count is an implementation detail: 1-shard and 16-shard
/// stores loaded with the same writes answer every query identically.
#[test]
fn shard_count_is_observationally_invisible() {
    let mut one = Storage::with_shards(1);
    let mut many = Storage::with_shards(DEFAULT_SHARD_COUNT);
    for i in 0..24 {
        let host = format!("h{}", i % 7);
        let p = pt(&host, (i * 13) % 50, i as f64 * 1.25);
        one.insert(p.clone());
        many.insert(p);
    }
    let queries = [
        raw_query(),
        Query {
            projections: vec![Projection::Aggregate(
                pmove_tsdb::aggregate::AggregateFn::Sum,
                "value".into(),
            )],
            measurement: "m".into(),
            tag_filters: Vec::new(),
            time_start: Some(5),
            time_end: Some(45),
            group_by_time: Some(10),
        },
    ];
    for q in &queries {
        let (want, _) = exec::run(&one, q, ExecMode::Sequential).unwrap();
        for s in [&one, &many] {
            for mode in [ExecMode::Sequential, ExecMode::Parallel(8)] {
                let (got, _) = exec::run(s, q, mode).unwrap();
                assert_eq!(got, want, "{mode:?} on {} shards", s.shard_count());
            }
        }
    }
}
