//! Property test: line-protocol rendering and parsing are inverse for
//! identifiers containing the characters that need escaping — spaces,
//! commas, and equals signs — in the measurement, tag keys/values, and
//! field keys alike. The same guarantee carries the durable store's
//! series keys, so a hostile metric name can never corrupt a chunk key.

use pmove_tsdb::line_protocol::{parse, parse_series_key, render, render_series_key};
use pmove_tsdb::Point;
use proptest::prelude::*;

/// Identifier alphabet: letters, digits, and every character the
/// protocol must escape (space, comma, equals), plus common punctuation.
const IDENT: &str = "[a-zA-Z0-9 ,=._:/-]{1,12}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn point_roundtrips_with_hostile_identifiers(
        measurement in IDENT,
        tag_key in IDENT,
        tag_val in IDENT,
        field_key in IDENT,
        raw_value in 0u64..2_000_000,
        ts in any::<i64>(),
    ) {
        let p = Point::new(measurement.clone())
            .tag(tag_key.clone(), tag_val.clone())
            .field(field_key.clone(), raw_value as f64 / 1e3)
            .timestamp(ts);
        let line = render(&p);
        let back = parse(&line).unwrap_or_else(|e| {
            panic!("rendered line failed to parse: {line:?}: {e}")
        });
        prop_assert_eq!(back, p);
    }

    #[test]
    fn series_key_roundtrips_with_hostile_identifiers(
        measurement in IDENT,
        k1 in IDENT,
        v1 in IDENT,
        k2 in IDENT,
        v2 in IDENT,
    ) {
        let mut tags = std::collections::BTreeMap::new();
        tags.insert(k1, v1);
        tags.insert(k2, v2);
        let key = render_series_key(&measurement, &tags);
        let (m, t) = parse_series_key(&key).unwrap_or_else(|e| {
            panic!("series key failed to parse: {key:?}: {e}")
        });
        prop_assert_eq!(m, measurement);
        prop_assert_eq!(t, tags);
    }

    #[test]
    fn multi_field_points_roundtrip(
        measurement in IDENT,
        f1 in IDENT,
        f2 in IDENT,
        int_value in any::<i64>(),
        flag in any::<bool>(),
    ) {
        // Two hostile field keys in one point; if they collide the map
        // keeps one entry and the round trip must still hold.
        let p = Point::new(measurement)
            .field(f1, int_value)
            .field(f2, flag)
            .timestamp(7);
        let back = parse(&render(&p)).unwrap();
        prop_assert_eq!(back, p);
    }
}
