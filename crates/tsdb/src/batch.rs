//! Columnar batch ingest: struct-of-arrays buffers that turn many points
//! into one series-interned, group-committed write.
//!
//! The row-at-a-time path pays per point: a canonical-key render, a shard
//! hash, a series map lookup, and — in durable mode — one WAL frame and
//! one group commit. [`ColumnarBatch`] amortizes all four: points are
//! transposed into per-series columns (`ts[]` + `fields[]`), each unique
//! series is rendered/hashed/interned **once** per batch, and the engine
//! writes the whole batch as **one** WAL frame followed by **one** group
//! commit ([`crate::Database::write_batch`]).
//!
//! Atomicity falls out of the WAL framing: `encode_row_batch` wraps every
//! row of an `append` call in a single `[len][crc][payload]` frame, and
//! recovery drops a torn or corrupt frame wholly. A crash mid-commit
//! therefore replays the entire batch or none of it — never a prefix
//! (`pcp/tests/batch_crash.rs` pins this with seeded MemDisk faults).
//!
//! Equivalence with row-at-a-time ingest is *bit-exact*, pinned by the
//! `PMOVE_BATCH_CASES` differential suite. The two order contracts that
//! make it hold:
//!
//! * **series-id order**: ids are allocated at first appearance, and ids
//!   define the canonical `(timestamp, series id)` row order every query
//!   result depends on. The batch interns series in first-appearance
//!   order of the incoming points — the same allocation sequence the row
//!   path produces.
//! * **LWW order**: within one series, rows stay in arrival order, so
//!   duplicate-timestamp field merges resolve identically. Across series
//!   the series-major replay order differs from arrival order, but
//!   cross-series cells never collide, so the merged state is the same.

use crate::engine::column_of_field;
use crate::line_protocol::render_series_key;
use crate::point::Point;
use crate::series::SeriesKey;
use crate::storage::{shard_of_key, shard_of_series, Row, Storage, DEFAULT_SHARD_COUNT};
use crate::value::FieldValue;
use pmove_store::RowRecord;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a for the batch's series-grouping map: the keys are short strings
/// hashed millions of times per ingest run, where SipHash's setup cost
/// dominates. Grouping is an in-batch implementation detail, so the
/// weaker hash never affects placement or query results.
#[derive(Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Size/age thresholds for the per-shard ingest queues.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush a shard queue once it buffers this many points.
    pub max_points: usize,
    /// Flush a shard queue once its oldest point has waited this long
    /// (virtual-clock units, same unit the caller passes as `now`).
    pub max_age: i64,
}

impl Default for BatchConfig {
    /// 4096 points or 1 s (nanosecond clock), whichever comes first —
    /// matching the store's memtable flush granularity.
    fn default() -> Self {
        BatchConfig {
            max_points: 4096,
            max_age: 1_000_000_000,
        }
    }
}

/// Struct-of-arrays columns for one series within a batch: timestamps and
/// field sets in arrival order, plus the interning work (canonical render,
/// shard hash) done once instead of once per point.
#[derive(Debug)]
pub struct SeriesColumns {
    /// Series identity.
    pub key: SeriesKey,
    /// Canonical (unescaped) key, the shard-placement hash input.
    pub canonical: String,
    /// Home shard under the fixed default layout.
    pub shard: usize,
    /// Timestamps in arrival order.
    pub ts: Vec<i64>,
    /// Field sets in arrival order (moved out of the points, not copied).
    pub fields: Vec<BTreeMap<String, FieldValue>>,
}

/// A set of points transposed into per-series columns, series kept in
/// first-appearance order (the id-allocation order the row path uses).
#[derive(Debug)]
pub struct ColumnarBatch {
    series: Vec<SeriesColumns>,
    /// Arrival order as `(series slot, row index)` — what live
    /// subscription publishing replays so batching is invisible to
    /// subscribers.
    order: Vec<(u32, u32)>,
    /// Total points in the batch.
    pub points: usize,
}

impl ColumnarBatch {
    /// Transpose points into columns. Each unique series is interned once
    /// (one `SeriesKey` clone, one canonical render, one shard hash).
    pub fn build(points: Vec<Point>) -> ColumnarBatch {
        let total = points.len();
        let mut series: Vec<SeriesColumns> = Vec::new();
        let mut order: Vec<(u32, u32)> = Vec::with_capacity(total);
        let mut index: HashMap<SeriesKey, usize, BuildHasherDefault<FnvHasher>> =
            HashMap::default();
        for point in points {
            let key = SeriesKey {
                measurement: point.measurement,
                tags: point.tags,
            };
            let slot = match index.get(&key) {
                Some(&i) => i,
                None => {
                    let canonical = key.canonical();
                    let shard = shard_of_key(&canonical, DEFAULT_SHARD_COUNT);
                    series.push(SeriesColumns {
                        key: key.clone(),
                        canonical,
                        shard,
                        ts: Vec::new(),
                        fields: Vec::new(),
                    });
                    index.insert(key, series.len() - 1);
                    series.len() - 1
                }
            };
            order.push((slot as u32, series[slot].ts.len() as u32));
            series[slot].ts.push(point.timestamp);
            series[slot].fields.push(point.fields);
        }
        ColumnarBatch {
            series,
            order,
            points: total,
        }
    }

    /// Reconstruct the batch's points in arrival order. Clones tag and
    /// field sets, so callers only iterate when someone is listening
    /// (live subscribers).
    pub fn arrival_points(&self) -> impl Iterator<Item = Point> + '_ {
        self.order.iter().map(|&(slot, idx)| {
            let sc = &self.series[slot as usize];
            Point {
                measurement: sc.key.measurement.clone(),
                tags: sc.key.tags.clone(),
                fields: sc.fields[idx as usize].clone(),
                timestamp: sc.ts[idx as usize],
            }
        })
    }

    /// Per-series columns in first-appearance order.
    pub fn series(&self) -> &[SeriesColumns] {
        &self.series
    }

    /// Unique series in the batch.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Distinct home shards the batch touches.
    pub fn shard_spread(&self) -> usize {
        let mut seen = [false; DEFAULT_SHARD_COUNT];
        for sc in &self.series {
            seen[sc.shard % DEFAULT_SHARD_COUNT] = true;
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Flatten into durable rows for one WAL frame: series-major, each
    /// series' escaped key rendered once. Per-series arrival order is
    /// preserved, which is all last-write-wins replay needs.
    pub fn wal_rows(&self) -> Vec<RowRecord> {
        let mut rows = Vec::new();
        for sc in &self.series {
            let rendered = render_series_key(&sc.key.measurement, &sc.key.tags);
            for (ts, fields) in sc.ts.iter().zip(&sc.fields) {
                for (field, value) in fields {
                    rows.push(RowRecord::new(
                        rendered.clone(),
                        field.clone(),
                        *ts,
                        column_of_field(value),
                    ));
                }
            }
        }
        rows
    }

    /// Apply the batch to storage: one series resolution per unique
    /// series, in first-appearance order so id allocation matches the
    /// row-at-a-time path.
    pub(crate) fn apply(self, storage: &mut Storage) {
        for sc in self.series {
            let rows: Vec<Row> = sc
                .ts
                .into_iter()
                .zip(sc.fields)
                .map(|(timestamp, fields)| Row { timestamp, fields })
                .collect();
            storage.insert_series_rows_placed(&sc.key, Some(&sc.canonical), rows);
        }
    }
}

/// Outcome of one [`crate::Database::write_batch`] call.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-point results in arrival order (`EmptyFields` and limiter
    /// rejections surface here; accepted points are `Ok`).
    pub results: Vec<Result<(), crate::error::TsdbError>>,
    /// Points admitted, committed, and stored.
    pub accepted: usize,
    /// Points rejected by the ingest limiter.
    pub rejected: usize,
    /// Unique series the accepted points covered.
    pub series: usize,
    /// Distinct home shards the accepted points covered.
    pub shards: usize,
    /// Modeled WAL group-commit cost for the whole batch (0 when
    /// memory-only or nothing was accepted).
    pub commit_ns: u64,
}

impl BatchOutcome {
    /// True when every offered point was accepted.
    pub fn all_accepted(&self) -> bool {
        self.results.iter().all(Result::is_ok)
    }
}

/// One shard's pending queue.
#[derive(Debug, Default)]
struct ShardQueue {
    points: Vec<Point>,
    /// Virtual time the oldest pending point arrived at.
    oldest: i64,
}

/// Per-shard ingest queues that flush on size or age. The ingester is a
/// buffering front for [`crate::Database::write_batch`]: callers `offer`
/// points as they arrive and write whatever batches come back; a periodic
/// `flush_due` drains queues whose oldest point has aged out, and
/// `flush_all` drains everything at shutdown.
///
/// Queueing never changes admission semantics: the ingest limiter windows
/// on *point* timestamps, not on the flush time, so a point admitted late
/// lands in the same limiter window it would have occupied ingested
/// immediately.
#[derive(Debug)]
pub struct BatchIngester {
    cfg: BatchConfig,
    queues: Vec<ShardQueue>,
}

impl BatchIngester {
    /// Ingester with one queue per storage shard.
    pub fn new(cfg: BatchConfig) -> BatchIngester {
        assert!(cfg.max_points > 0, "batch size must be positive");
        assert!(cfg.max_age >= 0, "batch age must be non-negative");
        BatchIngester {
            cfg,
            queues: (0..DEFAULT_SHARD_COUNT)
                .map(|_| ShardQueue::default())
                .collect(),
        }
    }

    /// Buffer one point at virtual time `now`; returns the point's shard
    /// queue as a ready batch when the size threshold is reached. Routing
    /// hashes the series key in place ([`shard_of_series`]) — no clone,
    /// no canonical render — but lands on exactly the shard storage will
    /// place the series on.
    pub fn offer(&mut self, point: Point, now: i64) -> Option<Vec<Point>> {
        let shard = shard_of_series(&point.measurement, &point.tags, DEFAULT_SHARD_COUNT);
        let q = &mut self.queues[shard];
        if q.points.is_empty() {
            q.oldest = now;
        }
        q.points.push(point);
        (q.points.len() >= self.cfg.max_points).then(|| std::mem::take(&mut q.points))
    }

    /// Drain every queue whose oldest point has waited at least
    /// `max_age`, returning one batch per drained shard.
    pub fn flush_due(&mut self, now: i64) -> Vec<Vec<Point>> {
        let max_age = self.cfg.max_age;
        self.queues
            .iter_mut()
            .filter(|q| !q.points.is_empty() && now.saturating_sub(q.oldest) >= max_age)
            .map(|q| std::mem::take(&mut q.points))
            .collect()
    }

    /// Drain every non-empty queue (shutdown / end of experiment).
    pub fn flush_all(&mut self) -> Vec<Vec<Point>> {
        self.queues
            .iter_mut()
            .filter(|q| !q.points.is_empty())
            .map(|q| std::mem::take(&mut q.points))
            .collect()
    }

    /// Points currently buffered across all queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.points.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(host: &str, ts: i64, v: f64) -> Point {
        Point::new("m")
            .tag("host", host)
            .field("v", v)
            .timestamp(ts)
    }

    #[test]
    fn build_interns_series_in_first_appearance_order() {
        let batch = ColumnarBatch::build(vec![pt("b", 1, 1.0), pt("a", 2, 2.0), pt("b", 3, 3.0)]);
        assert_eq!(batch.points, 3);
        assert_eq!(batch.series_count(), 2);
        assert_eq!(batch.series()[0].key.tags["host"], "b");
        assert_eq!(batch.series()[1].key.tags["host"], "a");
        assert_eq!(batch.series()[0].ts, vec![1, 3]);
        assert_eq!(batch.series()[1].ts, vec![2]);
        assert!(batch.shard_spread() >= 1);
    }

    #[test]
    fn wal_rows_are_series_major_and_order_preserving() {
        let batch = ColumnarBatch::build(vec![pt("b", 5, 1.0), pt("a", 1, 2.0), pt("b", 2, 3.0)]);
        let rows = batch.wal_rows();
        assert_eq!(rows.len(), 3);
        // Series b's rows first (first appearance), in arrival order.
        assert_eq!(rows[0].ts, 5);
        assert_eq!(rows[1].ts, 2);
        assert_eq!(rows[2].ts, 1);
        assert!(rows[0].series.contains("host=b"));
        assert!(rows[2].series.contains("host=a"));
    }

    #[test]
    fn apply_matches_row_at_a_time_storage() {
        let points = vec![
            pt("b", 5, 1.0),
            pt("a", 1, 2.0),
            pt("b", 2, 3.0),
            pt("b", 5, 9.0), // LWW rewrite
        ];
        let mut rowwise = Storage::new();
        for p in points.clone() {
            rowwise.insert(p);
        }
        let mut batched = Storage::new();
        ColumnarBatch::build(points).apply(&mut batched);

        let mr = rowwise.measurement("m").unwrap();
        let mb = batched.measurement("m").unwrap();
        assert_eq!(mr.row_count(), mb.row_count());
        let ids_r = mr.matching_series(&[]);
        let ids_b = mb.matching_series(&[]);
        assert_eq!(ids_r, ids_b, "id allocation order must match");
        for (ir, ib) in ids_r.iter().zip(&ids_b) {
            let sr = mr.series(*ir).unwrap();
            let sb = mb.series(*ib).unwrap();
            assert_eq!(sr.key, sb.key);
            assert_eq!(sr.rows, sb.rows);
        }
    }

    #[test]
    fn ingester_flushes_on_size_and_age() {
        let mut ing = BatchIngester::new(BatchConfig {
            max_points: 2,
            max_age: 100,
        });
        // Same series → same queue; second offer hits the size threshold.
        assert!(ing.offer(pt("a", 1, 1.0), 0).is_none());
        let batch = ing.offer(pt("a", 2, 2.0), 10).expect("size flush");
        assert_eq!(batch.len(), 2);
        assert_eq!(ing.pending(), 0);
        // Age flush: nothing due before max_age, everything after.
        ing.offer(pt("a", 3, 3.0), 50);
        assert!(ing.flush_due(100).is_empty());
        let due = ing.flush_due(150);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].len(), 1);
        // flush_all drains the rest.
        ing.offer(pt("a", 4, 4.0), 200);
        ing.offer(pt("zz", 5, 5.0), 200);
        let all = ing.flush_all();
        assert_eq!(all.iter().map(Vec::len).sum::<usize>(), 2);
        assert_eq!(ing.pending(), 0);
    }
}
