//! InfluxDB line-protocol parsing and rendering.
//!
//! Grammar (one point per line):
//!
//! ```text
//! measurement[,tag=value...] field=value[,field=value...] [timestamp]
//! ```
//!
//! Escapes supported: `\,` `\ ` `\=` in identifiers, `\"` inside string
//! field values. Integer fields carry an `i` suffix, booleans are
//! `true`/`false`, everything else numeric is a float.

use crate::error::TsdbError;
use crate::point::Point;
use crate::value::FieldValue;
use std::collections::BTreeMap;

/// Render the canonical series key `measurement[,tag=value...]` — the
/// identity under which the durable store files a series. Tags iterate
/// in `BTreeMap` order and identifiers use line-protocol escaping, so
/// the key is deterministic and lossless.
pub fn render_series_key(measurement: &str, tags: &BTreeMap<String, String>) -> String {
    let mut out = escape_ident(measurement);
    for (k, v) in tags {
        out.push(',');
        out.push_str(&escape_ident(k));
        out.push('=');
        out.push_str(&escape_ident(v));
    }
    out
}

/// Parse a series key produced by [`render_series_key`] back into its
/// measurement and tag set.
pub fn parse_series_key(key: &str) -> Result<(String, BTreeMap<String, String>), TsdbError> {
    let mut parts = split_all_unescaped(key, ',');
    let measurement = unescape_ident(
        parts
            .next()
            .ok_or_else(|| TsdbError::LineProtocol("empty series key".into()))?,
    );
    if measurement.is_empty() {
        return Err(TsdbError::LineProtocol(
            "empty measurement in series key".into(),
        ));
    }
    let mut tags = BTreeMap::new();
    for tag in parts {
        let (k, v) = split_unescaped(tag, '=')
            .ok_or_else(|| TsdbError::LineProtocol(format!("bad tag in series key: {tag}")))?;
        tags.insert(unescape_ident(k), unescape_ident(v));
    }
    Ok((measurement, tags))
}

/// Render a point as one line of line protocol.
pub fn render(point: &Point) -> String {
    let mut out = render_series_key(&point.measurement, &point.tags);
    out.push(' ');
    let fields: Vec<String> = point
        .fields
        .iter()
        .map(|(k, v)| format!("{}={}", escape_ident(k), v.to_line_protocol()))
        .collect();
    out.push_str(&fields.join(","));
    out.push(' ');
    out.push_str(&point.timestamp.to_string());
    out
}

/// Parse a single line of line protocol into a [`Point`].
pub fn parse(line: &str) -> Result<Point, TsdbError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Err(TsdbError::LineProtocol("empty line".into()));
    }
    let (head, rest) = split_unescaped(line, ' ')
        .ok_or_else(|| TsdbError::LineProtocol(format!("no field section: {line}")))?;

    // head = measurement[,tag=value...]
    let mut head_parts = split_all_unescaped(head, ',');
    let measurement = unescape_ident(
        head_parts
            .next()
            .ok_or_else(|| TsdbError::LineProtocol("missing measurement".into()))?,
    );
    let mut point = Point::new(measurement);
    for tag in head_parts {
        let (k, v) = split_unescaped(tag, '=')
            .ok_or_else(|| TsdbError::LineProtocol(format!("bad tag: {tag}")))?;
        point.tags.insert(unescape_ident(k), unescape_ident(v));
    }

    // rest = fields [timestamp] — timestamp is the final whitespace-separated
    // integer if present.
    let rest = rest.trim();
    let (field_sec, ts) = match rest.rfind(' ') {
        Some(idx)
            if rest[idx + 1..]
                .chars()
                .all(|c| c.is_ascii_digit() || c == '-') =>
        {
            let ts: i64 = rest[idx + 1..]
                .parse()
                .map_err(|_| TsdbError::LineProtocol(format!("bad timestamp: {rest}")))?;
            (&rest[..idx], ts)
        }
        _ => (rest, 0),
    };
    point.timestamp = ts;

    for field in split_all_unescaped_respecting_quotes(field_sec, ',') {
        let (k, v) = split_unescaped(&field, '=')
            .ok_or_else(|| TsdbError::LineProtocol(format!("bad field: {field}")))?;
        point
            .fields
            .insert(unescape_ident(k), parse_field_value(v)?);
    }
    if point.fields.is_empty() {
        return Err(TsdbError::EmptyFields);
    }
    Ok(point)
}

/// Parse a multi-line batch, skipping blank and `#` comment lines.
pub fn parse_batch(text: &str) -> Result<Vec<Point>, TsdbError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse)
        .collect()
}

fn parse_field_value(raw: &str) -> Result<FieldValue, TsdbError> {
    let raw = raw.trim();
    if raw.starts_with('"') && raw.ends_with('"') && raw.len() >= 2 {
        return Ok(FieldValue::Str(raw[1..raw.len() - 1].replace("\\\"", "\"")));
    }
    if raw == "true" || raw == "t" || raw == "T" {
        return Ok(FieldValue::Bool(true));
    }
    if raw == "false" || raw == "f" || raw == "F" {
        return Ok(FieldValue::Bool(false));
    }
    if let Some(int_part) = raw.strip_suffix('i') {
        return int_part
            .parse::<i64>()
            .map(FieldValue::Int)
            .map_err(|_| TsdbError::LineProtocol(format!("bad int: {raw}")));
    }
    raw.parse::<f64>()
        .map(FieldValue::Float)
        .map_err(|_| TsdbError::LineProtocol(format!("bad float: {raw}")))
}

fn escape_ident(s: &str) -> String {
    s.replace(',', "\\,")
        .replace(' ', "\\ ")
        .replace('=', "\\=")
}

fn unescape_ident(s: &str) -> String {
    s.replace("\\,", ",")
        .replace("\\ ", " ")
        .replace("\\=", "=")
}

/// Split on the first occurrence of `sep` that is not preceded by `\`.
fn split_unescaped(s: &str, sep: char) -> Option<(&str, &str)> {
    let bytes = s.as_bytes();
    let mut prev_escape = false;
    for (i, c) in s.char_indices() {
        if c == sep && !prev_escape {
            return Some((&s[..i], &s[i + c.len_utf8()..]));
        }
        prev_escape = c == '\\' && !prev_escape;
        let _ = bytes;
    }
    None
}

/// Iterate over all unescaped-`sep`-separated segments.
fn split_all_unescaped(s: &str, sep: char) -> impl Iterator<Item = &str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut prev_escape = false;
    for (i, c) in s.char_indices() {
        if c == sep && !prev_escape {
            parts.push(&s[start..i]);
            start = i + c.len_utf8();
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    parts.push(&s[start..]);
    parts.into_iter()
}

/// Like [`split_all_unescaped`] but does not split inside `"..."` string
/// values (needed for string fields containing commas).
fn split_all_unescaped_respecting_quotes(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut prev_escape = false;
    for c in s.chars() {
        if c == '"' && !prev_escape {
            in_quotes = !in_quotes;
        }
        if c == sep && !in_quotes && !prev_escape {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let p = Point::new("cpu")
            .tag("host", "skx")
            .field("_cpu0", 1.5)
            .field("n", 3i64)
            .timestamp(42);
        let line = render(&p);
        let back = parse(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn parse_without_timestamp_defaults_zero() {
        let p = parse("m,f=g value=1").unwrap();
        assert_eq!(p.timestamp, 0);
        assert_eq!(p.tags["f"], "g");
    }

    #[test]
    fn parse_types() {
        let p = parse("m a=1.5,b=7i,c=true,d=\"x,y\" 9").unwrap();
        assert_eq!(p.fields["a"], FieldValue::Float(1.5));
        assert_eq!(p.fields["b"], FieldValue::Int(7));
        assert_eq!(p.fields["c"], FieldValue::Bool(true));
        assert_eq!(p.fields["d"], FieldValue::Str("x,y".into()));
        assert_eq!(p.timestamp, 9);
    }

    #[test]
    fn escaped_identifiers_roundtrip() {
        let p = Point::new("my measure")
            .tag("a,b", "c=d")
            .field("f g", 1.0)
            .timestamp(1);
        let back = parse(&render(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("onlymeasurement").is_err());
        assert!(parse("m novalue").is_err());
        assert!(parse("m a=zz").is_err());
    }

    #[test]
    fn batch_skips_comments_and_blanks() {
        let text = "# comment\nm a=1 1\n\nm a=2 2\n";
        let pts = parse_batch(text).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].timestamp, 2);
    }

    #[test]
    fn negative_timestamp_parses() {
        let p = parse("m a=1 -5").unwrap();
        assert_eq!(p.timestamp, -5);
    }

    #[test]
    fn series_key_roundtrips_hostile_identifiers() {
        let mut tags = BTreeMap::new();
        tags.insert("a,b".to_string(), "c=d".to_string());
        tags.insert("plain".to_string(), "with space".to_string());
        let key = render_series_key("my, measure=x", &tags);
        let (m, t) = parse_series_key(&key).unwrap();
        assert_eq!(m, "my, measure=x");
        assert_eq!(t, tags);
    }

    #[test]
    fn series_key_rejects_garbage() {
        assert!(parse_series_key("").is_err());
        assert!(parse_series_key("m,notag").is_err());
    }
}
