//! Write-invalidated LRU query-result cache.
//!
//! Entries are keyed by the query's normalized text ([`crate::Query::
//! normalized`]) and carry the *measurement write version* observed before
//! the query executed. The engine bumps a measurement's version on every
//! accepted write (and bumps all versions on retention enforcement and
//! store recovery), so a lookup whose stored version differs from the
//! current one is stale and is dropped — invalidation is lazy, costing the
//! write path one counter increment instead of a cache sweep. The version
//! is captured *before* execution, which is conservative under races: a
//! write landing mid-execution makes the entry stale on its next lookup
//! even if the query already saw the new data.

use crate::query::QueryResult;
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of cached results per database.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Outcome of a cache lookup.
pub enum CacheLookup {
    /// Fresh entry; the shared result.
    Hit(Arc<QueryResult>),
    /// An entry existed but its measurement has been written since; it has
    /// been dropped.
    Stale,
    /// No entry.
    Miss,
}

#[derive(Debug)]
struct CacheEntry {
    measurement: String,
    version: u64,
    last_used: u64,
    result: Arc<QueryResult>,
}

/// The cache. LRU over a monotone access tick; capacity 0 disables it.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, CacheEntry>,
}

impl QueryCache {
    /// Cache holding up to `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resize; shrinking evicts LRU entries, 0 clears and disables.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.entries.clear();
        } else {
            while self.entries.len() > self.capacity {
                self.evict_lru();
            }
        }
    }

    /// Look up `key`, validating against the measurement's current write
    /// version.
    pub fn get(&mut self, key: &str, current_version: u64) -> CacheLookup {
        self.tick += 1;
        let stale = match self.entries.get_mut(key) {
            None => return CacheLookup::Miss,
            Some(e) if e.version == current_version => {
                e.last_used = self.tick;
                return CacheLookup::Hit(e.result.clone());
            }
            Some(_) => true,
        };
        debug_assert!(stale);
        self.entries.remove(key);
        CacheLookup::Stale
    }

    /// Insert a result observed at `version`; returns how many entries
    /// were evicted to make room (0 or 1 in steady state).
    pub fn insert(
        &mut self,
        key: String,
        measurement: String,
        version: u64,
        result: Arc<QueryResult>,
    ) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        self.entries.insert(
            key,
            CacheEntry {
                measurement,
                version,
                last_used: self.tick,
                result,
            },
        );
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            self.evict_lru();
            evicted += 1;
        }
        evicted
    }

    /// Eagerly drop every entry for one measurement; returns how many were
    /// dropped. (Normal invalidation is lazy via versions; this is for
    /// explicit administrative drops.)
    pub fn invalidate_measurement(&mut self, measurement: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.measurement != measurement);
        before - self.entries.len()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn evict_lru(&mut self) {
        // Ticks are unique, so the minimum is unambiguous and eviction is
        // deterministic even over the unordered map.
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&key);
        }
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(n: usize) -> Arc<QueryResult> {
        Arc::new(QueryResult {
            columns: vec![format!("c{n}")],
            rows: Vec::new(),
        })
    }

    #[test]
    fn hit_miss_and_version_staleness() {
        let mut c = QueryCache::new(4);
        assert!(matches!(c.get("q1", 0), CacheLookup::Miss));
        c.insert("q1".into(), "m".into(), 0, result(1));
        match c.get("q1", 0) {
            CacheLookup::Hit(r) => assert_eq!(r.columns, vec!["c1".to_string()]),
            _ => panic!("expected hit"),
        }
        // A write bumped the measurement version: stale, then gone.
        assert!(matches!(c.get("q1", 1), CacheLookup::Stale));
        assert!(matches!(c.get("q1", 1), CacheLookup::Miss));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = QueryCache::new(2);
        c.insert("a".into(), "m".into(), 0, result(1));
        c.insert("b".into(), "m".into(), 0, result(2));
        // Touch `a`, making `b` the LRU victim.
        assert!(matches!(c.get("a", 0), CacheLookup::Hit(_)));
        let evicted = c.insert("c".into(), "m".into(), 0, result(3));
        assert_eq!(evicted, 1);
        assert!(matches!(c.get("b", 0), CacheLookup::Miss));
        assert!(matches!(c.get("a", 0), CacheLookup::Hit(_)));
        assert!(matches!(c.get("c", 0), CacheLookup::Hit(_)));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = QueryCache::new(0);
        assert_eq!(c.insert("a".into(), "m".into(), 0, result(1)), 0);
        assert!(matches!(c.get("a", 0), CacheLookup::Miss));
        assert!(c.is_empty());
    }

    #[test]
    fn shrink_and_eager_invalidate() {
        let mut c = QueryCache::new(4);
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            c.insert(
                (*k).into(),
                if i < 2 { "m1" } else { "m2" }.into(),
                0,
                result(i),
            );
        }
        assert_eq!(c.invalidate_measurement("m1"), 2);
        assert_eq!(c.len(), 2);
        c.set_capacity(1);
        assert_eq!(c.len(), 1);
        c.set_capacity(0);
        assert!(c.is_empty());
    }
}
