//! In-memory columnar storage: measurement -> series -> time-ordered rows.

use crate::index::TagIndex;
use crate::point::Point;
use crate::series::{SeriesId, SeriesKey};
use crate::value::FieldValue;
use std::collections::{BTreeMap, HashMap};

/// One stored sample: timestamp plus the point's field set.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Nanosecond timestamp.
    pub timestamp: i64,
    /// Field name -> value.
    pub fields: BTreeMap<String, FieldValue>,
}

/// Data for a single series.
#[derive(Debug)]
pub struct SeriesData {
    /// Identity of the series.
    pub key: SeriesKey,
    /// Rows sorted by timestamp (append-mostly; out-of-order inserts are
    /// placed by binary search, as Influx's TSM engine effectively does).
    pub rows: Vec<Row>,
}

impl SeriesData {
    /// Insert a row, keeping rows time-sorted. A write at an existing
    /// timestamp does not append a duplicate row: its field set is merged
    /// into the existing one, last write winning per field — InfluxDB's
    /// duplicate-point semantics (and the same last-write-wins rule the
    /// durable chunk compactor applies on disk).
    fn insert(&mut self, row: Row) {
        match self.rows.last_mut() {
            Some(last) if last.timestamp == row.timestamp => {
                last.fields.extend(row.fields);
            }
            Some(last) if last.timestamp < row.timestamp => self.rows.push(row),
            None => self.rows.push(row),
            _ => {
                let pos = self.rows.partition_point(|r| r.timestamp <= row.timestamp);
                if pos > 0 && self.rows[pos - 1].timestamp == row.timestamp {
                    self.rows[pos - 1].fields.extend(row.fields);
                } else {
                    self.rows.insert(pos, row);
                }
            }
        }
    }

    /// Rows with `start <= ts < end`.
    pub fn range(&self, start: i64, end: i64) -> &[Row] {
        let lo = self.rows.partition_point(|r| r.timestamp < start);
        let hi = self.rows.partition_point(|r| r.timestamp < end);
        &self.rows[lo..hi]
    }
}

/// Per-measurement storage: the series map plus its inverted tag index.
#[derive(Debug, Default)]
pub struct Measurement {
    series_ids: HashMap<SeriesKey, SeriesId>,
    series: BTreeMap<SeriesId, SeriesData>,
    index: TagIndex,
    field_keys: BTreeMap<String, ()>,
}

impl Measurement {
    /// All series in id order.
    pub fn series_iter(&self) -> impl Iterator<Item = &SeriesData> {
        self.series.values()
    }

    /// Look up one series by id.
    pub fn series(&self, id: SeriesId) -> Option<&SeriesData> {
        self.series.get(&id)
    }

    /// Series ids matching a set of tag constraints, using the inverted
    /// index when constraints exist, otherwise all series.
    pub fn matching_series(&self, constraints: &[(String, String)]) -> Vec<SeriesId> {
        match self.index.lookup_all(constraints) {
            Some(set) => set.into_iter().collect(),
            None => self.series.keys().copied().collect(),
        }
    }

    /// Field keys ever written to this measurement (sorted).
    pub fn field_keys(&self) -> Vec<String> {
        self.field_keys.keys().cloned().collect()
    }

    /// Distinct tag values for a key.
    pub fn tag_values(&self, key: &str) -> Vec<String> {
        self.index.values_for_key(key)
    }

    /// Total number of stored rows across series.
    pub fn row_count(&self) -> usize {
        self.series.values().map(|s| s.rows.len()).sum()
    }
}

/// Whole-database storage shared behind the engine lock.
#[derive(Debug, Default)]
pub struct Storage {
    measurements: BTreeMap<String, Measurement>,
    next_series: u64,
}

impl Storage {
    /// Create empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one point, creating measurement/series as needed.
    pub fn insert(&mut self, point: Point) {
        let m = self
            .measurements
            .entry(point.measurement.clone())
            .or_default();
        let key = SeriesKey {
            measurement: point.measurement.clone(),
            tags: point.tags.clone(),
        };
        let id = match m.series_ids.get(&key) {
            Some(id) => *id,
            None => {
                let id = SeriesId(self.next_series);
                self.next_series += 1;
                m.series_ids.insert(key.clone(), id);
                for (k, v) in &key.tags {
                    m.index.insert(k, v, id);
                }
                m.series.insert(
                    id,
                    SeriesData {
                        key: key.clone(),
                        rows: Vec::new(),
                    },
                );
                id
            }
        };
        for k in point.fields.keys() {
            m.field_keys.insert(k.clone(), ());
        }
        let row = Row {
            timestamp: point.timestamp,
            fields: point.fields,
        };
        m.series
            .get_mut(&id)
            .expect("series just ensured")
            .insert(row);
    }

    /// Access a measurement.
    pub fn measurement(&self, name: &str) -> Option<&Measurement> {
        self.measurements.get(name)
    }

    /// All measurement names (sorted).
    pub fn measurement_names(&self) -> Vec<String> {
        self.measurements.keys().cloned().collect()
    }

    /// Drop all rows strictly older than `cutoff` across every measurement;
    /// returns the number of rows removed. Empty series are pruned and
    /// removed from the index.
    pub fn drop_before(&mut self, cutoff: i64) -> usize {
        let mut removed = 0;
        for m in self.measurements.values_mut() {
            let mut dead = Vec::new();
            for (id, s) in m.series.iter_mut() {
                let keep_from = s.rows.partition_point(|r| r.timestamp < cutoff);
                removed += keep_from;
                s.rows.drain(..keep_from);
                if s.rows.is_empty() {
                    dead.push(*id);
                }
            }
            for id in dead {
                if let Some(s) = m.series.remove(&id) {
                    for (k, v) in &s.key.tags {
                        m.index.remove(k, v, id);
                    }
                    m.series_ids.remove(&s.key);
                }
            }
        }
        removed
    }

    /// Total rows stored.
    pub fn total_rows(&self) -> usize {
        self.measurements.values().map(Measurement::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(m: &str, host: &str, ts: i64, v: f64) -> Point {
        Point::new(m)
            .tag("host", host)
            .field("value", v)
            .timestamp(ts)
    }

    #[test]
    fn insert_creates_series_per_tagset() {
        let mut s = Storage::new();
        s.insert(pt("cpu", "a", 1, 1.0));
        s.insert(pt("cpu", "a", 2, 2.0));
        s.insert(pt("cpu", "b", 1, 3.0));
        let m = s.measurement("cpu").unwrap();
        assert_eq!(m.series_iter().count(), 2);
        assert_eq!(m.row_count(), 3);
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let mut s = Storage::new();
        s.insert(pt("m", "a", 10, 1.0));
        s.insert(pt("m", "a", 5, 2.0));
        s.insert(pt("m", "a", 7, 3.0));
        let m = s.measurement("m").unwrap();
        let series = m.series_iter().next().unwrap();
        let ts: Vec<i64> = series.rows.iter().map(|r| r.timestamp).collect();
        assert_eq!(ts, vec![5, 7, 10]);
    }

    #[test]
    fn range_is_half_open() {
        let mut s = Storage::new();
        for t in 0..10 {
            s.insert(pt("m", "a", t, t as f64));
        }
        let m = s.measurement("m").unwrap();
        let series = m.series_iter().next().unwrap();
        let r = series.range(3, 7);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].timestamp, 3);
        assert_eq!(r[3].timestamp, 6);
    }

    #[test]
    fn matching_series_uses_index() {
        let mut s = Storage::new();
        s.insert(pt("m", "a", 1, 1.0));
        s.insert(pt("m", "b", 1, 1.0));
        let m = s.measurement("m").unwrap();
        let c = vec![("host".to_string(), "a".to_string())];
        assert_eq!(m.matching_series(&c).len(), 1);
        assert_eq!(m.matching_series(&[]).len(), 2);
    }

    #[test]
    fn drop_before_prunes_and_reindexes() {
        let mut s = Storage::new();
        s.insert(pt("m", "old", 1, 1.0));
        s.insert(pt("m", "new", 100, 1.0));
        let removed = s.drop_before(50);
        assert_eq!(removed, 1);
        let m = s.measurement("m").unwrap();
        assert_eq!(m.series_iter().count(), 1);
        assert!(m.tag_values("host") == vec!["new".to_string()]);
    }

    #[test]
    fn duplicate_timestamp_merges_fields_last_write_wins() {
        let mut s = Storage::new();
        s.insert(
            Point::new("m")
                .tag("host", "a")
                .field("x", 1.0)
                .field("y", 2.0)
                .timestamp(5),
        );
        // Same series, same timestamp: `x` is rewritten, `z` added, `y`
        // untouched — one row, not two.
        s.insert(
            Point::new("m")
                .tag("host", "a")
                .field("x", 10.0)
                .field("z", 3.0)
                .timestamp(5),
        );
        let m = s.measurement("m").unwrap();
        assert_eq!(m.row_count(), 1);
        let row = &m.series_iter().next().unwrap().rows[0];
        assert_eq!(row.fields["x"], FieldValue::Float(10.0));
        assert_eq!(row.fields["y"], FieldValue::Float(2.0));
        assert_eq!(row.fields["z"], FieldValue::Float(3.0));
        // A different series at the same timestamp still gets its own row.
        s.insert(pt("m", "b", 5, 1.0));
        assert_eq!(s.measurement("m").unwrap().row_count(), 2);
    }

    #[test]
    fn duplicate_timestamp_merges_out_of_order_too() {
        let mut s = Storage::new();
        s.insert(pt("m", "a", 10, 1.0));
        s.insert(pt("m", "a", 5, 2.0));
        // Duplicate of the non-terminal row: merged in place.
        s.insert(
            Point::new("m")
                .tag("host", "a")
                .field("value", 20.0)
                .timestamp(5),
        );
        let m = s.measurement("m").unwrap();
        let series = m.series_iter().next().unwrap();
        let ts: Vec<i64> = series.rows.iter().map(|r| r.timestamp).collect();
        assert_eq!(ts, vec![5, 10]);
        assert_eq!(series.rows[0].fields["value"], FieldValue::Float(20.0));
    }

    #[test]
    fn field_keys_accumulate() {
        let mut s = Storage::new();
        s.insert(Point::new("m").field("a", 1.0).timestamp(1));
        s.insert(Point::new("m").field("b", 1.0).timestamp(2));
        assert_eq!(
            s.measurement("m").unwrap().field_keys(),
            vec!["a".to_string(), "b".to_string()]
        );
    }
}
