//! In-memory columnar storage: measurement -> series -> time-ordered rows,
//! physically partitioned into a fixed number of shards by series key.
//!
//! Sharding layout
//! ---------------
//! Every series is placed on exactly one shard, chosen by an FNV-1a hash of
//! its canonical key (`measurement,tag=value,...`) modulo the fixed shard
//! count. The placement is deterministic: the same series lands on the same
//! shard regardless of insertion order, process, or thread count, so the
//! parallel query executor can scan shards independently and merge partial
//! results into a canonical order. All cross-series metadata — the series-id
//! allocator, the inverted tag index, field keys, and the id -> shard
//! placement map — stays measurement-global in [`MeasurementMeta`]; only the
//! row data itself is sharded. That keeps the two invariants the engine
//! relies on:
//!
//! * **one series, one shard**: duplicate-timestamp last-write-wins merges
//!   always happen within a single [`SeriesData`], never across shards;
//! * **global series ids**: `matching_series` still returns ids in ascending
//!   order over the whole measurement, which defines the canonical
//!   `(timestamp, series id)` row order every executor must reproduce.

use crate::index::TagIndex;
use crate::point::Point;
use crate::series::{SeriesId, SeriesKey};
use crate::value::FieldValue;
use std::collections::{BTreeMap, HashMap};

/// Number of storage shards. Fixed (not configurable per database) so that
/// series placement — and therefore every per-shard artifact such as scan
/// order and partial aggregates — is identical across runs and machines.
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// FNV-1a over the canonical series key, reduced modulo `shard_count`.
/// Deterministic and dependency-free; the same function the durable layer
/// could use to co-locate series on disk.
pub fn shard_of_key(canonical_key: &str, shard_count: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical_key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shard_count as u64) as usize
}

/// [`shard_of_key`] without materializing the canonical string: streams the
/// exact byte sequence `SeriesKey::canonical` would render
/// (`measurement,k=v,...`, tags in BTreeMap order) through the same FNV-1a
/// state. The batch ingest queues route every incoming point through this,
/// so placement stays identical to the row path at zero allocations.
pub fn shard_of_series(
    measurement: &str,
    tags: &BTreeMap<String, String>,
    shard_count: usize,
) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    feed(measurement.as_bytes());
    for (k, v) in tags {
        feed(b",");
        feed(k.as_bytes());
        feed(b"=");
        feed(v.as_bytes());
    }
    (h % shard_count as u64) as usize
}

/// One stored sample: timestamp plus the point's field set.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Nanosecond timestamp.
    pub timestamp: i64,
    /// Field name -> value.
    pub fields: BTreeMap<String, FieldValue>,
}

/// Data for a single series.
#[derive(Debug)]
pub struct SeriesData {
    /// Identity of the series.
    pub key: SeriesKey,
    /// Rows sorted by timestamp (append-mostly; out-of-order inserts are
    /// placed by binary search, as Influx's TSM engine effectively does).
    pub rows: Vec<Row>,
}

impl SeriesData {
    /// Insert a row, keeping rows time-sorted. A write at an existing
    /// timestamp does not append a duplicate row: its field set is merged
    /// into the existing one, last write winning per field — InfluxDB's
    /// duplicate-point semantics (and the same last-write-wins rule the
    /// durable chunk compactor applies on disk).
    fn insert(&mut self, row: Row) {
        match self.rows.last_mut() {
            Some(last) if last.timestamp == row.timestamp => {
                last.fields.extend(row.fields);
            }
            Some(last) if last.timestamp < row.timestamp => self.rows.push(row),
            None => self.rows.push(row),
            _ => {
                let pos = self.rows.partition_point(|r| r.timestamp <= row.timestamp);
                if pos > 0 && self.rows[pos - 1].timestamp == row.timestamp {
                    self.rows[pos - 1].fields.extend(row.fields);
                } else {
                    self.rows.insert(pos, row);
                }
            }
        }
    }

    /// Rows with `start <= ts < end`. An inverted window (`end < start`)
    /// is empty, not a panic.
    pub fn range(&self, start: i64, end: i64) -> &[Row] {
        let lo = self.rows.partition_point(|r| r.timestamp < start);
        let hi = self.rows.partition_point(|r| r.timestamp < end);
        &self.rows[lo..hi.max(lo)]
    }

    /// `[min, max]` timestamps of stored rows, `None` when empty. Used by
    /// the planner to prune whole series out of a time-ranged scan.
    pub fn time_bounds(&self) -> Option<(i64, i64)> {
        match (self.rows.first(), self.rows.last()) {
            (Some(a), Some(b)) => Some((a.timestamp, b.timestamp)),
            _ => None,
        }
    }
}

/// One storage shard: per-measurement series maps holding only the series
/// placed on this shard.
#[derive(Debug, Default)]
struct Shard {
    series: HashMap<String, BTreeMap<SeriesId, SeriesData>>,
}

/// Measurement-global metadata (series ids, placement, tag index, fields).
#[derive(Debug, Default)]
struct MeasurementMeta {
    series_ids: HashMap<SeriesKey, SeriesId>,
    /// id -> shard, ascending by id (defines canonical series iteration).
    placement: BTreeMap<SeriesId, usize>,
    index: TagIndex,
    field_keys: BTreeMap<String, ()>,
}

/// Read-only view over one measurement, stitching the global metadata back
/// together with the sharded row data. API-compatible with the pre-sharding
/// `Measurement` struct so the sequential oracle executor is unchanged.
#[derive(Clone, Copy)]
pub struct MeasurementView<'a> {
    name: &'a str,
    meta: &'a MeasurementMeta,
    shards: &'a [Shard],
}

impl<'a> MeasurementView<'a> {
    /// All series in ascending id order (canonical order).
    pub fn series_iter(&self) -> impl Iterator<Item = &'a SeriesData> + '_ {
        self.meta
            .placement
            .iter()
            .filter_map(move |(id, &shard)| self.shards[shard].series.get(self.name)?.get(id))
    }

    /// Look up one series by id.
    pub fn series(&self, id: SeriesId) -> Option<&'a SeriesData> {
        let shard = *self.meta.placement.get(&id)?;
        self.shards[shard].series.get(self.name)?.get(&id)
    }

    /// Shard holding a series.
    pub fn shard_of(&self, id: SeriesId) -> Option<usize> {
        self.meta.placement.get(&id).copied()
    }

    /// Series ids matching a set of tag constraints, using the inverted
    /// index when constraints exist, otherwise all series. Always ascending.
    pub fn matching_series(&self, constraints: &[(String, String)]) -> Vec<SeriesId> {
        match self.meta.index.lookup_all(constraints) {
            Some(set) => set.into_iter().collect(),
            None => self.meta.placement.keys().copied().collect(),
        }
    }

    /// Field keys ever written to this measurement (sorted).
    pub fn field_keys(&self) -> Vec<String> {
        self.meta.field_keys.keys().cloned().collect()
    }

    /// Distinct tag values for a key.
    pub fn tag_values(&self, key: &str) -> Vec<String> {
        self.meta.index.values_for_key(key)
    }

    /// Total number of stored rows across series.
    pub fn row_count(&self) -> usize {
        self.series_iter().map(|s| s.rows.len()).sum()
    }

    /// Number of series in this measurement.
    pub fn series_count(&self) -> usize {
        self.meta.placement.len()
    }
}

/// Whole-database storage shared behind the engine lock.
#[derive(Debug)]
pub struct Storage {
    shard_count: usize,
    shards: Vec<Shard>,
    meta: BTreeMap<String, MeasurementMeta>,
    next_series: u64,
}

impl Default for Storage {
    fn default() -> Self {
        Storage::with_shards(DEFAULT_SHARD_COUNT)
    }
}

impl Storage {
    /// Create empty storage with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create empty storage with an explicit shard count (tests exercise
    /// degenerate layouts such as a single shard).
    pub fn with_shards(shard_count: usize) -> Self {
        assert!(shard_count > 0, "shard count must be positive");
        Storage {
            shard_count,
            shards: (0..shard_count).map(|_| Shard::default()).collect(),
            meta: BTreeMap::new(),
            next_series: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Resolve `key` to its id and shard, allocating both on first
    /// appearance. `canonical` is the precomputed canonical key when the
    /// caller already rendered it (the columnar batch path); `None`
    /// renders on demand. Either way the shard is the FNV-1a placement
    /// [`shard_of_key`] defines, so batched and row-at-a-time inserts
    /// agree on layout.
    fn resolve_series(&mut self, key: &SeriesKey, canonical: Option<&str>) -> (SeriesId, usize) {
        let meta = self.meta.entry(key.measurement.clone()).or_default();
        match meta.series_ids.get(key) {
            Some(id) => (*id, meta.placement[id]),
            None => {
                let id = SeriesId(self.next_series);
                self.next_series += 1;
                let shard = match canonical {
                    Some(c) => shard_of_key(c, self.shard_count),
                    None => shard_of_key(&key.canonical(), self.shard_count),
                };
                meta.series_ids.insert(key.clone(), id);
                meta.placement.insert(id, shard);
                for (k, v) in &key.tags {
                    meta.index.insert(k, v, id);
                }
                self.shards[shard]
                    .series
                    .entry(key.measurement.clone())
                    .or_default()
                    .insert(
                        id,
                        SeriesData {
                            key: key.clone(),
                            rows: Vec::new(),
                        },
                    );
                (id, shard)
            }
        }
    }

    /// Insert one point, creating measurement/series as needed.
    pub fn insert(&mut self, point: Point) {
        let key = SeriesKey {
            measurement: point.measurement.clone(),
            tags: point.tags.clone(),
        };
        let (id, shard) = self.resolve_series(&key, None);
        let meta = self
            .meta
            .get_mut(&point.measurement)
            .expect("just resolved");
        for k in point.fields.keys() {
            meta.field_keys.insert(k.clone(), ());
        }
        let row = Row {
            timestamp: point.timestamp,
            fields: point.fields,
        };
        self.shards[shard]
            .series
            .get_mut(&point.measurement)
            .expect("shard map just ensured")
            .get_mut(&id)
            .expect("series just ensured")
            .insert(row);
    }

    /// Bulk-append rows of one series: the series is resolved (or
    /// created) exactly as [`Storage::insert`] would — same id-allocation
    /// order, same canonical-key shard placement — but once per call
    /// instead of once per point, and the shard map is walked once for
    /// the whole row set. Rows are inserted in the given order, so
    /// duplicate-timestamp last-write-wins merges resolve identically to
    /// inserting the rows one at a time.
    pub fn insert_series_rows(&mut self, key: &SeriesKey, rows: Vec<Row>) {
        self.insert_series_rows_placed(key, None, rows);
    }

    /// [`Storage::insert_series_rows`] with an optional precomputed
    /// canonical key, sparing the batch path a second render per new
    /// series.
    pub(crate) fn insert_series_rows_placed(
        &mut self,
        key: &SeriesKey,
        canonical: Option<&str>,
        rows: Vec<Row>,
    ) {
        let (id, shard) = self.resolve_series(key, canonical);
        let meta = self.meta.get_mut(&key.measurement).expect("just resolved");
        for row in &rows {
            for k in row.fields.keys() {
                meta.field_keys.insert(k.clone(), ());
            }
        }
        let series = self.shards[shard]
            .series
            .get_mut(&key.measurement)
            .expect("shard map just ensured")
            .get_mut(&id)
            .expect("series just ensured");
        for row in rows {
            series.insert(row);
        }
    }

    /// Access a measurement.
    pub fn measurement(&self, name: &str) -> Option<MeasurementView<'_>> {
        let (name, meta) = self.meta.get_key_value(name)?;
        Some(MeasurementView {
            name,
            meta,
            shards: &self.shards,
        })
    }

    /// All measurement names (sorted).
    pub fn measurement_names(&self) -> Vec<String> {
        self.meta.keys().cloned().collect()
    }

    /// Drop all rows strictly older than `cutoff` across every measurement
    /// and every shard; returns the number of rows removed. Empty series are
    /// pruned from their shard and removed from the measurement's index,
    /// id map, and placement map.
    pub fn drop_before(&mut self, cutoff: i64) -> usize {
        let mut removed = 0;
        let mut dead: Vec<(String, SeriesId)> = Vec::new();
        for shard in &mut self.shards {
            for (measurement, series) in shard.series.iter_mut() {
                for (id, s) in series.iter_mut() {
                    let keep_from = s.rows.partition_point(|r| r.timestamp < cutoff);
                    removed += keep_from;
                    s.rows.drain(..keep_from);
                    if s.rows.is_empty() {
                        dead.push((measurement.clone(), *id));
                    }
                }
            }
        }
        for (measurement, id) in dead {
            let Some(meta) = self.meta.get_mut(&measurement) else {
                continue;
            };
            let Some(shard) = meta.placement.remove(&id) else {
                continue;
            };
            if let Some(series) = self.shards[shard].series.get_mut(&measurement) {
                if let Some(s) = series.remove(&id) {
                    for (k, v) in &s.key.tags {
                        meta.index.remove(k, v, id);
                    }
                    meta.series_ids.remove(&s.key);
                }
            }
        }
        removed
    }

    /// Total rows stored.
    pub fn total_rows(&self) -> usize {
        self.meta
            .keys()
            .filter_map(|name| self.measurement(name))
            .map(|m| m.row_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(m: &str, host: &str, ts: i64, v: f64) -> Point {
        Point::new(m)
            .tag("host", host)
            .field("value", v)
            .timestamp(ts)
    }

    #[test]
    fn streamed_shard_hash_matches_canonical_render() {
        let keys = [
            SeriesKey::new("cpu", [("host", "skx"), ("core", "0")]),
            SeriesKey::new("m", [] as [(&str, &str); 0]),
            SeriesKey::new("od,d=", [("a,b", "c=d"), ("", "")]),
            SeriesKey::new("ünïcode", [("tag", "välue")]),
        ];
        for key in keys {
            for count in [1, 4, 16] {
                assert_eq!(
                    shard_of_series(&key.measurement, &key.tags, count),
                    shard_of_key(&key.canonical(), count),
                    "divergent placement for {:?}",
                    key.canonical()
                );
            }
        }
    }

    #[test]
    fn insert_creates_series_per_tagset() {
        let mut s = Storage::new();
        s.insert(pt("cpu", "a", 1, 1.0));
        s.insert(pt("cpu", "a", 2, 2.0));
        s.insert(pt("cpu", "b", 1, 3.0));
        let m = s.measurement("cpu").unwrap();
        assert_eq!(m.series_iter().count(), 2);
        assert_eq!(m.row_count(), 3);
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let mut s = Storage::new();
        s.insert(pt("m", "a", 10, 1.0));
        s.insert(pt("m", "a", 5, 2.0));
        s.insert(pt("m", "a", 7, 3.0));
        let m = s.measurement("m").unwrap();
        let series = m.series_iter().next().unwrap();
        let ts: Vec<i64> = series.rows.iter().map(|r| r.timestamp).collect();
        assert_eq!(ts, vec![5, 7, 10]);
        assert_eq!(series.time_bounds(), Some((5, 10)));
    }

    #[test]
    fn range_is_half_open() {
        let mut s = Storage::new();
        for t in 0..10 {
            s.insert(pt("m", "a", t, t as f64));
        }
        let m = s.measurement("m").unwrap();
        let series = m.series_iter().next().unwrap();
        let r = series.range(3, 7);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].timestamp, 3);
        assert_eq!(r[3].timestamp, 6);
    }

    #[test]
    fn inverted_range_is_empty() {
        let mut s = Storage::new();
        for t in 0..10 {
            s.insert(pt("m", "a", t, t as f64));
        }
        let m = s.measurement("m").unwrap();
        let series = m.series_iter().next().unwrap();
        assert!(series.range(7, 3).is_empty());
        assert!(series.range(20, 30).is_empty());
        assert!(series.range(5, 5).is_empty());
    }

    #[test]
    fn matching_series_uses_index() {
        let mut s = Storage::new();
        s.insert(pt("m", "a", 1, 1.0));
        s.insert(pt("m", "b", 1, 1.0));
        let m = s.measurement("m").unwrap();
        let c = vec![("host".to_string(), "a".to_string())];
        assert_eq!(m.matching_series(&c).len(), 1);
        assert_eq!(m.matching_series(&[]).len(), 2);
    }

    #[test]
    fn drop_before_prunes_and_reindexes() {
        let mut s = Storage::new();
        s.insert(pt("m", "old", 1, 1.0));
        s.insert(pt("m", "new", 100, 1.0));
        let removed = s.drop_before(50);
        assert_eq!(removed, 1);
        let m = s.measurement("m").unwrap();
        assert_eq!(m.series_iter().count(), 1);
        assert_eq!(m.series_count(), 1);
        assert!(m.tag_values("host") == vec!["new".to_string()]);
    }

    #[test]
    fn duplicate_timestamp_merges_fields_last_write_wins() {
        let mut s = Storage::new();
        s.insert(
            Point::new("m")
                .tag("host", "a")
                .field("x", 1.0)
                .field("y", 2.0)
                .timestamp(5),
        );
        // Same series, same timestamp: `x` is rewritten, `z` added, `y`
        // untouched — one row, not two.
        s.insert(
            Point::new("m")
                .tag("host", "a")
                .field("x", 10.0)
                .field("z", 3.0)
                .timestamp(5),
        );
        let m = s.measurement("m").unwrap();
        assert_eq!(m.row_count(), 1);
        let row = &m.series_iter().next().unwrap().rows[0];
        assert_eq!(row.fields["x"], FieldValue::Float(10.0));
        assert_eq!(row.fields["y"], FieldValue::Float(2.0));
        assert_eq!(row.fields["z"], FieldValue::Float(3.0));
        // A different series at the same timestamp still gets its own row.
        s.insert(pt("m", "b", 5, 1.0));
        assert_eq!(s.measurement("m").unwrap().row_count(), 2);
    }

    #[test]
    fn duplicate_timestamp_merges_out_of_order_too() {
        let mut s = Storage::new();
        s.insert(pt("m", "a", 10, 1.0));
        s.insert(pt("m", "a", 5, 2.0));
        // Duplicate of the non-terminal row: merged in place.
        s.insert(
            Point::new("m")
                .tag("host", "a")
                .field("value", 20.0)
                .timestamp(5),
        );
        let m = s.measurement("m").unwrap();
        let series = m.series_iter().next().unwrap();
        let ts: Vec<i64> = series.rows.iter().map(|r| r.timestamp).collect();
        assert_eq!(ts, vec![5, 10]);
        assert_eq!(series.rows[0].fields["value"], FieldValue::Float(20.0));
    }

    #[test]
    fn field_keys_accumulate() {
        let mut s = Storage::new();
        s.insert(Point::new("m").field("a", 1.0).timestamp(1));
        s.insert(Point::new("m").field("b", 1.0).timestamp(2));
        assert_eq!(
            s.measurement("m").unwrap().field_keys(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn placement_is_deterministic_and_insertion_order_free() {
        // Same series set inserted in two different orders: identical
        // shard placement, because placement depends only on the canonical
        // key hash.
        let hosts = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let mut fwd = Storage::new();
        for h in hosts {
            fwd.insert(pt("m", h, 1, 1.0));
        }
        let mut rev = Storage::new();
        for h in hosts.iter().rev() {
            rev.insert(pt("m", h, 1, 1.0));
        }
        for h in hosts {
            let key = SeriesKey {
                measurement: "m".into(),
                tags: std::iter::once(("host".to_string(), h.to_string())).collect(),
            };
            let expect = shard_of_key(&key.canonical(), DEFAULT_SHARD_COUNT);
            let mf = fwd.measurement("m").unwrap();
            let mr = rev.measurement("m").unwrap();
            let idf = mf.matching_series(&[("host".into(), h.into())])[0];
            let idr = mr.matching_series(&[("host".into(), h.into())])[0];
            assert_eq!(mf.shard_of(idf), Some(expect));
            assert_eq!(mr.shard_of(idr), Some(expect));
        }
    }

    #[test]
    fn series_spread_across_shards() {
        // With enough distinct tag sets, more than one shard must be
        // populated (sanity that the hash actually distributes).
        let mut s = Storage::new();
        for i in 0..64 {
            s.insert(pt("m", &format!("host{i}"), 1, 1.0));
        }
        let m = s.measurement("m").unwrap();
        let mut used: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for id in m.matching_series(&[]) {
            used.insert(m.shard_of(id).unwrap());
        }
        assert!(used.len() > 4, "expected spread, got {used:?}");
    }

    #[test]
    fn single_shard_storage_still_works() {
        let mut s = Storage::with_shards(1);
        s.insert(pt("m", "a", 1, 1.0));
        s.insert(pt("m", "b", 2, 2.0));
        let m = s.measurement("m").unwrap();
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.shard_of(m.matching_series(&[])[0]), Some(0));
    }
}
