//! Error type shared by every tsdb operation.

use std::fmt;

/// Errors produced by the time-series database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsdbError {
    /// The point carried no fields; InfluxDB rejects such writes too.
    EmptyFields,
    /// A write was rejected because the ingest limiter had no capacity left
    /// in the current window. This is the backpressure signal that produces
    /// the losses of Table III.
    IngestOverloaded {
        /// Points already accepted in the congested window.
        accepted_in_window: u64,
    },
    /// Line-protocol text failed to parse.
    LineProtocol(String),
    /// Query text failed to parse.
    QueryParse(String),
    /// The query referenced a measurement that does not exist.
    UnknownMeasurement(String),
    /// A retention policy name was not found.
    UnknownRetentionPolicy(String),
    /// The durable storage engine failed (WAL commit, chunk flush,
    /// compaction, or recovery).
    Storage(String),
    /// The replication layer failed: invalid quorum configuration or a
    /// quorum that cannot currently be assembled.
    Replication(String),
    /// A backup or point-in-time restore was refused: missing generation,
    /// manifest/chunk/archive corruption, or an archive sequence gap. The
    /// typed cause is preserved so callers can distinguish "nothing to
    /// restore" from "backup bytes are damaged".
    Backup(pmove_store::BackupError),
}

impl From<pmove_store::StoreError> for TsdbError {
    fn from(e: pmove_store::StoreError) -> Self {
        TsdbError::Storage(e.to_string())
    }
}

impl From<pmove_store::BackupError> for TsdbError {
    fn from(e: pmove_store::BackupError) -> Self {
        TsdbError::Backup(e)
    }
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::EmptyFields => write!(f, "point has no fields"),
            TsdbError::IngestOverloaded { accepted_in_window } => write!(
                f,
                "ingest overloaded: {accepted_in_window} points already accepted in window"
            ),
            TsdbError::LineProtocol(msg) => write!(f, "line protocol error: {msg}"),
            TsdbError::QueryParse(msg) => write!(f, "query parse error: {msg}"),
            TsdbError::UnknownMeasurement(m) => write!(f, "unknown measurement: {m}"),
            TsdbError::UnknownRetentionPolicy(p) => write!(f, "unknown retention policy: {p}"),
            TsdbError::Storage(msg) => write!(f, "storage engine error: {msg}"),
            TsdbError::Replication(msg) => write!(f, "replication error: {msg}"),
            TsdbError::Backup(e) => write!(f, "backup error: {e}"),
        }
    }
}

impl std::error::Error for TsdbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TsdbError::UnknownMeasurement("cpu".into());
        assert!(e.to_string().contains("cpu"));
        let e = TsdbError::IngestOverloaded {
            accepted_in_window: 7,
        };
        assert!(e.to_string().contains('7'));
    }
}
