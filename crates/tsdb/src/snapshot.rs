//! Snapshot export/import and downsampling.
//!
//! SUPERDB users "without P-MoVE ... can only download selected data for
//! ML training" (§III-E): the export path serializes selected series as
//! JSON. The downsampler implements the continuous-aggregation flow that
//! feeds `AGGObservationInterface` summaries.

use crate::aggregate::AggregateFn;
use crate::engine::Database;
use crate::error::TsdbError;
use crate::point::Point;
use serde_json::{json, Value};

/// Encode one field value for export. JSON numbers cannot carry every
/// `f64` bit pattern — `serde_json` serializes NaN as `null` and a
/// re-parse of `-0.0` may collapse the sign — so values are exported as
/// `{"bits": <u64>}` wrapping `f64::to_bits`, which round-trips every
/// payload (NaNs and signed zeros included) exactly.
fn encode_value(x: f64) -> Value {
    json!({ "bits": x.to_bits() })
}

/// Decode a field value written by [`encode_value`]. Plain JSON numbers
/// are still accepted so documents exported before the bit-exact encoding
/// (or written by hand) keep importing.
fn decode_value(v: &Value) -> Option<f64> {
    if let Some(bits) = v.get("bits").and_then(Value::as_u64) {
        return Some(f64::from_bits(bits));
    }
    v.as_f64()
}

/// Export every series of a measurement (optionally tag-filtered) as a
/// JSON document: `{measurement, points: [{t, tags, fields}]}`.
/// Field values are encoded bit-exactly; see [`encode_value`].
pub fn export_measurement(
    db: &Database,
    measurement: &str,
    tag: Option<(&str, &str)>,
) -> Result<Value, TsdbError> {
    let fields = db.field_keys(measurement);
    if fields.is_empty() {
        return Err(TsdbError::UnknownMeasurement(measurement.to_string()));
    }
    let where_clause = tag
        .map(|(k, v)| format!(" WHERE {k}='{v}'"))
        .unwrap_or_default();
    let q = format!("SELECT * FROM \"{measurement}\"{where_clause}");
    let rs = db.query(&q)?;
    let points: Vec<Value> = rs
        .rows
        .iter()
        .map(|row| {
            let fields: serde_json::Map<String, Value> = row
                .values
                .iter()
                .filter_map(|(k, v)| v.map(|x| (k.clone(), encode_value(x))))
                .collect();
            json!({"t": row.timestamp, "fields": fields})
        })
        .collect();
    Ok(json!({
        "measurement": measurement,
        "tag": tag.map(|(k, v)| json!({k: v})).unwrap_or(Value::Null),
        "points": points,
    }))
}

/// Import a document produced by [`export_measurement`] into a database;
/// returns points written.
pub fn import_measurement(db: &Database, doc: &Value) -> Result<usize, TsdbError> {
    let measurement = doc["measurement"]
        .as_str()
        .ok_or_else(|| TsdbError::LineProtocol("snapshot missing measurement".into()))?;
    let mut written = 0;
    for p in doc["points"].as_array().into_iter().flatten() {
        let mut point = Point::new(measurement).timestamp(p["t"].as_i64().unwrap_or(0));
        if let Some(tag) = doc["tag"].as_object() {
            for (k, v) in tag {
                if let Some(v) = v.as_str() {
                    point.tags.insert(k.clone(), v.to_string());
                }
            }
        }
        if let Some(fields) = p["fields"].as_object() {
            for (k, v) in fields {
                if let Some(v) = decode_value(v) {
                    point.fields.insert(k.clone(), v.into());
                }
            }
        }
        if db.write_point(point).is_ok() {
            written += 1;
        }
    }
    Ok(written)
}

/// Downsample a measurement into a new measurement: per bucket of
/// `interval` timestamp units, one point whose fields are `agg` over each
/// source field. Returns points written. The continuous-aggregation
/// building block for retention-friendly long-term storage.
pub fn downsample(
    db: &Database,
    source: &str,
    dest: &str,
    interval: i64,
    agg: AggregateFn,
    tag: Option<(&str, &str)>,
) -> Result<usize, TsdbError> {
    assert!(interval > 0, "interval must be positive");
    let fields = db.field_keys(source);
    if fields.is_empty() {
        return Err(TsdbError::UnknownMeasurement(source.to_string()));
    }
    let where_clause = tag
        .map(|(k, v)| format!(" WHERE {k}='{v}'"))
        .unwrap_or_default();

    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<i64, Vec<(String, f64)>> = BTreeMap::new();
    for field in &fields {
        let q = format!(
            "SELECT {}(\"{field}\") FROM \"{source}\"{where_clause} GROUP BY time({interval})",
            agg.name()
        );
        let rs = db.query(&q)?;
        for row in rs.rows {
            if let Some(Some(v)) = row.values.values().next() {
                buckets
                    .entry(row.timestamp)
                    .or_default()
                    .push((field.clone(), *v));
            }
        }
    }
    let mut written = 0;
    for (ts, fields) in buckets {
        let mut p = Point::new(dest).timestamp(ts);
        if let Some((k, v)) = tag {
            p.tags.insert(k.to_string(), v.to_string());
        }
        for (f, v) in fields {
            p.fields.insert(f, v.into());
        }
        if db.write_point(p).is_ok() {
            written += 1;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> Database {
        let db = Database::new("t");
        for t in 0..20 {
            db.write_point(
                Point::new("m")
                    .tag("tag", "o1")
                    .field("_cpu0", t as f64)
                    .field("_cpu1", (2 * t) as f64)
                    .timestamp(t),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn export_import_roundtrip() {
        let src = filled();
        let doc = export_measurement(&src, "m", Some(("tag", "o1"))).unwrap();
        assert_eq!(doc["points"].as_array().unwrap().len(), 20);

        let dst = Database::new("ml");
        let n = import_measurement(&dst, &doc).unwrap();
        assert_eq!(n, 20);
        let r = dst
            .query("SELECT \"_cpu1\" FROM \"m\" WHERE tag='o1'")
            .unwrap();
        assert_eq!(r.rows.len(), 20);
        assert_eq!(r.rows[3].values["_cpu1"], Some(6.0));
    }

    #[test]
    fn export_import_is_bit_exact_for_nan_and_signed_zero() {
        // serde_json would turn NaN into null and may collapse -0.0 on a
        // number round-trip; the bits encoding must preserve both.
        let weird = f64::from_bits(0x7ff8_dead_beef_0001); // NaN payload
        let src = Database::new("t");
        for (t, v) in [(0i64, f64::NAN), (1, -0.0), (2, 0.0), (3, weird)] {
            src.write_point(
                Point::new("m")
                    .tag("tag", "o1")
                    .field("_cpu0", v)
                    .timestamp(t),
            )
            .unwrap();
        }
        let doc = export_measurement(&src, "m", Some(("tag", "o1"))).unwrap();
        let dst = Database::new("ml");
        assert_eq!(import_measurement(&dst, &doc).unwrap(), 4);
        let want = src.query("SELECT \"_cpu0\" FROM \"m\"").unwrap();
        let got = dst.query("SELECT \"_cpu0\" FROM \"m\"").unwrap();
        assert_eq!(got.rows.len(), 4);
        for (a, b) in want.rows.iter().zip(&got.rows) {
            assert_eq!(a.timestamp, b.timestamp);
            let (x, y) = (a.values["_cpu0"].unwrap(), b.values["_cpu0"].unwrap());
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "t={}: {x:?} vs {y:?} lost bits in the JSON round-trip",
                a.timestamp
            );
        }
        // The encoding itself is the tagged-bits object, not a number.
        let p0 = &doc["points"][0]["fields"]["_cpu0"];
        assert!(p0.get("bits").is_some(), "values export as bits: {p0:?}");
        // Legacy plain-number documents still import.
        let legacy = json!({
            "measurement": "m", "tag": {"tag": "o1"},
            "points": [{"t": 9, "fields": {"_cpu0": 2.5}}],
        });
        let dst2 = Database::new("legacy");
        assert_eq!(import_measurement(&dst2, &legacy).unwrap(), 1);
    }

    #[test]
    fn export_unknown_measurement_errors() {
        let db = Database::new("t");
        assert!(export_measurement(&db, "ghost", None).is_err());
        assert!(downsample(&db, "ghost", "d", 5, AggregateFn::Mean, None).is_err());
    }

    #[test]
    fn downsample_means_per_bucket() {
        let db = filled();
        let n = downsample(
            &db,
            "m",
            "m_5s_mean",
            5,
            AggregateFn::Mean,
            Some(("tag", "o1")),
        )
        .unwrap();
        assert_eq!(n, 4); // 20 points / 5-unit buckets
        let r = db
            .query("SELECT \"_cpu0\" FROM \"m_5s_mean\" WHERE tag='o1'")
            .unwrap();
        assert_eq!(r.rows.len(), 4);
        // First bucket: mean(0..=4) = 2.
        assert_eq!(r.rows[0].values["_cpu0"], Some(2.0));
        assert_eq!(r.rows[3].values["_cpu0"], Some(17.0));
    }

    #[test]
    fn downsample_then_retention_bounds_storage() {
        // The long-term pattern: downsample, then expire the raw series.
        let db = filled();
        downsample(&db, "m", "m_agg", 5, AggregateFn::Max, None).unwrap();
        db.add_retention_policy(crate::retention::RetentionPolicy::keep("raw", 2));
        let removed = db.enforce_retention(100).unwrap();
        // Raw rows and old aggregate buckets both expire under the shared
        // policy (real flows stamp aggregates at "now"); the store shrinks
        // to at most the retention window.
        assert!(removed >= 20, "raw rows expired");
        assert!(db.total_rows() <= 2);
    }
}
