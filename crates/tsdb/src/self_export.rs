//! Meta-telemetry: flush an observability snapshot into the database as
//! `pmove.self.*` time series, so the pipeline's own health is queryable
//! and dashboardable exactly like the telemetry it carries.
//!
//! Schema:
//!
//! * counters → measurement `pmove.self.<name>`, labels as tags, one
//!   `value` field holding the running total;
//! * gauges → measurement `pmove.self.<name>`, labels as tags, one
//!   `value` field holding the last value;
//! * histograms → measurement `pmove.self.<name>`, labels as tags, fields
//!   `count`, `sum`, `max`, `mean`, `p50`, `p90`, `p99`, plus
//!   `exemplar_trace_id`/`exemplar_value` when a trace-tagged sample was
//!   recorded;
//! * spans → measurement `pmove.self.span.<span name>` with fields
//!   `count`, `total_ns`, `min_ns`, `max_ns`, `mean_ns`, `p50_ns`,
//!   `p90_ns`, `p99_ns`, `last_start_ns`, `last_end_ns`.
//!
//! Metric names already rooted in `pmove.` (the SLO engine's
//! `pmove.slo.*` meta-metrics) keep their own name instead of gaining a
//! second prefix.
//!
//! Exports are deterministic: snapshots are sorted by metric key and all
//! values derive from the virtual clock, so two same-seed runs produce
//! identical `pmove.self.*` series.

use crate::engine::Database;
use crate::point::Point;
use pmove_obs::Snapshot;

/// Measurement prefix of all self-telemetry.
pub const SELF_PREFIX: &str = "pmove.self.";

/// Measurement prefix of exported span aggregates.
pub const SPAN_PREFIX: &str = "pmove.self.span.";

/// Metric names already rooted in the `pmove.` namespace (e.g. the SLO
/// engine's `pmove.slo.*` meta-metrics, the serving layer's
/// `pmove.serve.*` family) export under their own name; a second prefix
/// would bury them as `pmove.self.pmove.slo.*`.
pub fn measurement_for(name: &str) -> String {
    if name.starts_with("pmove.") {
        name.to_string()
    } else {
        format!("{SELF_PREFIX}{name}")
    }
}

fn tagged(name: &str, labels: &[(String, String)], t_ns: i64) -> Point {
    let mut p = Point::new(measurement_for(name)).timestamp(t_ns);
    for (k, v) in labels {
        p = p.tag(k, v);
    }
    p
}

/// Write every metric in `snap` into `db` at virtual time `t_ns`.
/// Returns the number of points written (one per metric/span).
pub fn export_snapshot(db: &Database, snap: &Snapshot, t_ns: i64) -> usize {
    let mut written = 0;
    for (key, total) in &snap.counters {
        let p = tagged(&key.name, &key.labels, t_ns).field("value", *total as f64);
        written += usize::from(db.write_point(p).is_ok());
    }
    for (key, value) in &snap.gauges {
        let p = tagged(&key.name, &key.labels, t_ns).field("value", *value);
        written += usize::from(db.write_point(p).is_ok());
    }
    for (key, h) in &snap.histograms {
        let mut p = tagged(&key.name, &key.labels, t_ns)
            .field("count", h.count as f64)
            .field("sum", h.sum as f64)
            .field("max", h.max as f64)
            .field("mean", h.mean)
            .field("p50", h.p50)
            .field("p90", h.p90)
            .field("p99", h.p99);
        if let Some((trace_id, value)) = h.exemplar {
            p = p
                .field("exemplar_trace_id", trace_id as f64)
                .field("exemplar_value", value as f64);
        }
        written += usize::from(db.write_point(p).is_ok());
    }
    for (name, s) in &snap.spans {
        let p = Point::new(format!("{SPAN_PREFIX}{name}"))
            .timestamp(t_ns)
            .field("count", s.count as f64)
            .field("total_ns", s.total_ns as f64)
            .field("min_ns", s.min_ns as f64)
            .field("max_ns", s.max_ns as f64)
            .field("mean_ns", s.mean_ns())
            .field("p50_ns", s.p50_ns)
            .field("p90_ns", s.p90_ns)
            .field("p99_ns", s.p99_ns)
            .field("last_start_ns", s.last_start_ns as f64)
            .field("last_end_ns", s.last_end_ns as f64);
        written += usize::from(db.write_point(p).is_ok());
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmove_obs::Registry;

    fn filled_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("pcp.transport.values_lost", &[("host", "skx")])
            .add(7);
        reg.gauge("pcp.transport.loss_pct", &[]).set(12.5);
        reg.histogram("tsdb.ingest_ns", &[], pmove_obs::latency_buckets())
            .record(5_000);
        reg.record_span("daemon.step3.kb_insert", 1_000, 4_000);
        reg
    }

    #[test]
    fn export_writes_all_metric_kinds() {
        let reg = filled_registry();
        let db = Database::new("meta");
        let n = export_snapshot(&db, &reg.snapshot(), 10_000_000_000);
        assert_eq!(n, 4);
        let ms = db.measurements();
        assert!(ms.contains(&"pmove.self.pcp.transport.values_lost".to_string()));
        assert!(ms.contains(&"pmove.self.pcp.transport.loss_pct".to_string()));
        assert!(ms.contains(&"pmove.self.tsdb.ingest_ns".to_string()));
        assert!(ms.contains(&"pmove.self.span.daemon.step3.kb_insert".to_string()));

        // Labels become tags; values are queryable like any telemetry.
        let r = db
            .query(
                "SELECT \"value\" FROM \"pmove.self.pcp.transport.values_lost\" WHERE host='skx'",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].values["value"], Some(7.0));
        let r = db
            .query("SELECT \"mean_ns\" FROM \"pmove.self.span.daemon.step3.kb_insert\"")
            .unwrap();
        assert_eq!(r.rows[0].values["mean_ns"], Some(3_000.0));
    }

    #[test]
    fn pmove_rooted_names_keep_their_prefix() {
        let reg = Registry::new();
        reg.gauge("pmove.slo.ingest_p99.burn_rate", &[]).set(2.0);
        reg.counter("pcp.sampler.ticks", &[]).inc();
        let db = Database::new("meta");
        export_snapshot(&db, &reg.snapshot(), 5);
        let ms = db.measurements();
        assert!(ms.contains(&"pmove.slo.ingest_p99.burn_rate".to_string()));
        assert!(ms.contains(&"pmove.self.pcp.sampler.ticks".to_string()));
        assert!(!ms.iter().any(|m| m.starts_with("pmove.self.pmove.")));
    }

    #[test]
    fn span_quantiles_and_exemplars_export() {
        let reg = Registry::new();
        for _ in 0..9 {
            reg.record_span("stage", 0, 1_000);
        }
        reg.record_span("stage", 0, 900_000);
        reg.histogram("tsdb.ingest_ns", &[], pmove_obs::latency_buckets())
            .record_exemplar(5_000, 0xDEAD);
        let db = Database::new("meta");
        export_snapshot(&db, &reg.snapshot(), 5);
        let r = db
            .query("SELECT \"p99_ns\" FROM \"pmove.self.span.stage\"")
            .unwrap();
        let p99 = r.rows[0].values["p99_ns"].unwrap();
        assert!(p99 > 1_000.0, "p99 should see the slow tail, got {p99}");
        let r = db
            .query("SELECT \"exemplar_trace_id\" FROM \"pmove.self.tsdb.ingest_ns\"")
            .unwrap();
        assert_eq!(r.rows[0].values["exemplar_trace_id"], Some(0xDEAD as f64));
    }

    #[test]
    fn same_state_exports_identical_series() {
        let db_a = Database::new("a");
        let db_b = Database::new("b");
        export_snapshot(&db_a, &filled_registry().snapshot(), 5);
        export_snapshot(&db_b, &filled_registry().snapshot(), 5);
        assert_eq!(db_a.measurements(), db_b.measurements());
        for m in db_a.measurements() {
            let q = format!("SELECT * FROM \"{m}\"");
            let (ra, rb) = (db_a.query(&q).unwrap(), db_b.query(&q).unwrap());
            assert_eq!(ra.rows, rb.rows, "{m}");
        }
    }
}
