//! The database engine: writes, queries, retention enforcement, live
//! subscriptions, and the ingest limiter that models database-side
//! backpressure.

use crate::batch::{BatchOutcome, ColumnarBatch};
use crate::cache::{CacheLookup, QueryCache};
use crate::error::TsdbError;
use crate::exec::{self, ExecMode, ExecStats};
use crate::line_protocol::{parse_series_key, render_series_key};
use crate::point::Point;
use crate::query::{Query, QueryResult};
use crate::retention::RetentionPolicy;
use crate::rollup::{RollupAudit, RollupConfig, RollupStore, RollupTickReport};
use crate::series::SeriesKey;
use crate::storage::{shard_of_key, Storage, DEFAULT_SHARD_COUNT};
use crate::subscribe::{Subscription, SubscriptionHub};
use crate::value::FieldValue;
use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock};
use pmove_obs::{Counter, Histogram, Registry, TraceContext, Tracer};
use pmove_store::{
    BackupAttach, BackupReport, BackupStats, ChunkInfo, ColumnValue, CompactionReport,
    QuarantinedChunk, RecoveryReport, RestoreReport, RowRecord, ScrubReport, Scrubber, StoreObs,
    StoreOptions, TsStore, Vfs,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Measurement holding gap-marker annotation points for time ranges the
/// durable store lost to quarantined chunks. Matches the marker
/// measurement the PCP shipper writes for transport outages
/// (`pmove_pcp::GAP_MEASUREMENT`), so one dashboard query surfaces both
/// kinds of hole.
pub const GAP_MEASUREMENT: &str = "pmove_gap";

/// Translate a stored field value into its durable column form.
pub(crate) fn column_of_field(v: &FieldValue) -> ColumnValue {
    match v {
        FieldValue::Float(x) => ColumnValue::F64(*x),
        FieldValue::Int(x) => ColumnValue::I64(*x),
        FieldValue::Bool(x) => ColumnValue::Bool(*x),
        FieldValue::Str(x) => ColumnValue::Str(x.clone()),
    }
}

/// Translate a recovered column value back into a field value.
fn field_of_column(v: ColumnValue) -> FieldValue {
    match v {
        ColumnValue::F64(x) => FieldValue::Float(x),
        ColumnValue::I64(x) => FieldValue::Int(x),
        ColumnValue::Bool(x) => FieldValue::Bool(x),
        ColumnValue::Str(x) => FieldValue::Str(x),
    }
}

/// Flatten a point into durable rows: one per field, filed under the
/// canonical series key.
fn rows_of_point(point: &Point) -> Vec<RowRecord> {
    let series = render_series_key(&point.measurement, &point.tags);
    point
        .fields
        .iter()
        .map(|(k, v)| {
            RowRecord::new(
                series.clone(),
                k.clone(),
                point.timestamp,
                column_of_field(v),
            )
        })
        .collect()
}

/// Mark every stored row's rollup bucket dirty — used when tiers are
/// first enabled or after storage is rebuilt wholesale from the durable
/// store, so the next tick folds the full history.
fn mark_all_rows(rs: &mut RollupStore, storage: &Storage) {
    for name in storage.measurement_names() {
        let Some(view) = storage.measurement(&name) else {
            continue;
        };
        for series in view.series_iter() {
            for row in &series.rows {
                rs.note_write(&name, row.timestamp);
            }
        }
    }
}

/// Models the maximum sustained point-insertion rate of the database.
///
/// InfluxDB 1.8 on the paper's host sustains a finite number of inserted
/// field values per second; once PCP's unbuffered samplers exceed that,
/// points are lost in transmission (Table III). The limiter is windowed:
/// at most `max_per_window` field values are accepted per `window` of
/// (virtual) time; further writes in the same window fail with
/// [`TsdbError::IngestOverloaded`].
#[derive(Debug, Clone)]
pub struct IngestLimiter {
    /// Window width in timestamp units.
    pub window: i64,
    /// Field values accepted per window.
    pub max_per_window: u64,
    current_window: i64,
    accepted_in_window: u64,
}

impl IngestLimiter {
    /// Unlimited ingest (no backpressure).
    pub fn unlimited() -> Self {
        IngestLimiter {
            window: i64::MAX,
            max_per_window: u64::MAX,
            current_window: 0,
            accepted_in_window: 0,
        }
    }

    /// Limit to `max_per_window` field values per `window` time units.
    pub fn per_window(window: i64, max_per_window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        IngestLimiter {
            window,
            max_per_window,
            current_window: i64::MIN,
            accepted_in_window: 0,
        }
    }

    /// Try to admit `n` field values at time `ts`.
    fn admit(&mut self, ts: i64, n: u64) -> Result<(), TsdbError> {
        if self.max_per_window == u64::MAX {
            return Ok(());
        }
        let w = ts.div_euclid(self.window);
        if w != self.current_window {
            self.current_window = w;
            self.accepted_in_window = 0;
        }
        if self.accepted_in_window + n > self.max_per_window {
            return Err(TsdbError::IngestOverloaded {
                accepted_in_window: self.accepted_in_window,
            });
        }
        self.accepted_in_window += n;
        Ok(())
    }
}

/// Counters describing the life of the database, used directly by the
/// Table III reproduction (`Inserted`, `Zeros`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Points offered to the engine.
    pub points_offered: u64,
    /// Points accepted and stored.
    pub points_inserted: u64,
    /// Field values accepted and stored (a point can carry several).
    pub values_inserted: u64,
    /// Field values that were numerically zero (the "batched zeros" the
    /// paper counts separately at high frequency).
    pub zero_values_inserted: u64,
    /// Points rejected by the ingest limiter.
    pub points_rejected: u64,
}

/// Hoisted `tsdb.*` metric handles for the hot write/query paths.
///
/// The ingest/query latency histograms are *modelled*: the engine is an
/// embedded deterministic stand-in, so instead of sampling the wall clock
/// (which would break bit-reproducibility), each operation records a
/// deterministic cost derived from the work it performed. The shapes —
/// per-field ingest cost, per-row scan cost — mirror the real database's
/// cost model, and two same-seed runs produce identical histograms.
struct EngineObs {
    registry: Arc<Registry>,
    points_offered: Arc<Counter>,
    points_inserted: Arc<Counter>,
    values_inserted: Arc<Counter>,
    zero_values_inserted: Arc<Counter>,
    points_rejected: Arc<Counter>,
    queries: Arc<Counter>,
    ingest_ns: Arc<Histogram>,
    query_ns: Arc<Histogram>,
    // Sharded query engine accounting.
    query_executions: Arc<Counter>,
    query_parallel: Arc<Counter>,
    query_shards_scanned: Arc<Counter>,
    query_rows_scanned: Arc<Counter>,
    query_series_pruned: Arc<Counter>,
    // Query-result cache accounting.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_insertions: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_invalidations: Arc<Counter>,
    // Columnar batch ingest accounting.
    batch_batches: Arc<Counter>,
    batch_points: Arc<Counter>,
    batch_rejected: Arc<Counter>,
    batch_wal_frames: Arc<Counter>,
    // Rollup tier accounting.
    rollup_ticks: Arc<Counter>,
    rollup_buckets_materialized: Arc<Counter>,
    rollup_rows_folded: Arc<Counter>,
    rollup_cells_written: Arc<Counter>,
    rollup_queries_routed: Arc<Counter>,
    rollup_buckets_tier: Arc<Counter>,
    rollup_buckets_raw: Arc<Counter>,
    // Point-in-time restore accounting.
    restore_runs: Arc<Counter>,
    restore_rows: Arc<Counter>,
    restore_replayed_records: Arc<Counter>,
    restore_dedup_rows: Arc<Counter>,
}

impl EngineObs {
    /// Modelled fixed cost of admitting one point (ns).
    const INGEST_BASE_NS: u64 = 4_000;
    /// Modelled per-field-value ingest cost (ns).
    const INGEST_PER_VALUE_NS: u64 = 450;
    /// Modelled fixed query planning/parse cost (ns).
    const QUERY_BASE_NS: u64 = 25_000;
    /// Modelled per-returned-row scan cost (ns).
    const QUERY_PER_ROW_NS: u64 = 900;

    fn new(registry: Arc<Registry>) -> EngineObs {
        let c = |name: &str| registry.counter(name, &[]);
        let buckets = pmove_obs::latency_buckets();
        EngineObs {
            points_offered: c("tsdb.points_offered"),
            points_inserted: c("tsdb.points_inserted"),
            values_inserted: c("tsdb.values_inserted"),
            zero_values_inserted: c("tsdb.zero_values_inserted"),
            points_rejected: c("tsdb.points_rejected"),
            queries: c("tsdb.queries"),
            ingest_ns: registry.histogram("tsdb.ingest_ns", &[], buckets.clone()),
            query_ns: registry.histogram("tsdb.query_ns", &[], buckets),
            query_executions: c("tsdb.query.executions"),
            query_parallel: c("tsdb.query.parallel"),
            query_shards_scanned: c("tsdb.query.shards_scanned"),
            query_rows_scanned: c("tsdb.query.rows_scanned"),
            query_series_pruned: c("tsdb.query.series_pruned"),
            cache_hits: c("tsdb.cache.hits"),
            cache_misses: c("tsdb.cache.misses"),
            cache_insertions: c("tsdb.cache.insertions"),
            cache_evictions: c("tsdb.cache.evictions"),
            cache_invalidations: c("tsdb.cache.invalidations"),
            batch_batches: c("tsdb.batch.batches"),
            batch_points: c("tsdb.batch.points"),
            batch_rejected: c("tsdb.batch.points_rejected"),
            batch_wal_frames: c("tsdb.batch.wal_frames"),
            rollup_ticks: c("tsdb.rollup.ticks"),
            rollup_buckets_materialized: c("tsdb.rollup.buckets_materialized"),
            rollup_rows_folded: c("tsdb.rollup.rows_folded"),
            rollup_cells_written: c("tsdb.rollup.cells_written"),
            rollup_queries_routed: c("tsdb.rollup.queries_routed"),
            rollup_buckets_tier: c("tsdb.rollup.buckets_tier"),
            rollup_buckets_raw: c("tsdb.rollup.buckets_raw"),
            restore_runs: c("tsdb.restore.runs"),
            restore_rows: c("tsdb.restore.rows_restored"),
            restore_replayed_records: c("tsdb.restore.records_replayed"),
            restore_dedup_rows: c("tsdb.restore.rows_deduped"),
            registry,
        }
    }
}

/// The embedded time-series database.
pub struct Database {
    name: String,
    storage: RwLock<Storage>,
    limiter: Mutex<IngestLimiter>,
    stats: Mutex<IngestStats>,
    retention: Mutex<Vec<RetentionPolicy>>,
    hub: SubscriptionHub,
    obs: Option<EngineObs>,
    /// Durable storage engine; `None` for a memory-only database.
    store: Option<Mutex<TsStore>>,
    /// Execution mode used by `query`/`query_parsed`.
    exec_mode: Mutex<ExecMode>,
    /// Normalized-text query-result cache.
    cache: Mutex<QueryCache>,
    /// Per-measurement write version: bumped on every accepted write and
    /// on retention/recovery, validating cache entries lazily.
    versions: Mutex<HashMap<String, u64>>,
    /// Continuous-query rollup tiers; `None` until
    /// [`Database::enable_rollups`]. Lock order: `storage` is always
    /// acquired before `rollups`, never the other way around.
    rollups: RwLock<Option<RollupStore>>,
}

impl Database {
    /// Create a database with unlimited ingest and the default infinite
    /// `autogen` retention policy.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            storage: RwLock::new(Storage::new()),
            limiter: Mutex::new(IngestLimiter::unlimited()),
            stats: Mutex::new(IngestStats::default()),
            retention: Mutex::new(vec![RetentionPolicy::infinite("autogen")]),
            hub: SubscriptionHub::new(),
            obs: None,
            store: None,
            exec_mode: Mutex::new(ExecMode::default()),
            cache: Mutex::new(QueryCache::default()),
            versions: Mutex::new(HashMap::new()),
            rollups: RwLock::new(None),
        }
    }

    /// Open a durable database over `vfs`: persisted chunks and surviving
    /// WAL records are replayed into memory, and every subsequent write is
    /// acknowledged only after its WAL group commit. Returns the database
    /// plus what recovery found.
    pub fn open(
        name: impl Into<String>,
        vfs: Arc<dyn Vfs>,
        opts: StoreOptions,
    ) -> Result<(Self, RecoveryReport), TsdbError> {
        let mut db = Database::new(name);
        let (store, report) = TsStore::open(vfs, opts)?;
        db.adopt_store(store)?;
        Ok((db, report))
    }

    /// [`Database::open`] with observability: `tsdb.*` engine metrics plus
    /// the store's `wal.*` / `compaction.*` series (exported under
    /// `pmove.self.`).
    pub fn open_with_obs(
        name: impl Into<String>,
        vfs: Arc<dyn Vfs>,
        opts: StoreOptions,
        registry: Arc<Registry>,
    ) -> Result<(Self, RecoveryReport), TsdbError> {
        let name = name.into();
        let store_obs = StoreObs::new(&registry, &name);
        let mut db = Database::with_obs(name, registry);
        let (store, report) = TsStore::open_with_obs(vfs, opts, Some(store_obs))?;
        db.adopt_store(store)?;
        Ok((db, report))
    }

    /// Replay the store's merged durable view into in-memory storage and
    /// attach it for subsequent writes.
    fn adopt_store(&mut self, mut store: TsStore) -> Result<(), TsdbError> {
        let rows = store.scan()?;
        self.load_rows(rows)?;
        // Chunks quarantined during recovery left holes in the durable
        // view; annotate each lost range so queries surface an explicit
        // gap marker instead of a silently shorter series.
        self.annotate_gaps(store.quarantined());
        // Recovered points bypass `write_point`, so refresh every
        // measurement's write version from what storage now holds.
        self.bump_all_versions();
        self.store = Some(Mutex::new(store));
        Ok(())
    }

    /// Group durable rows back into points — one per (series key,
    /// timestamp), fields re-assembled — and insert them into storage.
    fn load_rows(&self, rows: Vec<RowRecord>) -> Result<(), TsdbError> {
        let mut points: BTreeMap<(String, i64), BTreeMap<String, FieldValue>> = BTreeMap::new();
        for row in rows {
            points
                .entry((row.series, row.ts))
                .or_default()
                .insert(row.field, field_of_column(row.value));
        }
        let mut storage = self.storage.write();
        for ((series, ts), fields) in points {
            let (measurement, tags) = parse_series_key(&series)?;
            storage.insert(Point {
                measurement,
                tags,
                fields,
                timestamp: ts,
            });
        }
        Ok(())
    }

    /// Insert one in-memory [`GAP_MEASUREMENT`] marker point per
    /// quarantined chunk with a recoverable time range. The markers are
    /// deliberately not persisted: they are re-derived from the store's
    /// quarantine record on every boot/rebuild, so they can never be
    /// lost to the very corruption they describe.
    fn annotate_gaps(&self, quarantined: &[QuarantinedChunk]) {
        let mut marked = Vec::new();
        {
            let mut storage = self.storage.write();
            for q in quarantined {
                let Some((lo, hi)) = q.time_range else {
                    continue;
                };
                storage.insert(
                    Point::new(GAP_MEASUREMENT)
                        .tag("source", "store")
                        .tag("seq", format!("{:08}", q.seq))
                        .field("gap_start_s", lo as f64 / 1e9)
                        .field("gap_end_s", hi as f64 / 1e9)
                        .field("rows_lost", q.rows as f64)
                        .timestamp(hi),
                );
                marked.push(hi);
            }
        }
        for ts in marked {
            self.mark_rollup_write(GAP_MEASUREMENT, ts);
        }
    }

    /// Rebuild the in-memory view from the durable store: the store is
    /// re-scanned (CRC-verifying every chunk, quarantining damage as it
    /// goes) and storage is replaced with exactly what survived. Every
    /// known measurement's write version is bumped — including
    /// measurements that vanished entirely — so the query cache can never
    /// serve pre-rebuild rows. Returns `false` for a memory-only database.
    ///
    /// No gap markers are written here: this is the step that turns a
    /// quarantine into visible Merkle divergence so anti-entropy can
    /// repair the hole from replica peers, and a repaired range is not a
    /// gap. Callers with no repair path (standalone nodes, unreachable
    /// quorums) follow up with
    /// [`Database::annotate_quarantine_gaps`].
    pub fn rebuild_from_store(&self) -> Result<bool, TsdbError> {
        let Some(store) = &self.store else {
            return Ok(false);
        };
        let rows = store.lock().scan()?;
        *self.storage.write() = Storage::new();
        self.load_rows(rows)?;
        {
            let names = self.storage.read().measurement_names();
            let mut versions = self.versions.lock();
            for v in versions.values_mut() {
                *v += 1;
            }
            for name in names {
                versions.entry(name).or_insert(1);
            }
        }
        // The in-memory view was replaced wholesale: drop every
        // materialized tier and re-mark what now exists, so the next tick
        // refolds the rebuilt truth (storage lock before rollups lock).
        {
            let storage = self.storage.read();
            let mut guard = self.rollups.write();
            if let Some(rs) = guard.as_mut() {
                rs.clear();
                mark_all_rows(rs, &storage);
            }
        }
        Ok(true)
    }

    /// Insert a [`GAP_MEASUREMENT`] marker for every chunk the attached
    /// store has quarantined. Idempotent — each chunk's marker lands on a
    /// fixed (series, timestamp) cell, so re-annotation overwrites rather
    /// than duplicates. No-op for a memory-only database.
    pub fn annotate_quarantine_gaps(&self) {
        let quarantined = self.quarantined_chunks();
        if quarantined.is_empty() {
            return;
        }
        self.annotate_gaps(&quarantined);
        self.bump_version(GAP_MEASUREMENT);
    }

    /// Attach a backup destination to the durable store: every committed
    /// WAL frame is continuously archived to `dest`, and
    /// [`Database::backup_now`] captures consistent snapshot generations
    /// there. `Ok(None)` for a memory-only database.
    pub fn enable_backup(&self, dest: Arc<dyn Vfs>) -> Result<Option<BackupAttach>, TsdbError> {
        match &self.store {
            Some(store) => Ok(Some(store.lock().enable_backup(dest)?)),
            None => Ok(None),
        }
    }

    /// Set the archiver's group-archival threshold: the archive write to
    /// the backup destination happens once this many committed records
    /// are pending (flushes and snapshot fences always drain). No-op for
    /// memory-only databases or when backups are not enabled.
    pub fn set_archive_group(&self, group: u64) {
        if let Some(store) = &self.store {
            store.lock().set_archive_group(group);
        }
    }

    /// True when a durable store with an attached backup destination is
    /// present.
    pub fn backup_enabled(&self) -> bool {
        self.store
            .as_ref()
            .is_some_and(|s| s.lock().backup_enabled())
    }

    /// Stamp the store's virtual clock; archived records carry this
    /// timestamp, which is what point-in-time restore targets. No-op for
    /// memory-only databases.
    pub fn note_time(&self, vts: i64) {
        if let Some(store) = &self.store {
            store.lock().note_time(vts);
        }
    }

    /// Capture one complete snapshot generation on the backup destination:
    /// fence the WAL, copy every live chunk (CRC-verified on the way out),
    /// and commit the generation's manifest. `Ok(None)` when memory-only
    /// or no backup destination is attached.
    pub fn backup_now(&self) -> Result<Option<BackupReport>, TsdbError> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let mut store = store.lock();
        if !store.backup_enabled() {
            return Ok(None);
        }
        Ok(Some(store.backup_now()?))
    }

    /// Cumulative archiver/snapshot counters, `None` when no backup
    /// destination is attached.
    pub fn backup_stats(&self) -> Option<BackupStats> {
        self.store.as_ref().and_then(|s| s.lock().backup_stats())
    }

    /// The attached backup destination, if any.
    pub fn backup_dest(&self) -> Option<Arc<dyn Vfs>> {
        self.store.as_ref().and_then(|s| s.lock().backup_dest())
    }

    /// Point-in-time restore: rebuild this database from the backup at
    /// `src`. The newest snapshot generation with `fence_vts <= t_vts` is
    /// loaded into `target` and archived WAL records up to `t_vts` are
    /// replayed on top, every CRC verified — a typed
    /// [`TsdbError::Backup`] refusal on any gap or corruption, never a
    /// silently-wrong restore. On success the attached store is replaced,
    /// shards and rollup tiers are rebuilt from the restored bytes, and
    /// every measurement's write version is bumped so the query cache can
    /// never serve pre-restore rows.
    pub fn restore_at(
        &mut self,
        src: &dyn Vfs,
        target: Arc<dyn Vfs>,
        opts: StoreOptions,
        t_vts: i64,
    ) -> Result<RestoreReport, TsdbError> {
        let report = pmove_store::restore_at(src, Arc::clone(&target), t_vts)?;
        // The restored store deliberately gets no per-store `store.*`
        // metrics: registering a StoreObs would publish zero-valued
        // `store.scrub.last_full_pass` / `store.backup.last_success`
        // heartbeat gauges under this database's label, and the staleness
        // SLOs alert on the *oldest* matching label set — a restore drill
        // would page the very objectives it exists to protect. The
        // restore itself is accounted by the `tsdb.restore.*` counters.
        let store = TsStore::open(target, opts)?.0;
        self.store = Some(Mutex::new(store));
        self.rebuild_from_store()?;
        if let Some(obs) = &self.obs {
            obs.restore_runs.inc();
            obs.restore_rows.add(report.restored_rows);
            obs.restore_replayed_records.add(report.replayed_records);
            obs.restore_dedup_rows.add(report.dedup_rows);
        }
        Ok(report)
    }

    /// Construct a fresh database restored from the backup at `src` —
    /// the restore-drill and replica-bootstrap entry point. See
    /// [`Database::restore_at`] for the PITR semantics.
    pub fn restored_at(
        name: impl Into<String>,
        src: &dyn Vfs,
        target: Arc<dyn Vfs>,
        opts: StoreOptions,
        t_vts: i64,
    ) -> Result<(Database, RestoreReport), TsdbError> {
        let mut db = Database::new(name);
        let report = db.restore_at(src, target, opts, t_vts)?;
        Ok((db, report))
    }

    /// [`Database::restored_at`] with observability: the restored
    /// database's `tsdb.*` / store metrics land in `registry`, and the
    /// `tsdb.restore.*` counters record the restore itself.
    pub fn restored_at_with_obs(
        name: impl Into<String>,
        src: &dyn Vfs,
        target: Arc<dyn Vfs>,
        opts: StoreOptions,
        registry: Arc<Registry>,
        t_vts: i64,
    ) -> Result<(Database, RestoreReport), TsdbError> {
        let mut db = Database::with_obs(name.into(), registry);
        let report = db.restore_at(src, target, opts, t_vts)?;
        Ok((db, report))
    }

    /// Number of stored cells (series × timestamp × field triples) — the
    /// unit the integrity audit counts corruption and repair in.
    pub fn cell_count(&self) -> u64 {
        let mut n = 0u64;
        self.for_each_cell(&mut |_, _, _, _| n += 1);
        n
    }

    /// Advance the background scrubber one tick against the attached
    /// store on the virtual clock. `Ok(None)` when memory-only.
    pub fn scrub_tick(
        &self,
        scrubber: &mut Scrubber,
        now_s: f64,
    ) -> Result<Option<ScrubReport>, TsdbError> {
        match &self.store {
            Some(store) => Ok(Some(scrubber.tick(&mut store.lock(), now_s)?)),
            None => Ok(None),
        }
    }

    /// Chunks the attached store has quarantined over its lifetime
    /// (empty for a memory-only database).
    pub fn quarantined_chunks(&self) -> Vec<QuarantinedChunk> {
        match &self.store {
            Some(store) => store.lock().quarantined().to_vec(),
            None => Vec::new(),
        }
    }

    /// True when writes are backed by the durable storage engine.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Flush the store's memtable into a compressed immutable chunk and
    /// truncate the WAL. `Ok(None)` when memory-only or nothing to flush.
    pub fn flush(&self) -> Result<Option<ChunkInfo>, TsdbError> {
        match &self.store {
            Some(store) => Ok(store.lock().flush()?),
            None => Ok(None),
        }
    }

    /// Merge all on-disk chunks (last write wins per cell). `Ok(None)`
    /// when memory-only or there is nothing to merge.
    pub fn compact(&self) -> Result<Option<CompactionReport>, TsdbError> {
        match &self.store {
            Some(store) => Ok(store.lock().compact(None)?),
            None => Ok(None),
        }
    }

    /// [`Database::new`] with an observability registry attached: the
    /// write and query paths update `tsdb.*` counters and the modelled
    /// ingest/query latency histograms.
    pub fn with_obs(name: impl Into<String>, registry: Arc<Registry>) -> Self {
        let mut db = Database::new(name);
        db.obs = Some(EngineObs::new(registry));
        db
    }

    /// The attached observability registry, if any.
    pub fn obs_registry(&self) -> Option<&Arc<Registry>> {
        self.obs.as_ref().map(|o| &o.registry)
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Install an ingest limiter (replacing the current one).
    pub fn set_ingest_limiter(&self, limiter: IngestLimiter) {
        *self.limiter.lock() = limiter;
    }

    /// Write one point. Fails on empty fields or limiter rejection; on
    /// success the point is stored, counted, and published to subscribers.
    pub fn write_point(&self, point: Point) -> Result<(), TsdbError> {
        self.write_point_inner(point, None).map(|_| ())
    }

    /// Like [`Database::write_point`] but nests modeled child spans — a
    /// `tsdb.ingest` wrapper around the WAL group commit (durable mode
    /// only) and the shard ingest — under `parent`, laid out from
    /// `start_ns` on the virtual clock. Returns the write result plus
    /// the modeled end timestamp so the caller can close its own span
    /// after the ingest.
    pub fn write_point_traced(
        &self,
        point: Point,
        tracer: &Tracer,
        parent: TraceContext,
        start_ns: u64,
    ) -> (Result<(), TsdbError>, u64) {
        match self.write_point_inner(point, Some((tracer, parent, start_ns))) {
            Ok(end_ns) => (Ok(()), end_ns),
            Err(e) => (Err(e), start_ns),
        }
    }

    /// Shared write path. `trace`, when present, is `(tracer, parent
    /// span, modeled start)`; on success the returned timestamp is the
    /// modeled ingest end on the virtual clock (0 when untraced).
    fn write_point_inner(
        &self,
        point: Point,
        trace: Option<(&Tracer, TraceContext, u64)>,
    ) -> Result<u64, TsdbError> {
        {
            let mut stats = self.stats.lock();
            stats.points_offered += 1;
        }
        if let Some(o) = &self.obs {
            o.points_offered.inc();
        }
        if point.fields.is_empty() {
            return Err(TsdbError::EmptyFields);
        }
        let n = point.field_count() as u64;
        if let Err(e) = self.limiter.lock().admit(point.timestamp, n) {
            self.stats.lock().points_rejected += 1;
            if let Some(o) = &self.obs {
                o.points_rejected.inc();
            }
            return Err(e);
        }
        // Durability barrier: when a store is attached, the point is
        // framed into the WAL and group-committed before it is counted,
        // published, or made queryable — an acknowledged write is a
        // durable write.
        let mut commit_ns = 0u64;
        if let Some(store) = &self.store {
            let rows = rows_of_point(&point);
            let mut st = store.lock();
            st.append(&rows);
            let info = st.commit()?;
            commit_ns = st.modeled_commit_ns(info.bytes).max(1);
        }
        let zero_values = point.fields.values().filter(|v| v.is_zero()).count() as u64;
        {
            let mut stats = self.stats.lock();
            stats.points_inserted += 1;
            stats.values_inserted += n;
            stats.zero_values_inserted += zero_values;
        }
        let modeled_ns = EngineObs::INGEST_BASE_NS + EngineObs::INGEST_PER_VALUE_NS * n;
        if let Some(o) = &self.obs {
            o.points_inserted.inc();
            o.values_inserted.add(n);
            o.zero_values_inserted.add(zero_values);
            match &trace {
                // The trace exemplar ties the histogram's tail back to a
                // concrete trace in the flight recorder.
                Some((_, ctx, _)) if ctx.sampled => {
                    o.ingest_ns.record_exemplar(modeled_ns, ctx.trace.0)
                }
                _ => o.ingest_ns.record(modeled_ns),
            }
        }
        let end_ns = self.trace_ingest(&point, commit_ns, modeled_ns, &trace);
        self.hub.publish(&point);
        let measurement = point.measurement.clone();
        let ts = point.timestamp;
        self.storage.write().insert(point);
        self.mark_rollup_write(&measurement, ts);
        self.bump_version(&measurement);
        Ok(end_ns)
    }

    /// Lay out the modeled ingest spans for one accepted point:
    /// `tsdb.ingest` wrapping `store.wal.group_commit` (durable mode
    /// only, `commit_ns > 0`) then `tsdb.shard_ingest` (status carries
    /// the shard index the point's canonical series key routes to).
    /// Returns the modeled end timestamp (0 when untraced).
    fn trace_ingest(
        &self,
        point: &Point,
        commit_ns: u64,
        ingest_ns: u64,
        trace: &Option<(&Tracer, TraceContext, u64)>,
    ) -> u64 {
        let Some((tracer, parent, start_ns)) = trace else {
            return 0;
        };
        let (tracer, parent, start_ns) = (*tracer, *parent, *start_ns);
        let ingest = tracer.child(parent, "tsdb.ingest", start_ns);
        let mut cursor = start_ns;
        if commit_ns > 0 {
            let wal = tracer.child(ingest, "store.wal.group_commit", cursor);
            tracer.end_span(wal, cursor + commit_ns);
            cursor += commit_ns;
        }
        let series = render_series_key(&point.measurement, &point.tags);
        let shard = shard_of_key(&series, DEFAULT_SHARD_COUNT);
        let si = tracer.child(ingest, "tsdb.shard_ingest", cursor);
        tracer.end_span_status(si, cursor + ingest_ns, &format!("shard-{shard:02}"));
        cursor += ingest_ns;
        tracer.end_span(ingest, cursor);
        cursor
    }

    /// Apply a point replicated from another node (hinted-handoff replay
    /// or anti-entropy repair). Unlike [`Database::write_point`] this
    /// bypasses the ingest limiter and the client-facing [`IngestStats`]
    /// ledger — the replication coordinator owns value accounting and a
    /// repaired cell was already counted when it was first accepted — but
    /// it keeps the WAL durability barrier, the live-subscription publish,
    /// and the per-measurement write-version bump, so the LRU query cache
    /// can never serve pre-repair rows.
    pub fn apply_remote(&self, point: Point) -> Result<(), TsdbError> {
        self.apply_remote_inner(point, None).map(|_| ())
    }

    /// Like [`Database::apply_remote`] but nests the modeled ingest
    /// spans (WAL group commit + shard ingest) under `parent` — the
    /// hinted-handoff replay path of an end-to-end trace. Returns the
    /// result plus the modeled end timestamp.
    pub fn apply_remote_traced(
        &self,
        point: Point,
        tracer: &Tracer,
        parent: TraceContext,
        start_ns: u64,
    ) -> (Result<(), TsdbError>, u64) {
        match self.apply_remote_inner(point, Some((tracer, parent, start_ns))) {
            Ok(end_ns) => (Ok(()), end_ns),
            Err(e) => (Err(e), start_ns),
        }
    }

    fn apply_remote_inner(
        &self,
        point: Point,
        trace: Option<(&Tracer, TraceContext, u64)>,
    ) -> Result<u64, TsdbError> {
        if point.fields.is_empty() {
            return Err(TsdbError::EmptyFields);
        }
        let mut commit_ns = 0u64;
        if let Some(store) = &self.store {
            let rows = rows_of_point(&point);
            let mut st = store.lock();
            st.append(&rows);
            let info = st.commit()?;
            commit_ns = st.modeled_commit_ns(info.bytes).max(1);
        }
        if let Some(o) = &self.obs {
            o.registry.counter("tsdb.repl.remote_applied", &[]).inc();
        }
        let n = point.field_count() as u64;
        let modeled_ns = EngineObs::INGEST_BASE_NS + EngineObs::INGEST_PER_VALUE_NS * n;
        let end_ns = self.trace_ingest(&point, commit_ns, modeled_ns, &trace);
        self.hub.publish(&point);
        let measurement = point.measurement.clone();
        let ts = point.timestamp;
        self.storage.write().insert(point);
        self.mark_rollup_write(&measurement, ts);
        self.bump_version(&measurement);
        Ok(end_ns)
    }

    /// Current write version of one measurement: bumped on every accepted
    /// local or remote write (and on retention/recovery). Exposed so the
    /// replication tests can audit cache freshness.
    pub fn write_version(&self, measurement: &str) -> u64 {
        self.measurement_version(measurement)
    }

    /// Visit every stored cell in a deterministic order: measurements
    /// sorted by name, series ascending by id, rows ascending by
    /// timestamp, fields sorted by name. This is the walk the replication
    /// layer's Merkle trees are built over.
    pub fn for_each_cell(&self, f: &mut dyn FnMut(&SeriesKey, i64, &str, &FieldValue)) {
        let storage = self.storage.read();
        for name in storage.measurement_names() {
            let Some(view) = storage.measurement(&name) else {
                continue;
            };
            for series in view.series_iter() {
                for row in &series.rows {
                    for (field, value) in &row.fields {
                        f(&series.key, row.timestamp, field, value);
                    }
                }
            }
        }
    }

    /// Write a batch; returns how many points were accepted. Rejected points
    /// are dropped, matching the lossy fire-and-forget transport of PCP.
    pub fn write_points(&self, points: Vec<Point>) -> usize {
        points
            .into_iter()
            .map(|p| self.write_point(p))
            .filter(Result::is_ok)
            .count()
    }

    /// Write a batch given as line protocol text.
    pub fn write_line_protocol(&self, text: &str) -> Result<usize, TsdbError> {
        let points = crate::line_protocol::parse_batch(text)?;
        Ok(self.write_points(points))
    }

    /// Columnar batched write path. Admission (empty-field checks, limiter
    /// windows keyed on point timestamps, `points_offered`/`points_rejected`
    /// accounting) happens per point in arrival order, so a stream pushed
    /// through this path is observationally identical to row-at-a-time
    /// [`Database::write_point`] calls — same accepted set, same ledger,
    /// same stored rows bit for bit. What changes is the cost model: the
    /// admitted points are pivoted into per-series columns, framed into
    /// **one** WAL record, group-committed once, and bulk-inserted per
    /// shard. Crash mid-frame replays or drops the whole batch — never a
    /// prefix (see `store::wal` framing).
    ///
    /// A WAL commit error fails the entire call before anything is counted
    /// inserted or published; the caller may retry the same batch (last
    /// write wins makes the retry idempotent).
    pub fn write_batch(&self, points: Vec<Point>) -> Result<BatchOutcome, TsdbError> {
        let total = points.len();
        let mut results = Vec::with_capacity(total);
        let mut admitted = Vec::with_capacity(total);
        let mut rejected = 0usize;
        {
            // Stats and limiter move together so a concurrent row-at-a-time
            // writer can't interleave between the offered tick and the
            // admission decision.
            let mut stats = self.stats.lock();
            let mut limiter = self.limiter.lock();
            for point in points {
                stats.points_offered += 1;
                if point.fields.is_empty() {
                    results.push(Err(TsdbError::EmptyFields));
                    continue;
                }
                let n = point.field_count() as u64;
                match limiter.admit(point.timestamp, n) {
                    Ok(()) => {
                        results.push(Ok(()));
                        admitted.push(point);
                    }
                    Err(e) => {
                        stats.points_rejected += 1;
                        rejected += 1;
                        results.push(Err(e));
                    }
                }
            }
        }
        if let Some(o) = &self.obs {
            o.points_offered.add(total as u64);
            o.points_rejected.add(rejected as u64);
        }
        if admitted.is_empty() {
            if let Some(o) = &self.obs {
                o.batch_batches.inc();
                o.batch_rejected.add(rejected as u64);
            }
            return Ok(BatchOutcome {
                results,
                accepted: 0,
                rejected,
                series: 0,
                shards: 0,
                commit_ns: 0,
            });
        }
        let per_point: Vec<(u64, u64)> = admitted
            .iter()
            .map(|p| {
                (
                    p.field_count() as u64,
                    p.fields.values().filter(|v| v.is_zero()).count() as u64,
                )
            })
            .collect();
        let accepted = admitted.len();
        let batch = ColumnarBatch::build(admitted);
        // Durability barrier: the whole batch rides one WAL frame and one
        // group commit; acknowledgement implies the batch is durable.
        let mut commit_ns = 0u64;
        if let Some(store) = &self.store {
            let rows = batch.wal_rows();
            let mut st = store.lock();
            st.append_owned(rows);
            let info = st.commit()?;
            commit_ns = st.modeled_commit_ns(info.bytes).max(1);
        }
        let values: u64 = per_point.iter().map(|(n, _)| n).sum();
        let zeros: u64 = per_point.iter().map(|(_, z)| z).sum();
        {
            let mut stats = self.stats.lock();
            stats.points_inserted += accepted as u64;
            stats.values_inserted += values;
            stats.zero_values_inserted += zeros;
        }
        if let Some(o) = &self.obs {
            o.points_inserted.add(accepted as u64);
            o.values_inserted.add(values);
            o.zero_values_inserted.add(zeros);
            for (n, _) in &per_point {
                o.ingest_ns
                    .record(EngineObs::INGEST_BASE_NS + EngineObs::INGEST_PER_VALUE_NS * n);
            }
            o.batch_batches.inc();
            o.batch_points.add(accepted as u64);
            o.batch_rejected.add(rejected as u64);
            if self.store.is_some() {
                o.batch_wal_frames.inc();
            }
        }
        // Subscribers observe points in arrival order, exactly as the
        // row-at-a-time path publishes them. Reconstructing points clones
        // tag/field maps, so skip it entirely when nobody is listening.
        if !self.hub.is_empty() {
            for p in batch.arrival_points() {
                self.hub.publish(&p);
            }
        }
        let series = batch.series_count();
        let shards = batch.shard_spread();
        let mark_rollups = self.rollups.read().is_some();
        let rollup_marks: Vec<(String, Vec<i64>)> = if mark_rollups {
            batch
                .series()
                .iter()
                .map(|sc| (sc.key.measurement.clone(), sc.ts.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let measurements: std::collections::BTreeSet<String> = batch
            .series()
            .iter()
            .map(|sc| sc.key.measurement.clone())
            .collect();
        {
            let mut storage = self.storage.write();
            batch.apply(&mut storage);
        }
        if !rollup_marks.is_empty() {
            let mut guard = self.rollups.write();
            if let Some(rs) = guard.as_mut() {
                for (measurement, stamps) in &rollup_marks {
                    for ts in stamps {
                        rs.note_write(measurement, *ts);
                    }
                }
            }
        }
        for m in &measurements {
            self.bump_version(m);
        }
        Ok(BatchOutcome {
            results,
            accepted,
            rejected,
            series,
            shards,
            commit_ns,
        })
    }

    /// Enable continuous-query rollup tiers with the given configuration.
    /// Every row already stored is marked dirty so the first
    /// [`Database::rollup_tick`] materializes the existing history; rows
    /// written afterwards mark their buckets incrementally.
    pub fn enable_rollups(&self, cfg: RollupConfig) {
        let mut rs = RollupStore::new(cfg);
        {
            let storage = self.storage.read();
            mark_all_rows(&mut rs, &storage);
        }
        *self.rollups.write() = Some(rs);
    }

    /// True when rollup tiers are enabled.
    pub fn rollups_enabled(&self) -> bool {
        self.rollups.read().is_some()
    }

    /// Run one rollup materialization pass: every bucket marked dirty since
    /// the last tick is re-folded from raw storage into each tier. Bumps
    /// the write version of every measurement whose tiers changed so the
    /// query cache can never serve pre-rollup routing decisions. Returns
    /// `None` when rollups are not enabled.
    pub fn rollup_tick(&self) -> Option<RollupTickReport> {
        let (report, touched) = {
            // Lock order: storage before rollups. Readers of `rollups`
            // never wait on `storage` while holding it, so no cycle.
            let storage = self.storage.read();
            let mut guard = self.rollups.write();
            let rs = guard.as_mut()?;
            rs.tick(&storage)
        };
        for name in &touched {
            self.bump_version(name);
        }
        if let Some(o) = &self.obs {
            o.rollup_ticks.inc();
            o.rollup_buckets_materialized
                .add(report.buckets_materialized);
            o.rollup_rows_folded.add(report.rows_folded);
            o.rollup_cells_written.add(report.cells_written);
        }
        Some(report)
    }

    /// Conservation audit across the rollup path: every raw row must be
    /// accounted for by each materialized tier (tiers may hold **more**
    /// rows than raw after retention — tiers outlive raw deliberately —
    /// but never fewer once dirty buckets are drained). `None` when
    /// rollups are not enabled.
    pub fn rollup_audit(&self) -> Option<RollupAudit> {
        let storage = self.storage.read();
        let raw = storage.total_rows() as u64;
        self.rollups.read().as_ref().map(|rs| rs.audit(raw))
    }

    /// Materialized tier cells currently held across all measurements
    /// and tiers (0 when rollups are disabled).
    pub fn rollup_cell_count(&self) -> u64 {
        self.rollups.read().as_ref().map_or(0, |rs| rs.cell_count())
    }

    /// Mark one accepted write's bucket dirty in every rollup tier.
    /// Callers must NOT hold the `storage` lock (lock order: storage
    /// before rollups; this takes only `rollups`).
    fn mark_rollup_write(&self, measurement: &str, ts: i64) {
        let mut guard = self.rollups.write();
        if let Some(rs) = guard.as_mut() {
            rs.note_write(measurement, ts);
        }
    }

    /// Run a textual query.
    pub fn query(&self, text: &str) -> Result<QueryResult, TsdbError> {
        let q = Query::parse(text)?;
        self.query_parsed(&q)
    }

    /// Run a pre-parsed query in the database's current execution mode.
    pub fn query_parsed(&self, q: &Query) -> Result<QueryResult, TsdbError> {
        self.query_with_mode(q, *self.exec_mode.lock())
    }

    /// Run a pre-parsed query in an explicit execution mode.
    pub fn query_with_mode(&self, q: &Query, mode: ExecMode) -> Result<QueryResult, TsdbError> {
        self.query_arc_with_mode(q, mode).map(|r| (*r).clone())
    }

    /// Like [`Database::query_with_mode`] but returns the shared result,
    /// avoiding a row copy on cache hits (hot dashboard/bench path).
    pub fn query_arc_with_mode(
        &self,
        q: &Query,
        mode: ExecMode,
    ) -> Result<Arc<QueryResult>, TsdbError> {
        self.query_inner(q, mode, None).0.map(|(r, _)| r)
    }

    /// Like [`Database::query_arc_with_mode`] but also reports whether the
    /// result cache served the rows. The serving layer uses the flag for
    /// per-tenant hit/miss accounting without double-running the query.
    pub fn query_arc_cached(
        &self,
        q: &Query,
        mode: ExecMode,
    ) -> Result<(Arc<QueryResult>, bool), TsdbError> {
        self.query_inner(q, mode, None).0
    }

    /// Like [`Database::query_arc_with_mode`] but nests modeled query
    /// spans — a `tsdb.query` wrapper with a planning child plus one
    /// `tsdb.shard_scan` child per shard the executor visited (or a
    /// `tsdb.query.cache_hit` child when the result cache serves the
    /// rows) — under `parent`, laid out from `start_ns` on the virtual
    /// clock. Returns the result plus the modeled end timestamp.
    pub fn query_traced(
        &self,
        q: &Query,
        mode: ExecMode,
        tracer: &Tracer,
        parent: TraceContext,
        start_ns: u64,
    ) -> (Result<Arc<QueryResult>, TsdbError>, u64) {
        let (res, end_ns) = self.query_inner(q, mode, Some((tracer, parent, start_ns)));
        (res.map(|(r, _)| r), end_ns)
    }

    fn query_inner(
        &self,
        q: &Query,
        mode: ExecMode,
        trace: Option<(&Tracer, TraceContext, u64)>,
    ) -> (Result<(Arc<QueryResult>, bool), TsdbError>, u64) {
        let start_fallback = trace.as_ref().map(|(_, _, s)| *s).unwrap_or(0);
        // Capture the measurement's write version BEFORE executing: if a
        // write lands mid-query the entry is recorded under the older
        // version and fails validation on its next lookup — conservative,
        // never stale.
        let cache_enabled = self.cache.lock().capacity() > 0;
        let (cache_key, version) = if cache_enabled {
            let version = self.measurement_version(&q.measurement);
            let key = q.normalized();
            if let Some(hit) = self.cache_lookup(&key, version) {
                let rows = hit.rows.len() as u64;
                self.record_query_served_traced(rows, &trace);
                let end_ns = self.trace_query(rows, None, true, &trace);
                return (Ok((hit, true)), end_ns);
            }
            (Some(key), version)
        } else {
            (None, 0)
        };

        let run = {
            // Lock order: storage before rollups, matching every writer.
            let storage = self.storage.read();
            let rollups = self.rollups.read();
            exec::run_with_rollups(&storage, q, mode, rollups.as_ref())
        };
        if let Some(o) = &self.obs {
            o.query_executions.inc();
        }
        match run {
            Ok((result, stats)) => {
                let rows = result.rows.len() as u64;
                self.record_query_served_traced(rows, &trace);
                self.record_exec_stats(&stats);
                let end_ns = self.trace_query(rows, Some(&stats), false, &trace);
                let result = Arc::new(result);
                if let Some(key) = cache_key {
                    let evicted = self.cache.lock().insert(
                        key,
                        q.measurement.clone(),
                        version,
                        result.clone(),
                    );
                    if let Some(o) = &self.obs {
                        o.cache_insertions.inc();
                        o.cache_evictions.add(evicted as u64);
                    }
                }
                (Ok((result, false)), end_ns)
            }
            Err(e) => {
                self.record_query_served(0);
                (Err(e), start_fallback)
            }
        }
    }

    /// Lay out the modeled query spans: `tsdb.query` wrapping a planning
    /// child (or a cache-hit child) and the per-shard scan children. The
    /// total duration equals the modeled `tsdb.query_ns` sample so the
    /// trace tree and the histogram tell one story.
    fn trace_query(
        &self,
        rows: u64,
        stats: Option<&ExecStats>,
        cache_hit: bool,
        trace: &Option<(&Tracer, TraceContext, u64)>,
    ) -> u64 {
        let Some((tracer, parent, start_ns)) = trace else {
            return 0;
        };
        let (tracer, parent, start_ns) = (*tracer, *parent, *start_ns);
        let query = tracer.child(parent, "tsdb.query", start_ns);
        let mut cursor = start_ns + EngineObs::QUERY_BASE_NS;
        if cache_hit {
            let hit = tracer.child(query, "tsdb.query.cache_hit", start_ns);
            tracer.end_span(hit, cursor);
        } else {
            let plan = tracer.child(query, "tsdb.query.plan", start_ns);
            tracer.end_span(plan, cursor);
            let shards = stats.map(|s| s.shards_scanned).unwrap_or(0).max(1);
            let mut remaining = EngineObs::QUERY_PER_ROW_NS * rows;
            for i in 0..shards {
                let slice = (remaining / (shards - i)).max(1);
                let scan = tracer.child(query, "tsdb.shard_scan", cursor);
                tracer.end_span(scan, cursor + slice);
                cursor += slice;
                remaining = remaining.saturating_sub(slice);
            }
        }
        let end_ns =
            cursor.max(start_ns + EngineObs::QUERY_BASE_NS + EngineObs::QUERY_PER_ROW_NS * rows);
        tracer.end_span(query, end_ns);
        end_ns
    }

    /// Legacy served-query accounting: one `tsdb.queries` tick plus the
    /// modelled latency — identical for executed and cache-served queries,
    /// so enabling the cache never changes the exported histograms.
    fn record_query_served(&self, rows: u64) {
        self.record_query_served_traced(rows, &None);
    }

    /// [`Database::record_query_served`] with an optional trace exemplar
    /// tying the histogram sample back to the flight recorder.
    fn record_query_served_traced(&self, rows: u64, trace: &Option<(&Tracer, TraceContext, u64)>) {
        if let Some(o) = &self.obs {
            o.queries.inc();
            let modeled_ns = EngineObs::QUERY_BASE_NS + EngineObs::QUERY_PER_ROW_NS * rows;
            match trace {
                Some((_, ctx, _)) if ctx.sampled => {
                    o.query_ns.record_exemplar(modeled_ns, ctx.trace.0)
                }
                _ => o.query_ns.record(modeled_ns),
            }
        }
    }

    fn record_exec_stats(&self, stats: &ExecStats) {
        if let Some(o) = &self.obs {
            if stats.parallel {
                o.query_parallel.inc();
            }
            o.query_shards_scanned.add(stats.shards_scanned);
            o.query_rows_scanned.add(stats.rows_scanned);
            o.query_series_pruned.add(stats.series_pruned);
            if stats.rollup_routed {
                o.rollup_queries_routed.inc();
            }
            o.rollup_buckets_tier.add(stats.rollup_buckets_tier);
            o.rollup_buckets_raw.add(stats.rollup_buckets_raw);
        }
    }

    fn cache_lookup(&self, key: &str, version: u64) -> Option<Arc<QueryResult>> {
        let lookup = self.cache.lock().get(key, version);
        match lookup {
            CacheLookup::Hit(r) => {
                if let Some(o) = &self.obs {
                    o.cache_hits.inc();
                }
                Some(r)
            }
            CacheLookup::Stale => {
                if let Some(o) = &self.obs {
                    o.cache_invalidations.inc();
                    o.cache_misses.inc();
                }
                None
            }
            CacheLookup::Miss => {
                if let Some(o) = &self.obs {
                    o.cache_misses.inc();
                }
                None
            }
        }
    }

    fn measurement_version(&self, measurement: &str) -> u64 {
        self.versions.lock().get(measurement).copied().unwrap_or(0)
    }

    fn bump_version(&self, measurement: &str) {
        *self
            .versions
            .lock()
            .entry(measurement.to_string())
            .or_insert(0) += 1;
    }

    /// Bump every measurement's version. Iterates storage's measurement
    /// names (not the version map) so measurements populated outside
    /// `write_point` — e.g. recovered from the durable store — are covered.
    fn bump_all_versions(&self) {
        let names = self.storage.read().measurement_names();
        let mut versions = self.versions.lock();
        for name in names {
            *versions.entry(name).or_insert(0) += 1;
        }
    }

    /// Set the execution mode used by `query`/`query_parsed`.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        *self.exec_mode.lock() = mode;
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        *self.exec_mode.lock()
    }

    /// Resize the query-result cache (0 disables and clears it).
    pub fn set_query_cache_capacity(&self, capacity: usize) {
        self.cache.lock().set_capacity(capacity);
    }

    /// Number of currently cached query results.
    pub fn query_cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Current ingest statistics snapshot.
    pub fn stats(&self) -> IngestStats {
        *self.stats.lock()
    }

    /// Reset the ingest statistics (between experiment runs).
    pub fn reset_stats(&self) {
        *self.stats.lock() = IngestStats::default();
    }

    /// Register a retention policy.
    pub fn add_retention_policy(&self, policy: RetentionPolicy) {
        self.retention.lock().push(policy);
    }

    /// Enforce the tightest retention policy at virtual time `now`:
    /// expired rows are dropped from in-memory storage AND, when a store
    /// is attached, expired cells are compacted out of the on-disk chunk
    /// set. Returns rows removed from memory.
    pub fn enforce_retention(&self, now: i64) -> Result<usize, TsdbError> {
        let cutoff = self
            .retention
            .lock()
            .iter()
            .filter_map(|p| p.cutoff(now))
            .max();
        let Some(cutoff) = cutoff else {
            return Ok(0);
        };
        let removed = self.storage.write().drop_before(cutoff);
        if removed > 0 {
            self.bump_all_versions();
        }
        if let Some(store) = &self.store {
            store.lock().enforce_retention(cutoff)?;
        }
        Ok(removed)
    }

    /// Subscribe to live points.
    pub fn subscribe(&self, sub: Subscription) -> Receiver<Point> {
        self.hub.subscribe(sub)
    }

    /// Sorted list of measurement names.
    pub fn measurements(&self) -> Vec<String> {
        self.storage.read().measurement_names()
    }

    /// Field keys of one measurement.
    pub fn field_keys(&self, measurement: &str) -> Vec<String> {
        self.storage
            .read()
            .measurement(measurement)
            .map(|m| m.field_keys())
            .unwrap_or_default()
    }

    /// Distinct values of one tag key within a measurement.
    pub fn tag_values(&self, measurement: &str, tag_key: &str) -> Vec<String> {
        self.storage
            .read()
            .measurement(measurement)
            .map(|m| m.tag_values(tag_key))
            .unwrap_or_default()
    }

    /// Total number of stored rows (all measurements).
    pub fn total_rows(&self) -> usize {
        self.storage.read().total_rows()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.name)
            .field("rows", &self.total_rows())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::FieldValue;

    fn pt(ts: i64, v: f64) -> Point {
        Point::new("m").tag("tag", "o1").field("v", v).timestamp(ts)
    }

    #[test]
    fn write_and_query_roundtrip() {
        let db = Database::new("test");
        for t in 0..5 {
            db.write_point(pt(t, t as f64)).unwrap();
        }
        let r = db.query("SELECT \"v\" FROM \"m\" WHERE tag='o1'").unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(db.stats().points_inserted, 5);
    }

    #[test]
    fn empty_fields_rejected() {
        let db = Database::new("test");
        assert_eq!(db.write_point(Point::new("m")), Err(TsdbError::EmptyFields));
        assert_eq!(db.stats().points_offered, 1);
        assert_eq!(db.stats().points_inserted, 0);
    }

    #[test]
    fn limiter_drops_excess_within_window() {
        let db = Database::new("test");
        db.set_ingest_limiter(IngestLimiter::per_window(10, 3));
        // 5 single-field points in window [0, 10): only 3 admitted.
        let pts: Vec<Point> = (0..5).map(|i| pt(i, 1.0)).collect();
        let accepted = db.write_points(pts);
        assert_eq!(accepted, 3);
        assert_eq!(db.stats().points_rejected, 2);
        // next window admits again
        assert!(db.write_point(pt(10, 1.0)).is_ok());
    }

    #[test]
    fn zero_values_counted() {
        let db = Database::new("test");
        db.write_point(Point::new("m").field("a", 0.0).field("b", 1.0).timestamp(1))
            .unwrap();
        assert_eq!(db.stats().zero_values_inserted, 1);
        assert_eq!(db.stats().values_inserted, 2);
    }

    #[test]
    fn retention_enforcement() {
        let db = Database::new("test");
        db.add_retention_policy(RetentionPolicy::keep("short", 10));
        for t in 0..20 {
            db.write_point(pt(t, 1.0)).unwrap();
        }
        let removed = db.enforce_retention(20).unwrap();
        assert_eq!(removed, 10);
        assert_eq!(db.total_rows(), 10);
    }

    #[test]
    fn line_protocol_ingest() {
        let db = Database::new("test");
        let n = db
            .write_line_protocol("m,tag=o1 v=1 1\nm,tag=o1 v=2 2\n")
            .unwrap();
        assert_eq!(n, 2);
        let r = db.query("SELECT \"v\" FROM \"m\"").unwrap();
        assert_eq!(r.rows[1].values["v"], Some(2.0));
    }

    #[test]
    fn subscription_sees_writes() {
        let db = Database::new("test");
        let rx = db.subscribe(Subscription::measurement("m"));
        db.write_point(pt(1, 5.0)).unwrap();
        let got = crate::subscribe::drain(&rx);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].fields["v"], FieldValue::Float(5.0));
    }

    #[test]
    fn reset_stats_zeroes() {
        let db = Database::new("test");
        db.write_point(pt(1, 1.0)).unwrap();
        db.reset_stats();
        assert_eq!(db.stats(), IngestStats::default());
    }

    #[test]
    fn obs_counters_mirror_ingest_stats() {
        let reg = Registry::shared();
        let db = Database::with_obs("test", reg.clone());
        db.set_ingest_limiter(IngestLimiter::per_window(10, 3));
        let pts: Vec<Point> = (0..5).map(|i| pt(i, (i % 2) as f64)).collect();
        db.write_points(pts);
        db.query("SELECT \"v\" FROM \"m\"").unwrap();
        let st = db.stats();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("tsdb.points_offered", &[]),
            Some(st.points_offered)
        );
        assert_eq!(
            snap.counter("tsdb.points_inserted", &[]),
            Some(st.points_inserted)
        );
        assert_eq!(
            snap.counter("tsdb.points_rejected", &[]),
            Some(st.points_rejected)
        );
        assert_eq!(
            snap.counter("tsdb.zero_values_inserted", &[]),
            Some(st.zero_values_inserted)
        );
        assert_eq!(snap.counter("tsdb.queries", &[]), Some(1));
        // Modelled latencies: one histogram sample per insert / per query,
        // deterministic across runs.
        let ingest = snap.histogram("tsdb.ingest_ns", &[]).unwrap();
        assert_eq!(ingest.count, st.points_inserted);
        assert_eq!(ingest.max, 4_450);
        let query = snap.histogram("tsdb.query_ns", &[]).unwrap();
        assert_eq!(query.count, 1);
        assert_eq!(query.sum, 25_000 + 900 * 3);
    }

    #[test]
    fn durable_write_survives_reopen() {
        let vfs: Arc<dyn Vfs> = Arc::new(pmove_store::MemDisk::new(1));
        let opts = StoreOptions::default();
        let (db, report) = Database::open("test", vfs.clone(), opts).unwrap();
        assert!(db.is_durable());
        assert_eq!(report, RecoveryReport::default());
        for t in 0..5 {
            db.write_point(pt(t, t as f64)).unwrap();
        }
        drop(db);
        let (db, report) = Database::open("test", vfs, opts).unwrap();
        assert_eq!(report.wal_rows, 5);
        let r = db.query("SELECT \"v\" FROM \"m\" WHERE tag='o1'").unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.rows[4].values["v"], Some(4.0));
    }

    #[test]
    fn flush_and_compact_roundtrip_through_engine() {
        let vfs: Arc<dyn Vfs> = Arc::new(pmove_store::MemDisk::new(2));
        let opts = StoreOptions {
            flush_threshold_rows: 1_000_000, // manual flushes only
            compact_min_chunks: 1_000_000,
        };
        let (db, _) = Database::open("test", vfs.clone(), opts).unwrap();
        for t in 0..4 {
            db.write_point(pt(t, t as f64)).unwrap();
        }
        let chunk = db.flush().unwrap().unwrap();
        assert_eq!(chunk.rows, 4);
        for t in 4..8 {
            db.write_point(pt(t, t as f64)).unwrap();
        }
        db.flush().unwrap().unwrap();
        let report = db.compact().unwrap().unwrap();
        assert_eq!(report.chunks_in, 2);
        assert_eq!(report.rows_out, 8);
        // Chunks only — the WAL is empty — and a reopen sees all rows.
        drop(db);
        let (db, report) = Database::open("test", vfs, opts).unwrap();
        assert_eq!(report.chunks_loaded, 1);
        assert_eq!(report.wal_rows, 0);
        assert_eq!(db.query("SELECT \"v\" FROM \"m\"").unwrap().rows.len(), 8);
    }

    #[test]
    fn retention_enforcement_reaches_disk() {
        let vfs: Arc<dyn Vfs> = Arc::new(pmove_store::MemDisk::new(3));
        let opts = StoreOptions {
            flush_threshold_rows: 1_000_000,
            compact_min_chunks: 1_000_000,
        };
        let (db, _) = Database::open("test", vfs.clone(), opts).unwrap();
        db.add_retention_policy(RetentionPolicy::keep("short", 10));
        for t in 0..20 {
            db.write_point(pt(t, t as f64)).unwrap();
        }
        db.flush().unwrap();
        let removed = db.enforce_retention(20).unwrap();
        assert_eq!(removed, 10);
        // Queries after enforcement see only in-window points...
        let r = db.query("SELECT \"v\" FROM \"m\"").unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.rows[0].values["v"], Some(10.0));
        // ...and so does a cold reopen: the expired cells are gone from
        // the chunk set, not just from memory.
        drop(db);
        let (db, _) = Database::open("test", vfs, opts).unwrap();
        let r = db.query("SELECT \"v\" FROM \"m\"").unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.rows[0].values["v"], Some(10.0));
    }

    #[test]
    fn durable_obs_exports_wal_metrics() {
        let reg = Registry::shared();
        let vfs: Arc<dyn Vfs> = Arc::new(pmove_store::MemDisk::new(4));
        let (db, _) =
            Database::open_with_obs("influx", vfs, StoreOptions::default(), reg.clone()).unwrap();
        for t in 0..3 {
            db.write_point(pt(t, 1.0)).unwrap();
        }
        db.flush().unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("wal.records_appended", &[("db", "influx")]),
            Some(3)
        );
        assert_eq!(snap.counter("wal.commits", &[("db", "influx")]), Some(3));
        assert_eq!(
            snap.counter("compaction.snapshots", &[("db", "influx")]),
            Some(1)
        );
        assert!(
            snap.histogram("wal.commit_ns", &[("db", "influx")])
                .unwrap()
                .sum
                > 0
        );
    }

    /// Flip one bit near the tail of the store's first chunk on `disk` —
    /// in the value payload, so the structural probe can still recover
    /// the lost time range while the CRC proves the damage.
    fn rot_chunk0(disk: &pmove_store::MemDisk) {
        let name = pmove_store::chunk_name(0);
        let mut data = disk.read(&name).unwrap();
        let n = data.len();
        data[n - 2] ^= 0x01;
        let mut f = disk.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
    }

    fn manual_opts() -> StoreOptions {
        StoreOptions {
            flush_threshold_rows: 1_000_000,
            compact_min_chunks: 1_000_000,
        }
    }

    #[test]
    fn boot_quarantine_annotates_gap_marker() {
        let disk = pmove_store::MemDisk::new(40);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (db, _) = Database::open("test", vfs.clone(), manual_opts()).unwrap();
        for t in 0..4i64 {
            db.write_point(pt(t * 1_000_000_000, t as f64)).unwrap();
        }
        db.flush().unwrap().unwrap();
        drop(db);
        rot_chunk0(&disk);
        let (db, report) = Database::open("test", vfs, manual_opts()).unwrap();
        assert_eq!(report.chunks_skipped, 1);
        // The lost rows are gone (the measurement vanished with them) and
        // the hole is annotated, not silent.
        assert!(matches!(
            db.query("SELECT \"v\" FROM \"m\""),
            Err(TsdbError::UnknownMeasurement(_))
        ));
        let gaps = db
            .query(&format!("SELECT \"gap_end_s\" FROM \"{GAP_MEASUREMENT}\""))
            .unwrap();
        assert_eq!(gaps.rows.len(), 1);
        assert_eq!(gaps.rows[0].values["gap_end_s"], Some(3.0));
        assert_eq!(db.quarantined_chunks().len(), 1);
    }

    #[test]
    fn rebuild_after_quarantine_drops_rows_and_invalidates_cache() {
        let disk = pmove_store::MemDisk::new(41);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (db, _) = Database::open("test", vfs, manual_opts()).unwrap();
        for t in 0..4i64 {
            db.write_point(pt(t, t as f64)).unwrap();
        }
        db.flush().unwrap().unwrap();
        db.set_query_cache_capacity(8);
        let q = "SELECT \"v\" FROM \"m\"";
        assert_eq!(db.query(q).unwrap().rows.len(), 4);
        let v_before = db.write_version("m");
        rot_chunk0(&disk);
        // Scrub detects the rot and quarantines the chunk...
        let mut scrubber = pmove_store::Scrubber::new(pmove_store::ScrubConfig::default());
        let mut now = 0.0;
        while db.quarantined_chunks().is_empty() {
            db.scrub_tick(&mut scrubber, now).unwrap().unwrap();
            now += 1.0;
            assert!(now < 200.0, "scrub never found the rotted chunk");
        }
        // ...but the in-memory view (and the cache) still serve the old
        // rows until the rebuild makes the durable loss visible.
        assert_eq!(db.query(q).unwrap().rows.len(), 4);
        assert!(db.rebuild_from_store().unwrap());
        assert!(
            db.write_version("m") > v_before,
            "rebuild must bump versions"
        );
        // The measurement vanished with its only chunk; a stale cache hit
        // would have answered 4 rows here instead of erroring.
        assert!(matches!(db.query(q), Err(TsdbError::UnknownMeasurement(_))));
        // Standalone node: no repair path, so the gap gets annotated.
        db.annotate_quarantine_gaps();
        let gaps = db
            .query(&format!("SELECT \"rows_lost\" FROM \"{GAP_MEASUREMENT}\""))
            .unwrap();
        assert_eq!(gaps.rows.len(), 1);
        assert_eq!(gaps.rows[0].values["rows_lost"], Some(4.0));
    }

    #[test]
    fn cell_count_counts_field_values() {
        let db = Database::new("test");
        db.write_point(Point::new("m").field("a", 1.0).field("b", 2.0).timestamp(1))
            .unwrap();
        db.write_point(pt(2, 3.0)).unwrap();
        assert_eq!(db.cell_count(), 3);
    }

    #[test]
    fn metadata_introspection() {
        let db = Database::new("test");
        db.write_point(pt(1, 1.0)).unwrap();
        assert_eq!(db.measurements(), vec!["m".to_string()]);
        assert_eq!(db.field_keys("m"), vec!["v".to_string()]);
        assert_eq!(db.tag_values("m", "tag"), vec!["o1".to_string()]);
        assert!(db.field_keys("nosuch").is_empty());
    }
}
