//! The write unit of the database: a measurement name, a tag set, a field
//! set, and a timestamp.

use crate::value::FieldValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single data point, equivalent to one line of InfluxDB line protocol.
///
/// Tags are indexed dimensions (observation id, host name); fields carry the
/// sampled values (`_cpu0`, `_node1`, ...). P-MoVE links points back to KB
/// entries through the `tag` tag carrying the observation UUID.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Measurement name, e.g. `perfevent_hwcounters_fp_arith_scalar_double`.
    pub measurement: String,
    /// Indexed tag set. `BTreeMap` so the serialized tag key is canonical.
    pub tags: BTreeMap<String, String>,
    /// Field set; at least one field is required for a write to succeed.
    pub fields: BTreeMap<String, FieldValue>,
    /// Timestamp in nanoseconds since the (virtual) epoch.
    pub timestamp: i64,
}

impl Point {
    /// Start building a point for `measurement` at timestamp 0.
    pub fn new(measurement: impl Into<String>) -> Self {
        Point {
            measurement: measurement.into(),
            tags: BTreeMap::new(),
            fields: BTreeMap::new(),
            timestamp: 0,
        }
    }

    /// Attach a tag (builder style).
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.insert(key.into(), value.into());
        self
    }

    /// Attach a field (builder style).
    pub fn field(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Set the timestamp (builder style).
    pub fn timestamp(mut self, ts: i64) -> Self {
        self.timestamp = ts;
        self
    }

    /// Number of field values carried — each counts as one "data point" in
    /// the throughput accounting of Table III.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// True if every field in the point is numerically zero. High-frequency
    /// sampling in the paper produced *batched zero* insertions; the loss
    /// accounting needs to recognize them.
    pub fn all_zero(&self) -> bool {
        !self.fields.is_empty() && self.fields.values().all(FieldValue::is_zero)
    }

    /// Approximate serialized size in bytes (used by the network model).
    pub fn wire_size(&self) -> usize {
        let tag_len: usize = self.tags.iter().map(|(k, v)| k.len() + v.len() + 2).sum();
        let field_len: usize = self
            .fields
            .iter()
            .map(|(k, v)| k.len() + v.to_line_protocol().len() + 2)
            .sum();
        self.measurement.len() + tag_len + field_len + 20 // + timestamp digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Point {
        Point::new("cpu")
            .tag("host", "skx")
            .field("_cpu0", 1.0)
            .field("_cpu1", 0.0)
            .timestamp(123)
    }

    #[test]
    fn builder_accumulates() {
        let p = sample();
        assert_eq!(p.measurement, "cpu");
        assert_eq!(p.tags["host"], "skx");
        assert_eq!(p.field_count(), 2);
        assert_eq!(p.timestamp, 123);
    }

    #[test]
    fn all_zero_requires_every_field_zero() {
        assert!(!sample().all_zero());
        let z = Point::new("m").field("a", 0.0).field("b", 0i64);
        assert!(z.all_zero());
        let empty = Point::new("m");
        assert!(!empty.all_zero());
    }

    #[test]
    fn wire_size_is_positive_and_monotone() {
        let small = Point::new("m").field("a", 1.0);
        let big = Point::new("m")
            .field("a", 1.0)
            .field("bbbbbbbb", 2.0)
            .tag("t", "vvvvv");
        assert!(small.wire_size() > 0);
        assert!(big.wire_size() > small.wire_size());
    }
}
