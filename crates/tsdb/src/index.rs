//! Inverted tag index: `(tag key, tag value) -> set of series ids`.
//!
//! InfluxDB keeps an in-memory inverted index so `WHERE tag = 'v'` does not
//! scan every series; the automatically generated KB queries of the paper
//! (Listing 3) filter on the observation UUID tag, so this index is on the
//! hot path of every recall operation.

use crate::series::SeriesId;
use std::collections::{BTreeSet, HashMap};

/// Inverted index over tag pairs.
#[derive(Debug, Default)]
pub struct TagIndex {
    postings: HashMap<(String, String), BTreeSet<SeriesId>>,
    keys: HashMap<String, BTreeSet<String>>,
}

impl TagIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a series under one tag pair.
    pub fn insert(&mut self, key: &str, value: &str, series: SeriesId) {
        self.postings
            .entry((key.to_string(), value.to_string()))
            .or_default()
            .insert(series);
        self.keys
            .entry(key.to_string())
            .or_default()
            .insert(value.to_string());
    }

    /// Remove a series from one tag pair (used by retention when a series
    /// becomes empty).
    pub fn remove(&mut self, key: &str, value: &str, series: SeriesId) {
        if let Some(set) = self.postings.get_mut(&(key.to_string(), value.to_string())) {
            set.remove(&series);
            if set.is_empty() {
                self.postings.remove(&(key.to_string(), value.to_string()));
                if let Some(values) = self.keys.get_mut(key) {
                    values.remove(value);
                    if values.is_empty() {
                        self.keys.remove(key);
                    }
                }
            }
        }
    }

    /// Series carrying `key=value`.
    pub fn lookup(&self, key: &str, value: &str) -> Option<&BTreeSet<SeriesId>> {
        self.postings.get(&(key.to_string(), value.to_string()))
    }

    /// Intersect postings for several constraints. `None` constraint list
    /// semantics: an empty list yields `None` (caller should scan instead).
    pub fn lookup_all(&self, constraints: &[(String, String)]) -> Option<BTreeSet<SeriesId>> {
        let mut iter = constraints.iter();
        let first = iter.next()?;
        let mut acc = self.lookup(&first.0, &first.1).cloned().unwrap_or_default();
        for (k, v) in iter {
            match self.lookup(k, v) {
                Some(set) => acc = acc.intersection(set).copied().collect(),
                None => return Some(BTreeSet::new()),
            }
            if acc.is_empty() {
                break;
            }
        }
        Some(acc)
    }

    /// All values observed for a tag key (for `SHOW TAG VALUES`).
    pub fn values_for_key(&self, key: &str) -> Vec<String> {
        self.keys
            .get(key)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// All tag keys seen.
    pub fn tag_keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self.keys.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of distinct (key, value) postings.
    pub fn cardinality(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> TagIndex {
        let mut i = TagIndex::new();
        i.insert("host", "skx", SeriesId(1));
        i.insert("host", "skx", SeriesId(2));
        i.insert("host", "icl", SeriesId(3));
        i.insert("cpu", "0", SeriesId(1));
        i.insert("cpu", "0", SeriesId(3));
        i
    }

    #[test]
    fn lookup_single() {
        let i = idx();
        let s = i.lookup("host", "skx").unwrap();
        assert_eq!(s.len(), 2);
        assert!(i.lookup("host", "zen3").is_none());
    }

    #[test]
    fn lookup_intersection() {
        let i = idx();
        let c = vec![
            ("host".to_string(), "skx".to_string()),
            ("cpu".to_string(), "0".to_string()),
        ];
        let got = i.lookup_all(&c).unwrap();
        assert_eq!(got.into_iter().collect::<Vec<_>>(), vec![SeriesId(1)]);
    }

    #[test]
    fn lookup_all_empty_constraints_returns_none() {
        assert!(idx().lookup_all(&[]).is_none());
    }

    #[test]
    fn missing_constraint_gives_empty_set() {
        let c = vec![("host".to_string(), "nosuch".to_string())];
        assert!(idx().lookup_all(&c).unwrap().is_empty());
    }

    #[test]
    fn remove_cleans_up() {
        let mut i = idx();
        i.remove("host", "icl", SeriesId(3));
        assert!(i.lookup("host", "icl").is_none());
        assert_eq!(i.values_for_key("host"), vec!["skx".to_string()]);
    }

    #[test]
    fn introspection() {
        let i = idx();
        assert_eq!(i.tag_keys(), vec!["cpu".to_string(), "host".to_string()]);
        assert_eq!(i.cardinality(), 3);
        assert_eq!(
            i.values_for_key("host"),
            vec!["icl".to_string(), "skx".to_string()]
        );
    }
}
