//! Replicated storage: a [`ReplicaSet`] of N databases with quorum
//! configuration, per-shard Merkle trees for divergence detection, and
//! anti-entropy repair that streams only divergent ranges.
//!
//! The replica set is purely the *storage* side of replication: it owns
//! the N [`Database`] nodes (each optionally backed by its own durable
//! `pmove-store` log on a private seeded disk), builds Merkle summaries
//! over the cell space, and converges replicas bit-identically. Routing —
//! quorum writes, hinted handoff, heartbeats, failover — lives in the
//! `pmove-pcp` coordinator, which drives this type.
//!
//! ## Merkle layout
//!
//! The cell space of a replica is every `(series, timestamp, field,
//! value)` tuple it stores. Cells are placed by the same FNV-1a hash of
//! the canonical series key that shards the parallel query engine
//! ([`shard_of_key`]), giving [`DEFAULT_SHARD_COUNT`] shards; inside a
//! shard, a *locator* hash over (canonical key, timestamp) — value- and
//! field-independent, so divergent versions of a row land in the same
//! bucket on every replica — selects one of [`MERKLE_BUCKETS`] buckets.
//! A bucket's leaf is the XOR of its cells' *content* hashes (which do
//! cover field name and value bits, `f64::to_bits` for floats); XOR makes
//! the leaf independent of visit order, and last-write-wins storage
//! guarantees each (series, ts, field) appears exactly once per walk, so
//! no pair of identical cells can cancel. Shard root = FNV-1a over the
//! leaf array; set root = FNV-1a over shard roots. Two replicas hold
//! bit-identical data iff their roots agree.

use crate::engine::Database;
use crate::error::TsdbError;
use crate::exec::ExecMode;
use crate::point::Point;
use crate::query::{Query, QueryResult};
use crate::storage::{shard_of_key, DEFAULT_SHARD_COUNT};
use crate::value::FieldValue;
use pmove_obs::{Counter, Registry};
use pmove_store::{
    MemDisk, RecoveryReport, RestoreReport, ScrubConfig, Scrubber, StoreOptions, Vfs,
};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Buckets per shard in the Merkle summary. 16 shards x 32 buckets = 512
/// repairable ranges; a single divergent row re-streams 1/512th of the
/// keyspace, not the whole database.
pub const MERKLE_BUCKETS: usize = 32;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Locator hash: decides *where* a row lives in the tree. Covers the
/// canonical series key and timestamp only, so two replicas holding
/// different values for the same row still compare the same bucket.
fn locator_bucket(canonical: &str, ts: i64) -> usize {
    let h = fnv(fnv(FNV_BASIS, canonical.as_bytes()), &ts.to_le_bytes());
    (h % MERKLE_BUCKETS as u64) as usize
}

/// Content hash: decides whether two cells are *identical*. Covers the
/// full tuple; float values hash by `to_bits`, making the comparison
/// bit-exact (NaN payloads and signed zeros included).
fn content_hash(canonical: &str, ts: i64, field: &str, value: &FieldValue) -> u64 {
    let mut h = fnv(FNV_BASIS, canonical.as_bytes());
    h = fnv(h, &[0xfe]);
    h = fnv(h, &ts.to_le_bytes());
    h = fnv(h, &[0xfd]);
    h = fnv(h, field.as_bytes());
    h = fnv(h, &[0xfc]);
    match value {
        FieldValue::Float(x) => fnv(fnv(h, &[0]), &x.to_bits().to_le_bytes()),
        FieldValue::Int(x) => fnv(fnv(h, &[1]), &x.to_le_bytes()),
        FieldValue::Bool(x) => fnv(h, &[2, u8::from(*x)]),
        FieldValue::Str(s) => fnv(fnv(h, &[3]), s.as_bytes()),
    }
}

/// Merkle summary of one shard: a leaf per bucket plus the shard root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTree {
    /// XOR-combined content hashes, one per bucket.
    pub leaves: Vec<u64>,
    /// FNV-1a over the leaf array.
    pub root: u64,
}

/// Merkle summary of a whole replica, one [`ShardTree`] per storage shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleSnapshot {
    /// Per-shard trees, indexed by shard id.
    pub shards: Vec<ShardTree>,
}

impl MerkleSnapshot {
    /// Build the summary from a replica's current cell space.
    pub fn of(db: &Database) -> MerkleSnapshot {
        let mut leaves = vec![[0u64; MERKLE_BUCKETS]; DEFAULT_SHARD_COUNT];
        db.for_each_cell(&mut |key, ts, field, value| {
            let canonical = key.canonical();
            let shard = shard_of_key(&canonical, DEFAULT_SHARD_COUNT);
            let bucket = locator_bucket(&canonical, ts);
            leaves[shard][bucket] ^= content_hash(&canonical, ts, field, value);
        });
        let shards = leaves
            .into_iter()
            .map(|ls| {
                let mut root = FNV_BASIS;
                for l in &ls {
                    root = fnv(root, &l.to_le_bytes());
                }
                ShardTree {
                    leaves: ls.to_vec(),
                    root,
                }
            })
            .collect();
        MerkleSnapshot { shards }
    }

    /// Root over the whole replica.
    pub fn root(&self) -> u64 {
        let mut h = FNV_BASIS;
        for s in &self.shards {
            h = fnv(h, &s.root.to_le_bytes());
        }
        h
    }

    /// The `(shard, bucket)` ranges where two replicas diverge. Empty iff
    /// the replicas are bit-identical.
    pub fn diff(&self, other: &MerkleSnapshot) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (si, (a, b)) in self.shards.iter().zip(&other.shards).enumerate() {
            if a.root == b.root {
                continue;
            }
            for (bi, (la, lb)) in a.leaves.iter().zip(&b.leaves).enumerate() {
                if la != lb {
                    out.push((si, bi));
                }
            }
        }
        out
    }
}

/// Quorum and hint-queue configuration for a replica set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplConfig {
    /// Number of replicas (RF).
    pub replication_factor: usize,
    /// Acks required before a write counts as inserted (W).
    pub write_quorum: usize,
    /// Replicas consulted by a quorum read (R).
    pub read_quorum: usize,
    /// Field values a single replica's hint queue may hold before
    /// drop-oldest eviction (0 disables hinted handoff).
    pub hint_capacity_values: u64,
    /// Consecutive missed heartbeats before the coordinator quarantines a
    /// replica (and fails over if it was the primary).
    pub heartbeat_miss_limit: u32,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            replication_factor: 3,
            write_quorum: 2,
            read_quorum: 2,
            hint_capacity_values: 4096,
            heartbeat_miss_limit: 3,
        }
    }
}

impl ReplConfig {
    /// Validate quorum arithmetic: `1 <= W,R <= RF` and a positive miss
    /// limit. (W + R > RF gives read-your-writes after repair; smaller
    /// quorums are legal but only eventually consistent, so the default
    /// keeps W + R = 4 > 3 = RF.)
    pub fn validate(&self) -> Result<(), TsdbError> {
        let bad = |field: &str, got: usize| {
            Err(TsdbError::Replication(format!(
                "invalid {field}: {got} (rf={})",
                self.replication_factor
            )))
        };
        if self.replication_factor == 0 {
            return bad("replication_factor", 0);
        }
        if self.write_quorum == 0 || self.write_quorum > self.replication_factor {
            return bad("write_quorum", self.write_quorum);
        }
        if self.read_quorum == 0 || self.read_quorum > self.replication_factor {
            return bad("read_quorum", self.read_quorum);
        }
        if self.heartbeat_miss_limit == 0 {
            return bad("heartbeat_miss_limit", 0);
        }
        Ok(())
    }
}

/// What a repair pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Anti-entropy rounds executed.
    pub rounds: u64,
    /// Divergent `(shard, bucket)` ranges re-streamed (counted per
    /// replica pair per round).
    pub ranges_repaired: u64,
    /// Field values shipped between replicas during repair.
    pub cells_streamed: u64,
    /// True when every replica pair's Merkle roots agreed on exit.
    pub converged: bool,
}

/// What one integrity sweep ([`ReplicaSet::scrub_and_repair`]) over the
/// whole set did: the scrub work, the durable loss it uncovered, and the
/// read-repair that healed it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntegrityReport {
    /// Files (chunks + WALs) CRC-verified across all replicas.
    pub files_checked: u64,
    /// Bytes read and checksummed across all replicas.
    pub bytes_verified: u64,
    /// Chunks found damaged and quarantined this sweep.
    pub chunks_quarantined: u64,
    /// WAL logs rewritten losslessly from their memtables.
    pub wal_rewrites: u64,
    /// Cells (field values) the quarantines removed from replica state —
    /// measured as each victim's cell-count drop across its rebuild, so
    /// last-write-wins duplicates are never double-counted.
    pub cells_corrupted: u64,
    /// Cells restored onto damaged replicas by anti-entropy read-repair —
    /// measured as the victims' cell-count recovery, not stream volume.
    pub cells_repaired: u64,
    /// The anti-entropy work, when a repair ran.
    pub repair: RepairReport,
    /// True when every replica pair's Merkle roots agreed on exit.
    pub converged: bool,
}

/// Hoisted `tsdb.repl.*` repair metrics.
struct ReplSetObs {
    registry: Arc<Registry>,
    merkle_rounds: Arc<Counter>,
    merkle_ranges_repaired: Arc<Counter>,
    merkle_cells_streamed: Arc<Counter>,
    scrub_chunks_quarantined: Arc<Counter>,
    scrub_cells_corrupted: Arc<Counter>,
    scrub_cells_repaired: Arc<Counter>,
}

impl ReplSetObs {
    fn new(registry: &Arc<Registry>) -> ReplSetObs {
        ReplSetObs {
            registry: Arc::clone(registry),
            merkle_rounds: registry.counter("tsdb.repl.merkle_rounds", &[]),
            merkle_ranges_repaired: registry.counter("tsdb.repl.merkle_ranges_repaired", &[]),
            merkle_cells_streamed: registry.counter("tsdb.repl.merkle_cells_streamed", &[]),
            scrub_chunks_quarantined: registry.counter("tsdb.repl.scrub_chunks_quarantined", &[]),
            scrub_cells_corrupted: registry.counter("tsdb.repl.scrub_cells_corrupted", &[]),
            scrub_cells_repaired: registry.counter("tsdb.repl.scrub_cells_repaired", &[]),
        }
    }
}

/// A set of N replica databases plus the quorum configuration governing
/// them. See the module docs for the storage/routing split.
pub struct ReplicaSet {
    name: String,
    cfg: ReplConfig,
    replicas: Vec<Database>,
    disks: Vec<Arc<MemDisk>>,
    obs: Option<ReplSetObs>,
}

impl ReplicaSet {
    /// In-memory replica set (no durable logs); mostly for tests.
    pub fn in_memory(name: impl Into<String>, cfg: ReplConfig) -> Result<ReplicaSet, TsdbError> {
        cfg.validate()?;
        let name = name.into();
        let replicas = (0..cfg.replication_factor)
            .map(|i| Database::new(format!("{name}-r{i}")))
            .collect();
        Ok(ReplicaSet {
            name,
            cfg,
            replicas,
            disks: Vec::new(),
            obs: None,
        })
    }

    /// Durable replica set: each replica gets its own seeded [`MemDisk`]
    /// (seed derived per replica from `seed`) and its own WAL + chunk
    /// files, so a crash or fault on one replica's disk never touches the
    /// others. Returns per-replica recovery reports.
    pub fn durable(
        name: impl Into<String>,
        cfg: ReplConfig,
        seed: u64,
        opts: StoreOptions,
    ) -> Result<(ReplicaSet, Vec<RecoveryReport>), TsdbError> {
        cfg.validate()?;
        let name = name.into();
        let mut replicas = Vec::with_capacity(cfg.replication_factor);
        let mut disks = Vec::with_capacity(cfg.replication_factor);
        let mut reports = Vec::with_capacity(cfg.replication_factor);
        for i in 0..cfg.replication_factor {
            // SplitMix64-style per-replica seed derivation.
            let s = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
            let disk = Arc::new(MemDisk::new(s));
            let vfs: Arc<dyn Vfs> = disk.clone();
            let (db, report) = Database::open(format!("{name}-r{i}"), vfs, opts)?;
            replicas.push(db);
            disks.push(disk);
            reports.push(report);
        }
        Ok((
            ReplicaSet {
                name,
                cfg,
                replicas,
                disks,
                obs: None,
            },
            reports,
        ))
    }

    /// Attach an observability registry: repair passes update the
    /// `tsdb.repl.merkle_*` counters.
    pub fn with_obs(mut self, registry: &Arc<Registry>) -> ReplicaSet {
        self.obs = Some(ReplSetObs::new(registry));
        self
    }

    /// Replica-set name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Quorum configuration.
    pub fn config(&self) -> &ReplConfig {
        &self.cfg
    }

    /// Number of replicas (RF).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Never true: `validate` rejects RF = 0.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// One replica database.
    pub fn replica(&self, i: usize) -> &Database {
        &self.replicas[i]
    }

    /// All replicas.
    pub fn replicas(&self) -> &[Database] {
        &self.replicas
    }

    /// Per-replica disks (durable sets only; empty when in-memory).
    pub fn disks(&self) -> &[Arc<MemDisk>] {
        &self.disks
    }

    /// Merkle summary of one replica.
    pub fn merkle(&self, i: usize) -> MerkleSnapshot {
        MerkleSnapshot::of(&self.replicas[i])
    }

    /// True when every replica pair's Merkle roots agree.
    pub fn converged(&self) -> bool {
        let roots: Vec<u64> = (0..self.len()).map(|i| self.merkle(i).root()).collect();
        roots.windows(2).all(|w| w[0] == w[1])
    }

    /// One anti-entropy round: every replica pair compares Merkle trees
    /// and exchanges the union of its divergent `(shard, bucket)` ranges
    /// in both directions. Last-write-wins row merge makes the exchange
    /// idempotent and order-independent; because all writes originate from
    /// a single coordinator, no two replicas can hold *different* values
    /// for the same (series, ts, field), so the union converges replicas
    /// bit-identically rather than merely reconciling them.
    pub fn anti_entropy_round(&self) -> Result<RepairReport, TsdbError> {
        let mut report = RepairReport {
            rounds: 1,
            ..RepairReport::default()
        };
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                let div = self.merkle(i).diff(&self.merkle(j));
                if div.is_empty() {
                    continue;
                }
                report.ranges_repaired += div.len() as u64;
                let want: HashSet<(usize, usize)> = div.into_iter().collect();
                let from_i = collect_rows(&self.replicas[i], &want);
                let from_j = collect_rows(&self.replicas[j], &want);
                for p in from_i {
                    report.cells_streamed += p.field_count() as u64;
                    self.replicas[j].apply_remote(p)?;
                }
                for p in from_j {
                    report.cells_streamed += p.field_count() as u64;
                    self.replicas[i].apply_remote(p)?;
                }
            }
        }
        report.converged = self.converged();
        if let Some(o) = &self.obs {
            o.merkle_rounds.inc();
            o.merkle_ranges_repaired.add(report.ranges_repaired);
            o.merkle_cells_streamed.add(report.cells_streamed);
        }
        Ok(report)
    }

    /// Run anti-entropy rounds until the set converges or `max_rounds` is
    /// hit. A single round suffices for pairwise exchange of a union, so
    /// `converged` being false after 2+ rounds indicates a live writer.
    pub fn repair_until_converged(&self, max_rounds: u64) -> Result<RepairReport, TsdbError> {
        let mut total = RepairReport::default();
        for _ in 0..max_rounds {
            if self.converged() {
                break;
            }
            let r = self.anti_entropy_round()?;
            total.rounds += r.rounds;
            total.ranges_repaired += r.ranges_repaired;
            total.cells_streamed += r.cells_streamed;
        }
        total.converged = self.converged();
        Ok(total)
    }

    /// Replace replica `i` with a fresh node bootstrapped from the backup
    /// at `src` (newest generation with fence ≤ `t_vts` plus archived WAL
    /// replay), then converge the tail it missed via Merkle anti-entropy —
    /// the replaced node streams only the divergent ranges from its
    /// peers instead of a full re-sync. Durable sets only: the new node
    /// gets a fresh seeded disk derived from `seed`.
    pub fn bootstrap_from_backup(
        &mut self,
        i: usize,
        src: &dyn Vfs,
        opts: StoreOptions,
        seed: u64,
        t_vts: i64,
        max_rounds: u64,
    ) -> Result<(RestoreReport, RepairReport), TsdbError> {
        if i >= self.disks.len() {
            return Err(TsdbError::Replication(format!(
                "bootstrap_from_backup: no durable replica {i} (set has {} durable replicas)",
                self.disks.len()
            )));
        }
        let disk = Arc::new(MemDisk::new(seed | 1));
        let vfs: Arc<dyn Vfs> = disk.clone();
        let (db, restore) =
            Database::restored_at(format!("{}-r{i}", self.name), src, vfs, opts, t_vts)?;
        self.replicas[i] = db;
        self.disks[i] = disk;
        let repair = self.repair_until_converged(max_rounds)?;
        if let Some(obs) = &self.obs {
            obs.merkle_rounds.add(repair.rounds);
            obs.merkle_ranges_repaired.add(repair.ranges_repaired);
            obs.merkle_cells_streamed.add(repair.cells_streamed);
        }
        Ok((restore, repair))
    }

    /// One background scrubber per replica, sharing one pacing config.
    pub fn scrubbers(&self, cfg: ScrubConfig) -> Vec<Scrubber> {
        (0..self.len()).map(|_| Scrubber::new(cfg)).collect()
    }

    /// One integrity sweep at virtual time `now_s`: tick every replica's
    /// scrubber, and for each replica that quarantined a chunk, rebuild
    /// its in-memory view from the surviving durable state (making the
    /// loss visible as Merkle divergence) and run anti-entropy until the
    /// set converges — read-repair from the R-quorum of healthy peers.
    /// A hole that outlives `max_rounds` of repair is annotated with
    /// `pmove_gap` markers on the damaged replicas instead of being
    /// silently dropped.
    ///
    /// `scrubbers` must hold one scrubber per replica (see
    /// [`ReplicaSet::scrubbers`]); each keeps its own pass state so
    /// replicas scrub independently.
    pub fn scrub_and_repair(
        &self,
        scrubbers: &mut [Scrubber],
        now_s: f64,
        max_rounds: u64,
    ) -> Result<IntegrityReport, TsdbError> {
        if scrubbers.len() != self.len() {
            return Err(TsdbError::Replication(format!(
                "{} scrubbers for {} replicas",
                scrubbers.len(),
                self.len()
            )));
        }
        let mut report = IntegrityReport::default();
        let mut victims = Vec::new();
        for (i, scrubber) in scrubbers.iter_mut().enumerate() {
            let Some(r) = self.replicas[i].scrub_tick(scrubber, now_s)? else {
                continue;
            };
            report.files_checked += r.files_checked;
            report.bytes_verified += r.bytes_verified;
            if r.wal.is_some_and(|w| w.corrupt_frames > 0) {
                report.wal_rewrites += 1;
            }
            if !r.quarantined.is_empty() {
                report.chunks_quarantined += r.quarantined.len() as u64;
                if let Some(o) = &self.obs {
                    // One detection span per quarantined chunk, laid out
                    // over the tick's modeled verification time.
                    let start = (now_s * 1e9) as u64;
                    for _ in &r.quarantined {
                        o.registry
                            .record_span("scrub.detect", start, start + r.modeled_ns.max(1));
                    }
                }
                victims.push(i);
            }
        }
        // Turn each quarantine into visible divergence: replace the
        // victim's in-memory view with what actually survived on disk.
        for &i in &victims {
            let before = self.replicas[i].cell_count();
            self.replicas[i].rebuild_from_store()?;
            report.cells_corrupted += before.saturating_sub(self.replicas[i].cell_count());
        }
        if !victims.is_empty() {
            let base: Vec<u64> = victims
                .iter()
                .map(|&i| self.replicas[i].cell_count())
                .collect();
            report.repair = self.repair_until_converged(max_rounds)?;
            for (k, &i) in victims.iter().enumerate() {
                report.cells_repaired += self.replicas[i].cell_count().saturating_sub(base[k]);
            }
            if !report.repair.converged {
                for &i in &victims {
                    self.replicas[i].annotate_quarantine_gaps();
                }
            }
        }
        report.converged = self.converged();
        if let Some(o) = &self.obs {
            o.scrub_chunks_quarantined.add(report.chunks_quarantined);
            o.scrub_cells_corrupted.add(report.cells_corrupted);
            o.scrub_cells_repaired.add(report.cells_repaired);
        }
        Ok(report)
    }

    /// R-quorum read: require at least R reachable replicas, consult the
    /// first R of them, and serve from the freshest (most stored rows,
    /// ties to the lowest index — deterministic). After convergence every
    /// choice is bit-identical, so freshness only matters mid-repair.
    pub fn quorum_read_with_mode(
        &self,
        q: &Query,
        reachable: &[bool],
        mode: ExecMode,
    ) -> Result<QueryResult, TsdbError> {
        if reachable.len() != self.len() {
            return Err(TsdbError::Replication(format!(
                "reachability vector has {} entries for {} replicas",
                reachable.len(),
                self.len()
            )));
        }
        let up: Vec<usize> = (0..self.len()).filter(|&i| reachable[i]).collect();
        if up.len() < self.cfg.read_quorum {
            return Err(TsdbError::Replication(format!(
                "read quorum unreachable: {} of {} replicas up, R={}",
                up.len(),
                self.len(),
                self.cfg.read_quorum
            )));
        }
        let consulted = &up[..self.cfg.read_quorum];
        let mut best = consulted[0];
        for &i in consulted {
            if self.replicas[i].total_rows() > self.replicas[best].total_rows() {
                best = i;
            }
        }
        self.replicas[best].query_with_mode(q, mode)
    }

    /// [`ReplicaSet::quorum_read_with_mode`] returning the shared result
    /// plus whether the chosen replica's result cache served it — the
    /// serving front-end's per-tenant hit accounting over quorum reads.
    pub fn quorum_read_cached(
        &self,
        q: &Query,
        reachable: &[bool],
        mode: ExecMode,
    ) -> Result<(std::sync::Arc<QueryResult>, bool), TsdbError> {
        if reachable.len() != self.len() {
            return Err(TsdbError::Replication(format!(
                "reachability vector has {} entries for {} replicas",
                reachable.len(),
                self.len()
            )));
        }
        let up: Vec<usize> = (0..self.len()).filter(|&i| reachable[i]).collect();
        if up.len() < self.cfg.read_quorum {
            return Err(TsdbError::Replication(format!(
                "read quorum unreachable: {} of {} replicas up, R={}",
                up.len(),
                self.len(),
                self.cfg.read_quorum
            )));
        }
        let consulted = &up[..self.cfg.read_quorum];
        let mut best = consulted[0];
        for &i in consulted {
            if self.replicas[i].total_rows() > self.replicas[best].total_rows() {
                best = i;
            }
        }
        self.replicas[best].query_arc_cached(q, mode)
    }

    /// [`ReplicaSet::quorum_read_with_mode`] over query text with every
    /// replica reachable, in the replicas' default execution mode.
    pub fn quorum_read(&self, text: &str) -> Result<QueryResult, TsdbError> {
        let q = Query::parse(text)?;
        let reachable = vec![true; self.len()];
        let mode = self.replicas[0].exec_mode();
        self.quorum_read_with_mode(&q, &reachable, mode)
    }
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("name", &self.name)
            .field("rf", &self.cfg.replication_factor)
            .field("durable", &!self.disks.is_empty())
            .finish()
    }
}

/// Rows of `db` falling in the wanted `(shard, bucket)` ranges,
/// re-assembled into points (one per series + timestamp).
fn collect_rows(db: &Database, want: &HashSet<(usize, usize)>) -> Vec<Point> {
    let mut rows: BTreeMap<(String, i64), Point> = BTreeMap::new();
    db.for_each_cell(&mut |key, ts, field, value| {
        let canonical = key.canonical();
        let shard = shard_of_key(&canonical, DEFAULT_SHARD_COUNT);
        let bucket = locator_bucket(&canonical, ts);
        if !want.contains(&(shard, bucket)) {
            return;
        }
        let p = rows.entry((canonical, ts)).or_insert_with(|| Point {
            measurement: key.measurement.clone(),
            tags: key.tags.clone(),
            fields: BTreeMap::new(),
            timestamp: ts,
        });
        p.fields.insert(field.to_string(), value.clone());
    });
    rows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(tag: &str, ts: i64, v: f64) -> Point {
        Point::new("m").tag("host", tag).field("v", v).timestamp(ts)
    }

    #[test]
    fn config_validation() {
        assert!(ReplConfig::default().validate().is_ok());
        let c = ReplConfig {
            write_quorum: 4,
            ..ReplConfig::default()
        };
        assert!(matches!(c.validate(), Err(TsdbError::Replication(_))));
        let c = ReplConfig {
            read_quorum: 0,
            ..ReplConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ReplConfig {
            replication_factor: 0,
            ..ReplConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn merkle_roots_deterministic_and_order_independent() {
        let a = Database::new("a");
        let b = Database::new("b");
        for t in 0..50 {
            a.write_point(pt(&format!("h{}", t % 5), t, t as f64))
                .unwrap();
        }
        // Same cells, reversed arrival order.
        for t in (0..50).rev() {
            b.write_point(pt(&format!("h{}", t % 5), t, t as f64))
                .unwrap();
        }
        let (ma, mb) = (MerkleSnapshot::of(&a), MerkleSnapshot::of(&b));
        assert_eq!(ma.root(), mb.root());
        assert!(ma.diff(&mb).is_empty());
    }

    #[test]
    fn merkle_detects_value_divergence() {
        let a = Database::new("a");
        let b = Database::new("b");
        a.write_point(pt("h0", 1, 1.0)).unwrap();
        b.write_point(pt("h0", 1, 2.0)).unwrap();
        let d = MerkleSnapshot::of(&a).diff(&MerkleSnapshot::of(&b));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn repair_converges_bit_identically() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        // Replica 1 misses a window of writes; 2 misses a different one.
        for t in 0..60 {
            for (i, r) in set.replicas().iter().enumerate() {
                let missed = (i == 1 && (20..30).contains(&t)) || (i == 2 && (40..50).contains(&t));
                if !missed {
                    r.write_point(pt(&format!("h{}", t % 3), t, (t as f64).sin()))
                        .unwrap();
                }
            }
        }
        assert!(!set.converged());
        let report = set.repair_until_converged(4).unwrap();
        assert!(report.converged);
        assert!(report.ranges_repaired > 0);
        assert!(report.cells_streamed >= 20);
        // Bit-identical: every replica answers every query the same.
        let q = "SELECT \"v\" FROM \"m\"";
        let r0 = set.replica(0).query(q).unwrap();
        for i in 1..set.len() {
            let ri = set.replica(i).query(q).unwrap();
            assert_eq!(r0.rows.len(), ri.rows.len());
            for (x, y) in r0.rows.iter().zip(&ri.rows) {
                assert_eq!(x.timestamp, y.timestamp);
                assert_eq!(
                    x.values["v"].map(f64::to_bits),
                    y.values["v"].map(f64::to_bits)
                );
            }
        }
    }

    #[test]
    fn quorum_read_requires_r_reachable() {
        let set = ReplicaSet::in_memory("s", ReplConfig::default()).unwrap();
        for r in set.replicas() {
            r.write_point(pt("h0", 1, 1.0)).unwrap();
        }
        let q = Query::parse("SELECT \"v\" FROM \"m\"").unwrap();
        let ok = set.quorum_read_with_mode(&q, &[true, false, true], ExecMode::Sequential);
        assert_eq!(ok.unwrap().rows.len(), 1);
        let err = set.quorum_read_with_mode(&q, &[true, false, false], ExecMode::Sequential);
        assert!(matches!(err, Err(TsdbError::Replication(_))));
    }

    #[test]
    fn scrub_and_repair_heals_a_rotted_replica_bit_identically() {
        let (set, _) = ReplicaSet::durable(
            "s",
            ReplConfig::default(),
            11,
            StoreOptions {
                flush_threshold_rows: 1_000_000,
                compact_min_chunks: 1_000_000,
            },
        )
        .unwrap();
        for t in 0..30 {
            for r in set.replicas() {
                r.write_point(pt(&format!("h{}", t % 3), t, (t as f64).sin()))
                    .unwrap();
            }
        }
        for r in set.replicas() {
            r.flush().unwrap().unwrap();
        }
        let oracle = set.replica(0).query("SELECT \"v\" FROM \"m\"").unwrap();
        // Latent rot on replica 1's chunk namespace, fired at t=1s.
        set.disks()[1].schedule_rot(
            pmove_store::RotSchedule::none()
                .at(1.0, 1)
                .with_prefix("chunk-"),
        );
        set.disks()[1].advance_rot(1.0);
        let mut scrubbers = set.scrubbers(pmove_store::ScrubConfig {
            full_pass_period_s: 5.0,
            ..pmove_store::ScrubConfig::default()
        });
        let mut total = IntegrityReport::default();
        let mut now = 1.0;
        while total.chunks_quarantined == 0 {
            let r = set.scrub_and_repair(&mut scrubbers, now, 4).unwrap();
            total.chunks_quarantined += r.chunks_quarantined;
            total.cells_corrupted += r.cells_corrupted;
            total.cells_repaired += r.cells_repaired;
            assert!(r.converged, "sweep at t={now} left the set diverged");
            now += 1.0;
            assert!(now < 100.0, "scrub never found the rotted chunk");
        }
        assert_eq!(total.chunks_quarantined, 1);
        assert_eq!(total.cells_corrupted, 30);
        // The widened conservation identity: every corrupted cell came
        // back via read-repair, none were silently lost.
        assert_eq!(total.cells_repaired, total.cells_corrupted);
        assert!(set.converged());
        // The repaired replica answers bit-identically to the oracle.
        let healed = set.replica(1).query("SELECT \"v\" FROM \"m\"").unwrap();
        assert_eq!(healed.rows.len(), oracle.rows.len());
        for (a, b) in oracle.rows.iter().zip(&healed.rows) {
            assert_eq!(
                a.values["v"].map(f64::to_bits),
                b.values["v"].map(f64::to_bits)
            );
        }
        // Repair re-entered through apply_remote, which keeps the WAL
        // barrier: the healed cells are durable again.
        assert!(set.replica(1).is_durable());
    }

    #[test]
    fn durable_replicas_use_private_disks() {
        let (set, reports) =
            ReplicaSet::durable("s", ReplConfig::default(), 7, StoreOptions::default()).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(set.disks().len(), 3);
        for r in set.replicas() {
            assert!(r.is_durable());
            r.write_point(pt("h0", 1, 1.0)).unwrap();
        }
        assert!(set.converged());
        // apply_remote keeps the WAL barrier: remote rows are durable too.
        set.replica(0).apply_remote(pt("h1", 2, 2.0)).unwrap();
        assert_eq!(set.replica(0).total_rows(), 2);
    }
}
