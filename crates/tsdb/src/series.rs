//! Series identity: a series is one measurement + one canonical tag set.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Opaque, dense series identifier assigned at first write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesId(pub u64);

/// Canonical series key: measurement plus sorted `tag=value` pairs.
///
/// Two points with the same measurement and tag set belong to the same
/// series regardless of insertion order of their tags, matching InfluxDB
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Measurement this series belongs to.
    pub measurement: String,
    /// Canonically ordered tag set.
    pub tags: BTreeMap<String, String>,
}

impl SeriesKey {
    /// Build a key from a measurement and any iterable of tag pairs.
    pub fn new<I, K, V>(measurement: impl Into<String>, tags: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        SeriesKey {
            measurement: measurement.into(),
            tags: tags
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    /// Human-readable `measurement,k=v,k=v` form (stable because of BTreeMap).
    pub fn canonical(&self) -> String {
        let mut s = self.measurement.clone();
        for (k, v) in &self.tags {
            s.push(',');
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }

    /// Whether this series matches all `tag=value` constraints given.
    pub fn matches_tags(&self, constraints: &BTreeMap<String, String>) -> bool {
        constraints
            .iter()
            .all(|(k, v)| self.tags.get(k).is_some_and(|tv| tv == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_order_independent() {
        let a = SeriesKey::new("m", [("b", "2"), ("a", "1")]);
        let b = SeriesKey::new("m", [("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.canonical(), "m,a=1,b=2");
    }

    #[test]
    fn tag_matching() {
        let k = SeriesKey::new("m", [("host", "skx"), ("cpu", "0")]);
        let mut constraints = BTreeMap::new();
        assert!(k.matches_tags(&constraints)); // empty constraints match
        constraints.insert("host".into(), "skx".into());
        assert!(k.matches_tags(&constraints));
        constraints.insert("cpu".into(), "1".into());
        assert!(!k.matches_tags(&constraints));
        let mut missing = BTreeMap::new();
        missing.insert("rack".into(), "r1".into());
        assert!(!k.matches_tags(&missing));
    }
}
