//! Parallel sharded query executor.
//!
//! Determinism contract
//! --------------------
//! `run` with any [`ExecMode`] returns results **bit-identical** to the
//! sequential reference executor ([`crate::query::execute`]), for every
//! query and every thread count. The differential test harness
//! (`tests/differential.rs`) pins this. Three execution strategies, chosen
//! per plan:
//!
//! * **Raw scan** (no aggregates): each shard emits its rows as a run
//!   sorted by the canonical `(timestamp, series id)` key; runs are k-way
//!   merged. Keys are unique (duplicate timestamps within a series are
//!   LWW-merged at insert; a series lives on exactly one shard), so the
//!   merged order equals the oracle's stable sort by timestamp with
//!   ascending-id tie-break.
//! * **Exact partial aggregation** (`min`/`max`/`count`/`first`/`last` and
//!   raw fields only): shards fold partial accumulators per time bucket in
//!   any order — these functions admit order-free merges once ties are
//!   resolved by the canonical key. Ties matter for bit-identity:
//!   `-0.0 == 0.0` yet the bit patterns differ, and the oracle keeps the
//!   first occurrence in canonical order, so partials carry the key at
//!   which their current winner was set and merges prefer the smaller key
//!   on equal values. NaN never wins a `<`/`>` comparison, matching the
//!   oracle's fold.
//! * **Ordered fold** (`sum`/`mean`/`stddev`/`median` present): floating
//!   addition is not associative, so per-shard partial sums would drift
//!   from the oracle by reassociation. Instead shards extract and sort
//!   `(key, projected values)` runs in parallel; the merge then feeds the
//!   *same* [`Accumulator`]s in the *same* canonical order as the oracle —
//!   the identical arithmetic sequence, hence identical bits, including
//!   NaN propagation. Bucket keys are non-decreasing along the merged
//!   order, so grouping is run-detection instead of a map lookup per row.

use crate::aggregate::{Accumulator, AggregateFn};
use crate::error::TsdbError;
use crate::query::{self, Projection, Query, QueryPlan, QueryResult, ResultRow};
use crate::series::SeriesId;
use crate::storage::{MeasurementView, Storage};
use crate::value::FieldValue;
use parking_lot::Mutex;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Canonical row key: `(timestamp, series id)`. Unique across a query's
/// scanned rows, totally ordered, and equal to the oracle's emission order.
type RowKey = (i64, u64);

/// Sentinel above every real key (`range` is end-exclusive, so a scanned
/// row never has `timestamp == i64::MAX`).
const KEY_SENTINEL: RowKey = (i64::MAX, u64::MAX);

/// How a query is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The original single-threaded executor, kept as the reference
    /// implementation (the oracle of the differential harness).
    Sequential,
    /// Sharded executor with exactly this many worker threads (minimum 1;
    /// one thread scans shards inline without spawning).
    Parallel(usize),
}

impl Default for ExecMode {
    /// Parallel over the machine's available parallelism. Results are
    /// identical for every thread count, so an environment-dependent
    /// default is safe.
    fn default() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecMode::Parallel(n)
    }
}

impl ExecMode {
    /// Worker thread count this mode uses.
    pub fn threads(&self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel(n) => (*n).max(1),
        }
    }
}

/// Work accounting for one executed query (exported as `tsdb.query.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Executed on the sharded (parallel) path.
    pub parallel: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Shards holding at least one matching series.
    pub shards_scanned: u64,
    /// Rows scanned across all shards (after time-range narrowing).
    pub rows_scanned: u64,
    /// Series skipped by the planner's time-bounds pruning.
    pub series_pruned: u64,
    /// Served (at least partly) from materialized rollup tiers.
    pub rollup_routed: bool,
    /// Query buckets answered from tier cells.
    pub rollup_buckets_tier: u64,
    /// Query buckets computed from raw rows (window edges, dirty tiers).
    pub rollup_buckets_raw: u64,
}

/// Execute a query in the given mode.
pub fn run(
    storage: &Storage,
    q: &Query,
    mode: ExecMode,
) -> Result<(QueryResult, ExecStats), TsdbError> {
    run_with_rollups(storage, q, mode, None)
}

/// [`run`] with optional rollup tiers: eligible aggregate queries on the
/// parallel path are routed to the coarsest covering tier (see
/// [`crate::rollup`] for the exactness envelope). Sequential mode never
/// uses tiers — it stays the pure oracle the differential harness trusts.
pub fn run_with_rollups(
    storage: &Storage,
    q: &Query,
    mode: ExecMode,
    rollups: Option<&crate::rollup::RollupStore>,
) -> Result<(QueryResult, ExecStats), TsdbError> {
    match mode {
        ExecMode::Sequential => {
            let result = query::execute(storage, q)?;
            let stats = ExecStats {
                parallel: false,
                threads: 1,
                ..ExecStats::default()
            };
            Ok((result, stats))
        }
        ExecMode::Parallel(n) => run_parallel(storage, q, n.max(1), rollups),
    }
}

fn run_parallel(
    storage: &Storage,
    q: &Query,
    threads: usize,
    rollups: Option<&crate::rollup::RollupStore>,
) -> Result<(QueryResult, ExecStats), TsdbError> {
    let (plan, view) = query::plan(storage, q)?;

    // Partition the (ascending) matching ids by their home shard; each
    // per-shard list stays ascending.
    let mut by_shard: Vec<Vec<SeriesId>> = vec![Vec::new(); storage.shard_count()];
    for &id in &plan.ids {
        by_shard[view.shard_of(id).expect("planned id is placed")].push(id);
    }
    let jobs: Vec<&[SeriesId]> = by_shard
        .iter()
        .filter(|ids| !ids.is_empty())
        .map(Vec::as_slice)
        .collect();

    let mut stats = ExecStats {
        parallel: true,
        threads,
        shards_scanned: jobs.len() as u64,
        rows_scanned: 0,
        series_pruned: plan.series_pruned as u64,
        rollup_routed: false,
        rollup_buckets_tier: 0,
        rollup_buckets_raw: 0,
    };

    // Routed aggregate queries are answered from materialized tier cells,
    // with per-bucket raw fallback for window edges and dirty buckets.
    if let Some(rs) = rollups {
        if let Some((tier_idx, interval)) = rs.route(&q.measurement, &plan) {
            stats.rollup_routed = true;
            let rows = rs.serve(
                &q.measurement,
                tier_idx,
                interval,
                &plan,
                view,
                &mut stats.rows_scanned,
                &mut stats.rollup_buckets_tier,
                &mut stats.rollup_buckets_raw,
            );
            return Ok((
                QueryResult {
                    columns: plan.columns,
                    rows,
                },
                stats,
            ));
        }
    }

    let rows = if !plan.aggregated {
        scan_rows(&plan, view, &jobs, threads, &mut stats)
    } else if exact_template(&plan.projections).is_some() {
        aggregate_exact(&plan, view, &jobs, threads, &mut stats)
    } else {
        aggregate_ordered(&plan, view, &jobs, threads, &mut stats)
    };

    Ok((
        QueryResult {
            columns: plan.columns,
            rows,
        },
        stats,
    ))
}

// ---------------------------------------------------------------------------
// Shard fan-out
// ---------------------------------------------------------------------------

/// Run `f(0..jobs)` on up to `threads` workers stealing job indices from a
/// shared counter; results land in their job's slot, so output order is
/// deterministic regardless of which worker ran which job. One thread (or
/// one job) runs inline without spawning.
fn fan_out<T, F>(threads: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    rayon::scope(|s| {
        for _ in 0..threads.min(jobs) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                *slots[i].lock() = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job index was claimed"))
        .collect()
}

/// K-way merge of runs each sorted by `key`; keys are globally unique.
fn kway_merge<T, K: Ord + Copy>(runs: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    let total = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<T>>> =
        runs.into_iter().map(|r| r.into_iter().peekable()).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, K)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(item) = it.peek() {
                let k = key(item);
                if best.map(|(_, bk)| k < bk).unwrap_or(true) {
                    best = Some((i, k));
                }
            }
        }
        match best {
            Some((i, _)) => out.push(iters[i].next().expect("peeked")),
            None => break,
        }
    }
    out
}

fn bucket_key(bucket: Option<i64>, ts: i64) -> i64 {
    match bucket {
        Some(b) => ts.div_euclid(b) * b,
        None => 0,
    }
}

fn projected_field(p: &Projection) -> &str {
    match p {
        Projection::Aggregate(_, f) | Projection::Field(f) => f,
        Projection::Wildcard => unreachable!("plan expands wildcards"),
    }
}

// ---------------------------------------------------------------------------
// Raw scan path
// ---------------------------------------------------------------------------

fn scan_rows(
    plan: &QueryPlan,
    view: MeasurementView<'_>,
    jobs: &[&[SeriesId]],
    threads: usize,
    stats: &mut ExecStats,
) -> Vec<ResultRow> {
    let runs: Vec<Vec<(RowKey, &BTreeMap<String, FieldValue>)>> =
        fan_out(threads, jobs.len(), |j| {
            let mut run = Vec::new();
            for &id in jobs[j] {
                let s = view.series(id).expect("planned id exists");
                for row in s.range(plan.start, plan.end) {
                    run.push(((row.timestamp, id.0), &row.fields));
                }
            }
            run.sort_unstable_by_key(|(k, _)| *k);
            run
        });
    stats.rows_scanned = runs.iter().map(|r| r.len() as u64).sum();
    let merged = kway_merge(runs, |(k, _)| *k);

    let mut rows = Vec::with_capacity(merged.len());
    for ((ts, _), fields) in merged {
        let mut values = BTreeMap::new();
        for (col, p) in plan.columns.iter().zip(&plan.projections) {
            let v = fields.get(projected_field(p)).and_then(|v| v.as_f64());
            values.insert(col.clone(), v);
        }
        rows.push(ResultRow {
            timestamp: ts,
            values,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Exact partial-aggregation path
// ---------------------------------------------------------------------------

/// Order-free partial accumulator for one projection in one bucket. Every
/// state transition is commutative/associative under the canonical-key tie
/// rules, so shards may fold rows in any order and merges in any pairing.
#[derive(Debug, Clone)]
enum ExactAcc {
    /// `min` / `max`: value plus the canonical key where the current
    /// winner was set (smaller key wins equal values — the oracle keeps
    /// the first occurrence's bit pattern, e.g. for `-0.0` vs `0.0`).
    Extreme {
        is_min: bool,
        count: u64,
        best: f64,
        best_key: RowKey,
    },
    /// `count`: order-free by construction.
    Count { count: u64 },
    /// `first` / `last` (and raw fields, which aggregate as `last`):
    /// the value at the smallest / largest canonical key.
    Edge {
        want_first: bool,
        entry: Option<(RowKey, f64)>,
    },
}

impl ExactAcc {
    fn for_projection(p: &Projection) -> Option<ExactAcc> {
        Some(match p {
            Projection::Aggregate(AggregateFn::Min, _) => ExactAcc::Extreme {
                is_min: true,
                count: 0,
                best: f64::INFINITY,
                best_key: KEY_SENTINEL,
            },
            Projection::Aggregate(AggregateFn::Max, _) => ExactAcc::Extreme {
                is_min: false,
                count: 0,
                best: f64::NEG_INFINITY,
                best_key: KEY_SENTINEL,
            },
            Projection::Aggregate(AggregateFn::Count, _) => ExactAcc::Count { count: 0 },
            Projection::Aggregate(AggregateFn::First, _) => ExactAcc::Edge {
                want_first: true,
                entry: None,
            },
            Projection::Aggregate(AggregateFn::Last, _) | Projection::Field(_) => ExactAcc::Edge {
                want_first: false,
                entry: None,
            },
            _ => return None,
        })
    }

    fn push(&mut self, key: RowKey, v: f64) {
        match self {
            ExactAcc::Extreme {
                is_min,
                count,
                best,
                best_key,
            } => {
                *count += 1;
                let wins = if *is_min { v < *best } else { v > *best };
                if wins || (v == *best && key < *best_key) {
                    *best = v;
                    *best_key = key;
                }
            }
            ExactAcc::Count { count } => *count += 1,
            ExactAcc::Edge { want_first, entry } => match entry {
                None => *entry = Some((key, v)),
                Some((k, val)) => {
                    let replace = if *want_first { key < *k } else { key > *k };
                    if replace {
                        *k = key;
                        *val = v;
                    }
                }
            },
        }
    }

    fn merge(&mut self, other: &ExactAcc) {
        match (self, other) {
            (
                ExactAcc::Extreme {
                    is_min,
                    count,
                    best,
                    best_key,
                },
                ExactAcc::Extreme {
                    count: c2,
                    best: b2,
                    best_key: k2,
                    ..
                },
            ) => {
                *count += c2;
                let wins = if *is_min { *b2 < *best } else { *b2 > *best };
                if wins || (*b2 == *best && *k2 < *best_key) {
                    *best = *b2;
                    *best_key = *k2;
                }
            }
            (ExactAcc::Count { count }, ExactAcc::Count { count: c2 }) => *count += c2,
            (ExactAcc::Edge { want_first, entry }, ExactAcc::Edge { entry: e2, .. }) => {
                match (entry.as_mut(), e2) {
                    (_, None) => {}
                    (None, Some(e)) => *entry = Some(*e),
                    (Some((k, v)), Some((k2, v2))) => {
                        let replace = if *want_first { k2 < k } else { k2 > k };
                        if replace {
                            *k = *k2;
                            *v = *v2;
                        }
                    }
                }
            }
            _ => unreachable!("partials from the same projection template"),
        }
    }

    /// Mirrors [`Accumulator::finish`] for the supported functions,
    /// including the all-NaN case (`min` stays `+inf`, `max` `-inf`) and
    /// `count`'s 0-instead-of-NULL.
    fn finish(&self) -> Option<f64> {
        match self {
            ExactAcc::Extreme { count: 0, .. } => None,
            ExactAcc::Extreme { best, .. } => Some(*best),
            ExactAcc::Count { count } => Some(*count as f64),
            ExactAcc::Edge { entry, .. } => entry.map(|(_, v)| v),
        }
    }
}

/// The per-bucket accumulator template when every projection is exactly
/// mergeable, else `None` (ordered fold required).
fn exact_template(projections: &[Projection]) -> Option<Vec<ExactAcc>> {
    projections.iter().map(ExactAcc::for_projection).collect()
}

fn aggregate_exact(
    plan: &QueryPlan,
    view: MeasurementView<'_>,
    jobs: &[&[SeriesId]],
    threads: usize,
    stats: &mut ExecStats,
) -> Vec<ResultRow> {
    let template = exact_template(&plan.projections).expect("caller checked");

    let partials: Vec<(BTreeMap<i64, Vec<ExactAcc>>, u64)> = fan_out(threads, jobs.len(), |j| {
        let mut buckets: BTreeMap<i64, Vec<ExactAcc>> = BTreeMap::new();
        let mut scanned = 0u64;
        for &id in jobs[j] {
            let s = view.series(id).expect("planned id exists");
            for row in s.range(plan.start, plan.end) {
                scanned += 1;
                let key = (row.timestamp, id.0);
                // Bucket created for every scanned row, even when no
                // projected field matches — `count` reports 0 for such
                // buckets, exactly like the oracle's group map.
                let accs = buckets
                    .entry(bucket_key(plan.bucket, row.timestamp))
                    .or_insert_with(|| template.clone());
                for (acc, p) in accs.iter_mut().zip(&plan.projections) {
                    if let Some(v) = row.fields.get(projected_field(p)).and_then(|v| v.as_f64()) {
                        acc.push(key, v);
                    }
                }
            }
        }
        (buckets, scanned)
    });

    let mut merged: BTreeMap<i64, Vec<ExactAcc>> = BTreeMap::new();
    for (buckets, scanned) in partials {
        stats.rows_scanned += scanned;
        for (k, accs) in buckets {
            match merged.entry(k) {
                Entry::Vacant(e) => {
                    e.insert(accs);
                }
                Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&accs) {
                        a.merge(b);
                    }
                }
            }
        }
    }

    merged
        .into_iter()
        .map(|(ts, accs)| {
            let mut values = BTreeMap::new();
            for (col, acc) in plan.columns.iter().zip(&accs) {
                values.insert(col.clone(), acc.finish());
            }
            ResultRow {
                timestamp: ts,
                values,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ordered-fold path
// ---------------------------------------------------------------------------

fn aggregate_ordered(
    plan: &QueryPlan,
    view: MeasurementView<'_>,
    jobs: &[&[SeriesId]],
    threads: usize,
    stats: &mut ExecStats,
) -> Vec<ResultRow> {
    // Parallel part: scan, project, and sort per shard.
    let runs: Vec<Vec<(RowKey, Vec<Option<f64>>)>> = fan_out(threads, jobs.len(), |j| {
        let mut run = Vec::new();
        for &id in jobs[j] {
            let s = view.series(id).expect("planned id exists");
            for row in s.range(plan.start, plan.end) {
                let vals: Vec<Option<f64>> = plan
                    .projections
                    .iter()
                    .map(|p| row.fields.get(projected_field(p)).and_then(|v| v.as_f64()))
                    .collect();
                run.push(((row.timestamp, id.0), vals));
            }
        }
        run.sort_unstable_by_key(|(k, _)| *k);
        run
    });
    stats.rows_scanned = runs.iter().map(|r| r.len() as u64).sum();

    // Sequential merge-fold: the same accumulators fed in the same
    // canonical order as the oracle. Bucket keys are non-decreasing along
    // the merge, so groups close as runs.
    let merged = kway_merge(runs, |(k, _)| *k);
    let fresh_accs = || -> Vec<Accumulator> {
        plan.projections
            .iter()
            .map(|p| match p {
                Projection::Aggregate(f, _) => Accumulator::new(*f),
                _ => Accumulator::new(AggregateFn::Last),
            })
            .collect()
    };

    let mut rows = Vec::new();
    let mut current: Option<(i64, Vec<Accumulator>)> = None;
    let flush = |current: &mut Option<(i64, Vec<Accumulator>)>, rows: &mut Vec<ResultRow>| {
        if let Some((ts, accs)) = current.take() {
            let mut values = BTreeMap::new();
            for (col, acc) in plan.columns.iter().zip(&accs) {
                values.insert(col.clone(), acc.finish());
            }
            rows.push(ResultRow {
                timestamp: ts,
                values,
            });
        }
    };
    for ((ts, _), vals) in merged {
        let key = bucket_key(plan.bucket, ts);
        if current.as_ref().map(|(k, _)| *k) != Some(key) {
            flush(&mut current, &mut rows);
            current = Some((key, fresh_accs()));
        }
        let accs = &mut current.as_mut().expect("just ensured").1;
        for (acc, v) in accs.iter_mut().zip(vals) {
            if let Some(v) = v {
                acc.push(v);
            }
        }
    }
    flush(&mut current, &mut rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::query::execute;

    type BitRows = Vec<(i64, Vec<(String, Option<u64>)>)>;

    fn bits(r: &QueryResult) -> BitRows {
        r.rows
            .iter()
            .map(|row| {
                (
                    row.timestamp,
                    row.values
                        .iter()
                        .map(|(k, v)| (k.clone(), v.map(f64::to_bits)))
                        .collect(),
                )
            })
            .collect()
    }

    fn assert_matches_oracle(storage: &Storage, text: &str) {
        let q = Query::parse(text).unwrap();
        let oracle = execute(storage, &q).unwrap();
        for threads in [1, 2, 8] {
            let (got, stats) = run(storage, &q, ExecMode::Parallel(threads)).unwrap();
            assert_eq!(got.columns, oracle.columns, "{text} ({threads} threads)");
            assert_eq!(bits(&got), bits(&oracle), "{text} ({threads} threads)");
            assert!(stats.parallel);
            assert_eq!(stats.threads, threads);
        }
    }

    fn corpus() -> Storage {
        let mut s = Storage::new();
        for host in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            for t in 0..40 {
                s.insert(
                    Point::new("m")
                        .tag("host", host)
                        .field("v", (t as f64).sin() * 1e3 + host.len() as f64)
                        .field("w", t as f64)
                        .timestamp(t * 3),
                );
            }
        }
        // A NaN, signed zeros, and a sparse series.
        s.insert(
            Point::new("m")
                .tag("host", "a")
                .field("v", f64::NAN)
                .timestamp(7),
        );
        s.insert(
            Point::new("m")
                .tag("host", "b")
                .field("v", -0.0)
                .timestamp(7),
        );
        s.insert(
            Point::new("m")
                .tag("host", "c")
                .field("v", 0.0)
                .timestamp(7),
        );
        s.insert(
            Point::new("m")
                .tag("host", "z")
                .field("u", 5.0)
                .timestamp(200),
        );
        s
    }

    #[test]
    fn raw_scan_matches_oracle() {
        let s = corpus();
        assert_matches_oracle(&s, "SELECT * FROM \"m\"");
        assert_matches_oracle(&s, "SELECT \"v\" FROM \"m\" WHERE host='a'");
        assert_matches_oracle(
            &s,
            "SELECT \"v\", \"w\" FROM \"m\" WHERE time >= 10 AND time < 50",
        );
    }

    #[test]
    fn exact_aggregates_match_oracle() {
        let s = corpus();
        assert_matches_oracle(
            &s,
            "SELECT min(\"v\"), max(\"v\") FROM \"m\" GROUP BY time(17)",
        );
        assert_matches_oracle(&s, "SELECT count(\"v\") FROM \"m\"");
        assert_matches_oracle(
            &s,
            "SELECT first(\"v\"), last(\"w\"), \"v\" FROM \"m\" GROUP BY time(13)",
        );
        // Signed-zero tie at ts 7: the canonical-first bit pattern wins.
        assert_matches_oracle(
            &s,
            "SELECT min(\"v\"), max(\"v\") FROM \"m\" WHERE time = 7",
        );
        // Bucket with rows but no matching field: count is 0, min NULL.
        assert_matches_oracle(
            &s,
            "SELECT count(\"u\"), min(\"u\") FROM \"m\" GROUP BY time(50)",
        );
    }

    #[test]
    fn ordered_aggregates_match_oracle() {
        let s = corpus();
        assert_matches_oracle(&s, "SELECT sum(\"v\") FROM \"m\" GROUP BY time(17)");
        assert_matches_oracle(
            &s,
            "SELECT mean(\"v\"), stddev(\"w\") FROM \"m\" GROUP BY time(11)",
        );
        assert_matches_oracle(
            &s,
            "SELECT sum(\"v\"), count(\"v\") FROM \"m\" WHERE host='b'",
        );
        // NaN at ts 7 poisons its bucket's sum identically in both paths.
        assert_matches_oracle(
            &s,
            "SELECT sum(\"v\") FROM \"m\" WHERE time >= 0 AND time < 20",
        );
    }

    #[test]
    fn pruning_reported_and_harmless() {
        let s = corpus();
        let q = Query::parse("SELECT \"u\" FROM \"m\" WHERE time >= 150 AND time < 300").unwrap();
        let (got, stats) = run(&s, &q, ExecMode::Parallel(2)).unwrap();
        let oracle = execute(&s, &q).unwrap();
        assert_eq!(bits(&got), bits(&oracle));
        assert!(stats.series_pruned > 0, "hosts a..h end at ts 117");
        assert_eq!(stats.rows_scanned, 1);
    }

    #[test]
    fn sequential_mode_delegates_to_oracle() {
        let s = corpus();
        let q = Query::parse("SELECT sum(\"v\") FROM \"m\"").unwrap();
        let (got, stats) = run(&s, &q, ExecMode::Sequential).unwrap();
        assert_eq!(bits(&got), bits(&execute(&s, &q).unwrap()));
        assert!(!stats.parallel);
    }

    #[test]
    fn fan_out_is_order_deterministic() {
        for threads in [1, 2, 8] {
            let out = fan_out(threads, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn kway_merge_interleaves() {
        let runs = vec![vec![1, 4, 7], vec![2, 5], vec![0, 3, 6, 8]];
        assert_eq!(kway_merge(runs, |&x| x), vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn unknown_measurement_errors_match() {
        let s = corpus();
        let q = Query::parse("SELECT \"v\" FROM \"nosuch\"").unwrap();
        assert!(matches!(
            run(&s, &q, ExecMode::Parallel(4)),
            Err(TsdbError::UnknownMeasurement(_))
        ));
    }
}
