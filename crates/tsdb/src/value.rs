//! Field values stored in time-series points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single field value, mirroring the InfluxDB 1.x field types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// 64-bit float (the overwhelmingly common case for telemetry).
    Float(f64),
    /// Signed 64-bit integer (written as `42i` in line protocol).
    Int(i64),
    /// Boolean flag.
    Bool(bool),
    /// Quoted string value.
    Str(String),
}

impl FieldValue {
    /// Numeric view of the value; strings parse if they look numeric,
    /// booleans map to 0/1. Returns `None` for non-numeric strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::Float(v) => Some(*v),
            FieldValue::Int(v) => Some(*v as f64),
            FieldValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            FieldValue::Str(s) => s.parse().ok(),
        }
    }

    /// True when the value is numerically zero. Used by the loss accounting
    /// in Table III, which counts "batched zero" insertions separately.
    pub fn is_zero(&self) -> bool {
        matches!(self.as_f64(), Some(v) if v == 0.0)
    }

    /// Render the value in line-protocol syntax.
    pub fn to_line_protocol(&self) -> String {
        match self {
            FieldValue::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // keep a trailing ".0" marker off but still parse as float
                    format!("{v}")
                } else {
                    format!("{v}")
                }
            }
            FieldValue::Int(v) => format!("{v}i"),
            FieldValue::Bool(b) => format!("{b}"),
            FieldValue::Str(s) => format!("\"{}\"", s.replace('"', "\\\"")),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Float(v) => write!(f, "{v}"),
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Float(v as f64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_f64_covers_all_variants() {
        assert_eq!(FieldValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(FieldValue::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(FieldValue::Bool(true).as_f64(), Some(1.0));
        assert_eq!(FieldValue::Str("4.5".into()).as_f64(), Some(4.5));
        assert_eq!(FieldValue::Str("abc".into()).as_f64(), None);
    }

    #[test]
    fn zero_detection() {
        assert!(FieldValue::Float(0.0).is_zero());
        assert!(FieldValue::Int(0).is_zero());
        assert!(FieldValue::Bool(false).is_zero());
        assert!(!FieldValue::Float(0.1).is_zero());
        assert!(!FieldValue::Str("x".into()).is_zero());
    }

    #[test]
    fn line_protocol_rendering() {
        assert_eq!(FieldValue::Int(42).to_line_protocol(), "42i");
        assert_eq!(FieldValue::Bool(true).to_line_protocol(), "true");
        assert_eq!(
            FieldValue::Str("a\"b".into()).to_line_protocol(),
            "\"a\\\"b\""
        );
        assert_eq!(FieldValue::Float(1.5).to_line_protocol(), "1.5");
    }

    #[test]
    fn conversions() {
        assert_eq!(FieldValue::from(1.0_f64), FieldValue::Float(1.0));
        assert_eq!(FieldValue::from(1_i64), FieldValue::Int(1));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("s"), FieldValue::Str("s".into()));
    }
}
