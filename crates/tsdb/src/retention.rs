//! Retention policies: how long the database keeps data.
//!
//! The paper (§V-B) relies on InfluxDB's retention policy to keep
//! high-frequency sampling from overwhelming storage on small systems;
//! this module reproduces the duration-based expiry semantics.

use serde::{Deserialize, Serialize};

/// A named retention policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Policy name (e.g. `autogen`, `two_weeks`).
    pub name: String,
    /// How long points are kept, in the same time unit as point timestamps
    /// (`None` = keep forever, like InfluxDB's `INF`).
    pub duration: Option<i64>,
}

impl RetentionPolicy {
    /// Policy that never expires data (InfluxDB's default `autogen`).
    pub fn infinite(name: impl Into<String>) -> Self {
        RetentionPolicy {
            name: name.into(),
            duration: None,
        }
    }

    /// Policy keeping `duration` time units of data.
    pub fn keep(name: impl Into<String>, duration: i64) -> Self {
        assert!(duration > 0, "retention duration must be positive");
        RetentionPolicy {
            name: name.into(),
            duration: Some(duration),
        }
    }

    /// Cutoff timestamp given the current time: points strictly older are
    /// expired. `None` when the policy keeps everything.
    pub fn cutoff(&self, now: i64) -> Option<i64> {
        self.duration.map(|d| now.saturating_sub(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_never_cuts() {
        let p = RetentionPolicy::infinite("autogen");
        assert_eq!(p.cutoff(1_000_000), None);
    }

    #[test]
    fn keep_computes_cutoff() {
        let p = RetentionPolicy::keep("short", 100);
        assert_eq!(p.cutoff(1_000), Some(900));
    }

    #[test]
    fn cutoff_saturates() {
        let p = RetentionPolicy::keep("short", 100);
        assert_eq!(p.cutoff(i64::MIN + 1), Some(i64::MIN));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        let _ = RetentionPolicy::keep("bad", 0);
    }
}
