//! Streaming aggregators used by queries and by the SUPERDB
//! `AGGObservationInterface` summaries (min/max/mean/... per the paper §III-E).

use serde::{Deserialize, Serialize};

/// Supported aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateFn {
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
    /// Arithmetic mean.
    Mean,
    /// Sum of values.
    Sum,
    /// Number of values.
    Count,
    /// Population standard deviation.
    Stddev,
    /// First value in time order.
    First,
    /// Last value in time order.
    Last,
    /// Median (50th percentile, linear interpolation).
    Median,
}

impl AggregateFn {
    /// Parse from the InfluxQL function name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "min" => AggregateFn::Min,
            "max" => AggregateFn::Max,
            "mean" | "avg" => AggregateFn::Mean,
            "sum" => AggregateFn::Sum,
            "count" => AggregateFn::Count,
            "stddev" => AggregateFn::Stddev,
            "first" => AggregateFn::First,
            "last" => AggregateFn::Last,
            "median" => AggregateFn::Median,
            _ => return None,
        })
    }

    /// Lower-case function name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFn::Min => "min",
            AggregateFn::Max => "max",
            AggregateFn::Mean => "mean",
            AggregateFn::Sum => "sum",
            AggregateFn::Count => "count",
            AggregateFn::Stddev => "stddev",
            AggregateFn::First => "first",
            AggregateFn::Last => "last",
            AggregateFn::Median => "median",
        }
    }
}

/// Incremental accumulator for one aggregate over one column.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggregateFn,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    first: Option<f64>,
    last: Option<f64>,
    // Median needs the values; only collected when the function requires it.
    values: Vec<f64>,
}

impl Accumulator {
    /// New accumulator for `func`.
    pub fn new(func: AggregateFn) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first: None,
            last: None,
            values: Vec::new(),
        }
    }

    /// Feed one value (callers feed in time order).
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if self.first.is_none() {
            self.first = Some(v);
        }
        self.last = Some(v);
        if self.func == AggregateFn::Median {
            self.values.push(v);
        }
    }

    /// Final value, `None` when no inputs were seen (matching SQL NULL
    /// semantics; `count` still yields 0).
    pub fn finish(&self) -> Option<f64> {
        if self.count == 0 {
            return match self.func {
                AggregateFn::Count => Some(0.0),
                _ => None,
            };
        }
        Some(match self.func {
            AggregateFn::Min => self.min,
            AggregateFn::Max => self.max,
            AggregateFn::Mean => self.sum / self.count as f64,
            AggregateFn::Sum => self.sum,
            AggregateFn::Count => self.count as f64,
            AggregateFn::Stddev => {
                let mean = self.sum / self.count as f64;
                (self.sum_sq / self.count as f64 - mean * mean)
                    .max(0.0)
                    .sqrt()
            }
            AggregateFn::First => self.first.expect("count > 0"),
            AggregateFn::Last => self.last.expect("count > 0"),
            AggregateFn::Median => percentile(&mut self.values.clone(), 50.0),
        })
    }

    /// Number of values seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Linear-interpolation percentile of an unsorted slice; `p` in [0, 100].
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in telemetry"));
    let p = p.clamp(0.0, 100.0);
    if values.len() == 1 {
        return values[0];
    }
    let rank = p / 100.0 * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        let w = rank - lo as f64;
        values[lo] * (1.0 - w) + values[hi] * w
    }
}

/// Convenience: run one aggregate over a slice.
pub fn aggregate(func: AggregateFn, values: &[f64]) -> Option<f64> {
    let mut acc = Accumulator::new(func);
    for &v in values {
        acc.push(v);
    }
    acc.finish()
}

/// Statistical summary bundle used by `AGGObservationInterface` (paper
/// §III-E summarizes high-volume series as min/max/mean/etc.).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples summarized.
    pub count: u64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Mean of samples.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Sum of samples.
    pub sum: f64,
}

impl Summary {
    /// Summarize a non-empty slice; returns `None` if empty.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        Some(Summary {
            count: values.len() as u64,
            min: aggregate(AggregateFn::Min, values).expect("non-empty"),
            max: aggregate(AggregateFn::Max, values).expect("non-empty"),
            mean: aggregate(AggregateFn::Mean, values).expect("non-empty"),
            stddev: aggregate(AggregateFn::Stddev, values).expect("non-empty"),
            sum: aggregate(AggregateFn::Sum, values).expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [f64; 5] = [2.0, 4.0, 4.0, 4.0, 6.0];

    #[test]
    fn parse_names() {
        assert_eq!(AggregateFn::parse("MEAN"), Some(AggregateFn::Mean));
        assert_eq!(AggregateFn::parse("avg"), Some(AggregateFn::Mean));
        assert_eq!(AggregateFn::parse("nope"), None);
        assert_eq!(AggregateFn::Median.name(), "median");
    }

    #[test]
    fn basic_aggregates() {
        assert_eq!(aggregate(AggregateFn::Min, &DATA), Some(2.0));
        assert_eq!(aggregate(AggregateFn::Max, &DATA), Some(6.0));
        assert_eq!(aggregate(AggregateFn::Mean, &DATA), Some(4.0));
        assert_eq!(aggregate(AggregateFn::Sum, &DATA), Some(20.0));
        assert_eq!(aggregate(AggregateFn::Count, &DATA), Some(5.0));
        assert_eq!(aggregate(AggregateFn::First, &DATA), Some(2.0));
        assert_eq!(aggregate(AggregateFn::Last, &DATA), Some(6.0));
        assert_eq!(aggregate(AggregateFn::Median, &DATA), Some(4.0));
    }

    #[test]
    fn stddev_population() {
        // mean 4, squared deviations (4+0+0+0+4)/5 = 1.6
        let sd = aggregate(AggregateFn::Stddev, &DATA).unwrap();
        assert!((sd - 1.6_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_semantics() {
        assert_eq!(aggregate(AggregateFn::Mean, &[]), None);
        assert_eq!(aggregate(AggregateFn::Count, &[]), Some(0.0));
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 100.0), 4.0);
        assert!((percentile(&mut v, 50.0) - 2.5).abs() < 1e-12);
        let mut single = vec![7.0];
        assert_eq!(percentile(&mut single, 99.0), 7.0);
    }

    #[test]
    fn summary_bundle() {
        let s = Summary::of(&DATA).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.sum, 20.0);
    }
}
