//! Continuous-query rollup tiers: raw points folded into coarse
//! per-series buckets (sum / count / min / max / first / last), with the
//! query executor routing eligible aggregate queries to the coarsest tier
//! that covers them and falling back to raw rows for the unaligned edges.
//!
//! Exactness envelope
//! ------------------
//! Routing is a *semantics-preserving optimization*: a tier-served answer
//! must be `f64::to_bits`-identical to the raw-scan oracle
//! ([`crate::query::execute`]) — the differential harness
//! (`tests/rollup.rs`) pins this at every thread count, including NaN
//! payloads and signed zeros. That constrains which queries may route:
//!
//! * `count` / `min` / `max` / `first` / `last` (and raw field
//!   projections, which aggregate as `last`) are **order-free** under the
//!   canonical `(timestamp, series id)` tie rules, so per-series tier
//!   cells merge exactly across tier buckets and series — the same
//!   argument [`crate::exec`]'s exact partial-aggregation path makes.
//!   Routed whenever the query bucket width is a multiple of a tier
//!   interval.
//! * `sum` is an **ordered fold**: float addition is non-associative, so
//!   summing per-segment partials reassociates the oracle's arithmetic.
//!   A tier cell's sum *is* bit-exact for exactly one shape — the query
//!   bucket equals the tier interval (one cell per bucket, no
//!   cross-segment combine) and exactly one series matches (no
//!   cross-series interleave). That shape is the P-MoVE dashboard
//!   workload (`tag='obs-uuid'` selects one series); everything else
//!   stays on the raw ordered-fold path.
//! * `mean` / `stddev` / `median` never route.
//!
//! Buckets only partially covered by the query window, and buckets whose
//! tier cells are stale (marked dirty but not yet materialized by
//! [`rollup tick`](crate::engine::Database::rollup_tick)), are computed
//! from raw rows with the identical fold — per-bucket fallback keeps the
//! whole answer exact rather than abandoning the tier path wholesale.
//!
//! Conservation
//! ------------
//! Rolled-up points are accounted, not lost: every raw row lands in
//! exactly one bucket per tier, so with no dirty buckets pending,
//! `Σ cell.rows == raw row count` per tier ([`RollupAudit::conserved`]).
//! After retention drops raw rows the tiers retain their cells — the
//! audit then reports `tier_rows ≥ raw_rows`, the surplus being history
//! preserved by downsampling rather than a ledger leak.

use crate::query::{Projection, QueryPlan, ResultRow};
use crate::series::SeriesId;
use crate::storage::MeasurementView;
use crate::value::FieldValue;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Canonical row key, identical to the executor's `(timestamp, series id)`.
type RowKey = (i64, u64);

/// Sentinel above every real key (scanned rows never reach `i64::MAX`
/// because ranges are end-exclusive).
const KEY_SENTINEL: RowKey = (i64::MAX, u64::MAX);

/// Default tier intervals in nanoseconds: 10 s and 1 min, the two
/// downsampling levels the paper-scale deployment keeps.
pub const DEFAULT_TIERS_NS: [i64; 2] = [10_000_000_000, 60_000_000_000];

/// Modelled fixed cost of one rollup tick (ns on the virtual clock).
pub const ROLLUP_TICK_BASE_NS: u64 = 20_000;
/// Modelled cost per raw row folded into a tier cell.
pub const ROLLUP_PER_ROW_NS: u64 = 120;
/// Modelled cost per bucket materialized.
pub const ROLLUP_PER_BUCKET_NS: u64 = 900;

/// Tier configuration: ascending bucket intervals, in timestamp units.
#[derive(Debug, Clone)]
pub struct RollupConfig {
    /// Tier bucket widths, ascending (coarsest last). Must be positive.
    pub tiers: Vec<i64>,
}

impl Default for RollupConfig {
    /// The paper deployment's 10 s and 1 m tiers (nanosecond timestamps).
    fn default() -> Self {
        RollupConfig {
            tiers: DEFAULT_TIERS_NS.to_vec(),
        }
    }
}

impl RollupConfig {
    /// Config with explicit tier intervals (tests use small raw units).
    pub fn with_tiers(tiers: &[i64]) -> Self {
        assert!(
            tiers.iter().all(|&t| t > 0),
            "tier intervals must be positive"
        );
        let mut tiers = tiers.to_vec();
        tiers.sort_unstable();
        tiers.dedup();
        RollupConfig { tiers }
    }
}

/// Per-field exact aggregate state for one (tier bucket, series) cell.
///
/// Mirrors the executor's order-free partial accumulators: `min`/`max`
/// carry the canonical key their current winner was set at (smaller key
/// wins equal values, so `-0.0` vs `0.0` ties keep the oracle's bit
/// pattern; NaN never wins a comparison), `first`/`last` are the values
/// at the extreme keys, and `sum` is the per-series fold in timestamp
/// order — exactly the oracle's arithmetic sequence when one series and
/// one cell answer one bucket.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FieldAgg {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub min_key: RowKey,
    pub max: f64,
    pub max_key: RowKey,
    pub first: f64,
    pub first_key: RowKey,
    pub last: f64,
    pub last_key: RowKey,
}

impl FieldAgg {
    fn new() -> FieldAgg {
        FieldAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            min_key: KEY_SENTINEL,
            max: f64::NEG_INFINITY,
            max_key: KEY_SENTINEL,
            first: 0.0,
            first_key: KEY_SENTINEL,
            last: 0.0,
            last_key: KEY_SENTINEL,
        }
    }

    /// Fold one value in canonical order (callers push per series in
    /// ascending timestamp order, which is all `sum` exactness needs).
    fn push(&mut self, key: RowKey, v: f64) {
        if self.count == 0 {
            self.first = v;
            self.first_key = key;
        }
        self.count += 1;
        self.sum += v;
        if v < self.min || (v == self.min && key < self.min_key) {
            self.min = v;
            self.min_key = key;
        }
        if v > self.max || (v == self.max && key < self.max_key) {
            self.max = v;
            self.max_key = key;
        }
        self.last = v;
        self.last_key = key;
    }
}

/// One (tier bucket, series) cell: how many raw rows the bucket holds for
/// the series (field-independent — the oracle emits a bucket for every
/// scanned row even when no projected field matches) plus per-field
/// aggregates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CellAgg {
    /// Raw rows of this series inside the bucket.
    pub rows: u64,
    /// Field name -> aggregate state.
    pub fields: BTreeMap<String, FieldAgg>,
}

/// One downsampling tier of one measurement.
#[derive(Debug, Default)]
pub(crate) struct TierData {
    /// (bucket start, series id) -> cell.
    pub cells: BTreeMap<(i64, SeriesId), CellAgg>,
    /// Bucket starts written since their last materialization. A dirty
    /// bucket's cells are stale; queries touching it fall back to raw.
    pub dirty: BTreeSet<i64>,
}

/// All rollup state of one database: per measurement, one [`TierData`]
/// per configured interval.
#[derive(Debug)]
pub struct RollupStore {
    cfg: RollupConfig,
    tiers: HashMap<String, Vec<TierData>>,
}

/// What one rollup tick did (daemon span + obs accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RollupTickReport {
    /// Dirty buckets materialized (across measurements and tiers).
    pub buckets_materialized: u64,
    /// Raw rows folded into tier cells.
    pub rows_folded: u64,
    /// Cells written or rewritten.
    pub cells_written: u64,
    /// Cells removed because their bucket no longer holds raw rows.
    pub cells_removed: u64,
    /// Measurements whose write version was bumped.
    pub measurements_touched: u64,
}

impl RollupTickReport {
    /// Modelled tick cost on the virtual clock.
    pub fn modeled_ns(&self) -> u64 {
        ROLLUP_TICK_BASE_NS
            + ROLLUP_PER_ROW_NS * self.rows_folded
            + ROLLUP_PER_BUCKET_NS * self.buckets_materialized
    }
}

/// The widened conservation audit: raw rows vs. rows accounted in each
/// tier. See the module docs for the balance conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupAudit {
    /// Rows currently held in raw storage (all measurements).
    pub raw_rows: u64,
    /// Per tier `(interval, Σ cell.rows)`.
    pub tier_rows: Vec<(i64, u64)>,
    /// Dirty buckets not yet materialized.
    pub dirty_buckets: u64,
    /// Rows preserved only by tiers (raw copy expired by retention),
    /// maximized over tiers: `max(tier_rows) - raw_rows` when positive.
    pub rolled_beyond_raw: u64,
}

impl RollupAudit {
    /// Strict balance: nothing pending and every tier accounts exactly
    /// the raw rows — the invariant when retention has not yet expired
    /// anything the tiers cover.
    pub fn conserved(&self) -> bool {
        self.dirty_buckets == 0 && self.tier_rows.iter().all(|&(_, n)| n == self.raw_rows)
    }

    /// Weak balance: nothing pending and no tier accounts *fewer* rows
    /// than raw storage holds — rolled-up points are never lost, they can
    /// only outlive their raw copies.
    pub fn accounted(&self) -> bool {
        self.dirty_buckets == 0 && self.tier_rows.iter().all(|&(_, n)| n >= self.raw_rows)
    }
}

/// Floor `ts` to its bucket start for interval `t`, in `i128` so extreme
/// timestamps cannot overflow the multiply-back.
fn bucket_floor(ts: i128, t: i128) -> i128 {
    ts.div_euclid(t) * t
}

impl RollupStore {
    pub(crate) fn new(cfg: RollupConfig) -> RollupStore {
        RollupStore {
            cfg,
            tiers: HashMap::new(),
        }
    }

    /// Configured tier intervals (ascending).
    pub fn intervals(&self) -> &[i64] {
        &self.cfg.tiers
    }

    fn tiers_mut(&mut self, measurement: &str) -> &mut Vec<TierData> {
        let n = self.cfg.tiers.len();
        self.tiers
            .entry(measurement.to_string())
            .or_insert_with(|| (0..n).map(|_| TierData::default()).collect())
    }

    /// Mark the buckets containing `ts` dirty in every tier.
    pub(crate) fn note_write(&mut self, measurement: &str, ts: i64) {
        let intervals = self.cfg.tiers.clone();
        let tiers = self.tiers_mut(measurement);
        for (tier, &t) in tiers.iter_mut().zip(&intervals) {
            tier.dirty
                .insert(bucket_floor(ts as i128, t as i128) as i64);
        }
    }

    /// Drop all materialized state and dirty marks (the in-memory view
    /// was replaced wholesale, e.g. by a post-quarantine rebuild).
    pub(crate) fn clear(&mut self) {
        self.tiers.clear();
    }

    /// Materialize every dirty bucket from raw storage. Idempotent:
    /// buckets are *recomputed*, so out-of-order writes and
    /// last-write-wins rewrites converge to the same cells as a fresh
    /// fold. Returns what was done plus the measurements touched (whose
    /// write versions the engine must bump).
    pub(crate) fn tick(
        &mut self,
        storage: &crate::storage::Storage,
    ) -> (RollupTickReport, Vec<String>) {
        let mut report = RollupTickReport::default();
        let mut touched = Vec::new();
        let intervals = self.cfg.tiers.clone();
        let mut names: Vec<&String> = self.tiers.keys().collect();
        names.sort();
        let names: Vec<String> = names.into_iter().cloned().collect();
        for name in names {
            let mut any = false;
            let Some(tiers) = self.tiers.get_mut(&name) else {
                continue;
            };
            let view = storage.measurement(&name);
            for (tier, &t) in tiers.iter_mut().zip(&intervals) {
                if tier.dirty.is_empty() {
                    continue;
                }
                any = true;
                let dirty: Vec<i64> = std::mem::take(&mut tier.dirty).into_iter().collect();
                report.buckets_materialized += dirty.len() as u64;
                materialize(tier, &dirty, t, view.as_ref(), &mut report);
            }
            if any {
                report.measurements_touched += 1;
                touched.push(name);
            }
        }
        (report, touched)
    }

    /// Count rows accounted per tier for the audit.
    pub(crate) fn audit(&self, raw_rows: u64) -> RollupAudit {
        let mut tier_rows = vec![0u64; self.cfg.tiers.len()];
        let mut dirty = 0u64;
        for tiers in self.tiers.values() {
            for (i, tier) in tiers.iter().enumerate() {
                tier_rows[i] += tier.cells.values().map(|c| c.rows).sum::<u64>();
                dirty += tier.dirty.len() as u64;
            }
        }
        let tier_rows: Vec<(i64, u64)> = self.cfg.tiers.iter().copied().zip(tier_rows).collect();
        let rolled_beyond_raw = tier_rows
            .iter()
            .map(|&(_, n)| n.saturating_sub(raw_rows))
            .max()
            .unwrap_or(0);
        RollupAudit {
            raw_rows,
            tier_rows,
            dirty_buckets: dirty,
            rolled_beyond_raw,
        }
    }

    /// Total materialized cells (all measurements and tiers).
    pub fn cell_count(&self) -> u64 {
        self.tiers
            .values()
            .flat_map(|tiers| tiers.iter())
            .map(|t| t.cells.len() as u64)
            .sum()
    }

    /// Pending dirty buckets (all measurements and tiers).
    pub fn dirty_count(&self) -> u64 {
        self.tiers
            .values()
            .flat_map(|tiers| tiers.iter())
            .map(|t| t.dirty.len() as u64)
            .sum()
    }

    /// Pick the tier a planned aggregate query may be served from, or
    /// `None` when the query must stay on the raw path. See the module
    /// docs for the exactness envelope this enforces.
    pub(crate) fn route(&self, measurement: &str, plan: &QueryPlan) -> Option<(usize, i64)> {
        if !plan.aggregated {
            return None;
        }
        let b = plan.bucket?;
        if b <= 0 {
            return None;
        }
        let mut needs_exact_sum = false;
        for p in &plan.projections {
            use crate::aggregate::AggregateFn as F;
            match p {
                Projection::Field(_) => {}
                Projection::Aggregate(F::Count | F::Min | F::Max | F::First | F::Last, _) => {}
                Projection::Aggregate(F::Sum, _) => needs_exact_sum = true,
                _ => return None,
            }
        }
        if needs_exact_sum && plan.ids.len() != 1 {
            return None;
        }
        // Coarsest tier whose interval divides the query bucket; `sum`
        // additionally requires the bucket to *be* a tier interval.
        let tiers = self.tiers.get(measurement)?;
        self.cfg
            .tiers
            .iter()
            .enumerate()
            .rev()
            .filter(|&(_, &t)| b % t == 0 && (!needs_exact_sum || t == b))
            .map(|(i, &t)| (i, t))
            .find(|&(i, _)| i < tiers.len())
    }

    /// Answer a routed query from tier `tier_idx`, falling back to raw
    /// rows for edge and dirty buckets. `plan` must have been accepted by
    /// [`RollupStore::route`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve(
        &self,
        measurement: &str,
        tier_idx: usize,
        interval: i64,
        plan: &QueryPlan,
        view: MeasurementView<'_>,
        rows_scanned: &mut u64,
        buckets_tier: &mut u64,
        buckets_raw: &mut u64,
    ) -> Vec<ResultRow> {
        let tier = &self.tiers[measurement][tier_idx];
        let b = plan.bucket.expect("routed plan has a bucket") as i128;
        let t = interval as i128;
        if plan.ids.is_empty() {
            return Vec::new();
        }
        // Effective scan window, clipped by the matching series' stored
        // bounds so the bucket walk is finite even for unbounded queries.
        let mut data_lo = i64::MAX;
        let mut data_hi = i64::MIN;
        for &id in &plan.ids {
            if let Some((lo, hi)) = view.series(id).and_then(|s| s.time_bounds()) {
                data_lo = data_lo.min(lo);
                data_hi = data_hi.max(hi);
            }
        }
        if data_lo > data_hi {
            return Vec::new();
        }
        let eff_lo = (plan.start as i128).max(data_lo as i128);
        let eff_hi = (plan.end as i128).min(data_hi as i128 + 1);
        if eff_lo >= eff_hi {
            return Vec::new();
        }

        let mut out = Vec::new();
        let mut bucket = bucket_floor(eff_lo, b);
        while bucket < eff_hi {
            let bucket_end = bucket + b;
            let interior = bucket >= plan.start as i128 && bucket_end <= plan.end as i128;
            let d_lo = bucket.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
            let d_hi = bucket_end.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
            let dirty = d_lo < d_hi && tier.dirty.range(d_lo..d_hi).next().is_some();
            let row = if interior && !dirty {
                *buckets_tier += 1;
                serve_bucket_from_cells(tier, bucket as i64, b as i64, t as i64, plan)
            } else {
                *buckets_raw += 1;
                serve_bucket_from_raw(bucket, bucket_end, plan, view, rows_scanned)
            };
            if let Some(row) = row {
                out.push(row);
            }
            bucket = bucket_end;
        }
        out
    }
}

/// Recompute the dirty buckets of one tier from raw storage. `view` is
/// `None` when the measurement vanished entirely. Stale cells are wiped
/// unconditionally first, so series that no longer exist (retention,
/// rebuilds) cannot leave orphaned cells behind.
fn materialize(
    tier: &mut TierData,
    dirty: &[i64],
    t: i64,
    view: Option<&MeasurementView<'_>>,
    report: &mut RollupTickReport,
) {
    for &bucket in dirty {
        let doomed: Vec<(i64, SeriesId)> = tier
            .cells
            .range((bucket, SeriesId(0))..=(bucket, SeriesId(u64::MAX)))
            .map(|(k, _)| *k)
            .collect();
        for k in doomed {
            tier.cells.remove(&k);
            report.cells_removed += 1;
        }
    }
    // Without raw rows to fold, the dirty buckets stay empty.
    let Some(view) = view else { return };
    // Group consecutive dirty buckets into runs so each series is ranged
    // once per run instead of once per bucket.
    let mut runs: Vec<(i64, i64)> = Vec::new(); // [start, end) in ts units
    for &bucket in dirty {
        match runs.last_mut() {
            Some((_, end)) if *end == bucket => *end = bucket.saturating_add(t),
            _ => runs.push((bucket, bucket.saturating_add(t))),
        }
    }
    let ids = view.matching_series(&[]);
    for &(run_lo, run_hi) in &runs {
        for &id in &ids {
            let Some(s) = view.series(id) else { continue };
            // Fold the run's raw rows per bucket, in timestamp order —
            // the per-series order `sum` exactness relies on.
            let mut fresh: BTreeMap<i64, CellAgg> = BTreeMap::new();
            for row in s.range(run_lo, run_hi) {
                report.rows_folded += 1;
                let bucket = bucket_floor(row.timestamp as i128, t as i128) as i64;
                let cell = fresh.entry(bucket).or_insert_with(|| CellAgg {
                    rows: 0,
                    fields: BTreeMap::new(),
                });
                cell.rows += 1;
                let key = (row.timestamp, id.0);
                for (field, value) in &row.fields {
                    if let Some(v) = value.as_f64() {
                        cell.fields
                            .entry(field.clone())
                            .or_insert_with(FieldAgg::new)
                            .push(key, v);
                    }
                }
            }
            for (bucket, cell) in fresh {
                tier.cells.insert((bucket, id), cell);
                report.cells_written += 1;
            }
        }
    }
}

/// Per-projection serving accumulator, merging tier cells (or raw rows)
/// with exactly the executor's order-free tie rules; `Sum` is only ever
/// fed one cell or one series' ordered rows.
enum ServeAcc {
    Extreme {
        is_min: bool,
        count: u64,
        best: f64,
        best_key: RowKey,
    },
    Count {
        count: u64,
    },
    Edge {
        want_first: bool,
        entry: Option<(RowKey, f64)>,
    },
    Sum {
        count: u64,
        sum: f64,
    },
}

impl ServeAcc {
    fn for_projection(p: &Projection) -> ServeAcc {
        use crate::aggregate::AggregateFn as F;
        match p {
            Projection::Aggregate(F::Min, _) => ServeAcc::Extreme {
                is_min: true,
                count: 0,
                best: f64::INFINITY,
                best_key: KEY_SENTINEL,
            },
            Projection::Aggregate(F::Max, _) => ServeAcc::Extreme {
                is_min: false,
                count: 0,
                best: f64::NEG_INFINITY,
                best_key: KEY_SENTINEL,
            },
            Projection::Aggregate(F::Count, _) => ServeAcc::Count { count: 0 },
            Projection::Aggregate(F::First, _) => ServeAcc::Edge {
                want_first: true,
                entry: None,
            },
            Projection::Aggregate(F::Sum, _) => ServeAcc::Sum { count: 0, sum: 0.0 },
            Projection::Aggregate(F::Last, _) | Projection::Field(_) => ServeAcc::Edge {
                want_first: false,
                entry: None,
            },
            _ => unreachable!("route() rejected this projection"),
        }
    }

    /// Fold one raw value (edge/dirty buckets).
    fn push(&mut self, key: RowKey, v: f64) {
        match self {
            ServeAcc::Extreme {
                is_min,
                count,
                best,
                best_key,
            } => {
                *count += 1;
                let wins = if *is_min { v < *best } else { v > *best };
                if wins || (v == *best && key < *best_key) {
                    *best = v;
                    *best_key = key;
                }
            }
            ServeAcc::Count { count } => *count += 1,
            ServeAcc::Edge { want_first, entry } => match entry {
                None => *entry = Some((key, v)),
                Some((k, val)) => {
                    let replace = if *want_first { key < *k } else { key > *k };
                    if replace {
                        *k = key;
                        *val = v;
                    }
                }
            },
            ServeAcc::Sum { count, sum } => {
                *count += 1;
                *sum += v;
            }
        }
    }

    /// Merge one tier cell's per-field state (interior buckets).
    fn merge_cell(&mut self, agg: &FieldAgg) {
        if agg.count == 0 {
            return;
        }
        match self {
            ServeAcc::Extreme {
                is_min,
                count,
                best,
                best_key,
            } => {
                *count += agg.count;
                let (v, key) = if *is_min {
                    (agg.min, agg.min_key)
                } else {
                    (agg.max, agg.max_key)
                };
                let wins = if *is_min { v < *best } else { v > *best };
                if wins || (v == *best && key < *best_key) {
                    *best = v;
                    *best_key = key;
                }
            }
            ServeAcc::Count { count } => *count += agg.count,
            ServeAcc::Edge { want_first, entry } => {
                let (key, v) = if *want_first {
                    (agg.first_key, agg.first)
                } else {
                    (agg.last_key, agg.last)
                };
                match entry {
                    None => *entry = Some((key, v)),
                    Some((k, val)) => {
                        let replace = if *want_first { key < *k } else { key > *k };
                        if replace {
                            *k = key;
                            *val = v;
                        }
                    }
                }
            }
            ServeAcc::Sum { count, sum } => {
                // `route()` guarantees a single series and bucket == tier
                // interval, so exactly one cell ever reaches a Sum — the
                // stored fold is adopted, never combined.
                debug_assert_eq!(*count, 0, "sum must be served by exactly one cell");
                *count += agg.count;
                *sum = agg.sum;
            }
        }
    }

    /// Mirrors `Accumulator::finish` (`count` reports 0, all-NaN extremes
    /// report their untouched ±inf sentinel, empty folds are NULL).
    fn finish(&self) -> Option<f64> {
        match self {
            ServeAcc::Extreme { count: 0, .. } => None,
            ServeAcc::Extreme { best, .. } => Some(*best),
            ServeAcc::Count { count } => Some(*count as f64),
            ServeAcc::Edge { entry, .. } => entry.map(|(_, v)| v),
            ServeAcc::Sum { count: 0, .. } => None,
            ServeAcc::Sum { sum, .. } => Some(*sum),
        }
    }
}

/// Answer one fully covered, clean query bucket from materialized cells.
fn serve_bucket_from_cells(
    tier: &TierData,
    bucket: i64,
    b: i64,
    t: i64,
    plan: &QueryPlan,
) -> Option<ResultRow> {
    let mut accs: Vec<ServeAcc> = plan
        .projections
        .iter()
        .map(ServeAcc::for_projection)
        .collect();
    let mut rows_present = false;
    let mut tb = bucket;
    let end = bucket.saturating_add(b);
    while tb < end {
        for ((_, id), cell) in tier
            .cells
            .range((tb, SeriesId(0))..=(tb, SeriesId(u64::MAX)))
        {
            if plan.ids.binary_search(id).is_err() {
                continue;
            }
            if cell.rows > 0 {
                rows_present = true;
            }
            for (acc, p) in accs.iter_mut().zip(&plan.projections) {
                let field = match p {
                    Projection::Aggregate(_, f) | Projection::Field(f) => f,
                    Projection::Wildcard => unreachable!("plan expands wildcards"),
                };
                if let Some(agg) = cell.fields.get(field) {
                    acc.merge_cell(agg);
                }
            }
        }
        tb = tb.saturating_add(t);
    }
    rows_present.then(|| finish_row(bucket, &accs, plan))
}

/// Answer one edge or dirty bucket by folding raw rows, clipped to the
/// query window.
fn serve_bucket_from_raw(
    bucket: i128,
    bucket_end: i128,
    plan: &QueryPlan,
    view: MeasurementView<'_>,
    rows_scanned: &mut u64,
) -> Option<ResultRow> {
    let lo = bucket
        .max(plan.start as i128)
        .clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    let hi = bucket_end
        .min(plan.end as i128)
        .clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    let mut accs: Vec<ServeAcc> = plan
        .projections
        .iter()
        .map(ServeAcc::for_projection)
        .collect();
    let mut rows_present = false;
    for &id in &plan.ids {
        let Some(s) = view.series(id) else { continue };
        for row in s.range(lo, hi) {
            *rows_scanned += 1;
            rows_present = true;
            let key = (row.timestamp, id.0);
            for (acc, p) in accs.iter_mut().zip(&plan.projections) {
                let field = match p {
                    Projection::Aggregate(_, f) | Projection::Field(f) => f,
                    Projection::Wildcard => unreachable!("plan expands wildcards"),
                };
                if let Some(v) = row.fields.get(field).and_then(FieldValue::as_f64) {
                    acc.push(key, v);
                }
            }
        }
    }
    rows_present.then(|| finish_row(bucket as i64, &accs, plan))
}

fn finish_row(bucket: i64, accs: &[ServeAcc], plan: &QueryPlan) -> ResultRow {
    let mut values = BTreeMap::new();
    for (col, acc) in plan.columns.iter().zip(accs) {
        values.insert(col.clone(), acc.finish());
    }
    ResultRow {
        timestamp: bucket,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::storage::Storage;

    fn filled() -> Storage {
        let mut s = Storage::new();
        for t in 0..60 {
            s.insert(
                Point::new("m")
                    .tag("host", "a")
                    .field("v", t as f64)
                    .timestamp(t),
            );
        }
        s
    }

    fn view_ids(s: &Storage) -> Vec<SeriesId> {
        s.measurement("m").unwrap().matching_series(&[])
    }

    #[test]
    fn tick_materializes_and_audit_balances() {
        let storage = filled();
        let mut rs = RollupStore::new(RollupConfig::with_tiers(&[10, 30]));
        for t in 0..60 {
            rs.note_write("m", t);
        }
        assert_eq!(rs.dirty_count(), 6 + 2);
        let (report, touched) = rs.tick(&storage);
        assert_eq!(touched, vec!["m".to_string()]);
        assert_eq!(report.buckets_materialized, 8);
        assert_eq!(report.rows_folded, 60 * 2); // both tiers fold all rows
        assert_eq!(rs.dirty_count(), 0);
        let audit = rs.audit(storage.total_rows() as u64);
        assert!(audit.conserved(), "{audit:?}");
        assert_eq!(audit.tier_rows, vec![(10, 60), (30, 60)]);
    }

    #[test]
    fn tick_is_idempotent_under_rewrites() {
        let mut storage = filled();
        let mut rs = RollupStore::new(RollupConfig::with_tiers(&[10]));
        for t in 0..60 {
            rs.note_write("m", t);
        }
        rs.tick(&storage);
        let before: Vec<_> = rs.tiers["m"][0].cells.clone().into_iter().collect();
        // Rewrite one cell (LWW) and re-tick only its bucket.
        storage.insert(
            Point::new("m")
                .tag("host", "a")
                .field("v", 999.0)
                .timestamp(5),
        );
        rs.note_write("m", 5);
        let (report, _) = rs.tick(&storage);
        assert_eq!(report.buckets_materialized, 1);
        let after: Vec<_> = rs.tiers["m"][0].cells.clone().into_iter().collect();
        assert_eq!(before.len(), after.len());
        let cell = &rs.tiers["m"][0].cells[&(0, view_ids(&storage)[0])];
        assert_eq!(cell.fields["v"].max, 999.0);
    }

    #[test]
    fn vanished_measurement_clears_cells() {
        let mut storage = filled();
        let mut rs = RollupStore::new(RollupConfig::with_tiers(&[10]));
        for t in 0..60 {
            rs.note_write("m", t);
        }
        rs.tick(&storage);
        assert!(rs.cell_count() > 0);
        storage.drop_before(i64::MAX);
        // Retention does NOT mark dirty (tiers outlive raw)...
        let audit = rs.audit(storage.total_rows() as u64);
        assert!(audit.accounted() && !audit.conserved());
        assert_eq!(audit.rolled_beyond_raw, 60);
        // ...but an explicit re-mark + tick folds the (now empty) truth.
        for t in 0..60 {
            rs.note_write("m", t);
        }
        rs.tick(&storage);
        assert_eq!(rs.cell_count(), 0);
    }

    #[test]
    fn route_respects_the_exactness_envelope() {
        let storage = filled();
        let mut rs = RollupStore::new(RollupConfig::with_tiers(&[10, 30]));
        rs.note_write("m", 0);
        let q = |text: &str| {
            crate::query::plan(&storage, &crate::Query::parse(text).unwrap())
                .unwrap()
                .0
        };
        // count/min/max/last: coarsest dividing tier wins.
        let p = q("SELECT count(\"v\"), max(\"v\") FROM \"m\" GROUP BY time(30)");
        assert_eq!(rs.route("m", &p), Some((1, 30)));
        let p = q("SELECT min(\"v\") FROM \"m\" GROUP BY time(20)");
        assert_eq!(rs.route("m", &p), Some((0, 10)));
        // Bucket not a multiple of any tier: raw.
        let p = q("SELECT count(\"v\") FROM \"m\" GROUP BY time(7)");
        assert_eq!(rs.route("m", &p), None);
        // Ordered folds never route.
        let p = q("SELECT mean(\"v\") FROM \"m\" GROUP BY time(30)");
        assert_eq!(rs.route("m", &p), None);
        // Sum: single series AND bucket == tier interval.
        let p = q("SELECT sum(\"v\") FROM \"m\" WHERE host='a' GROUP BY time(30)");
        assert_eq!(rs.route("m", &p), Some((1, 30)));
        let p = q("SELECT sum(\"v\") FROM \"m\" WHERE host='a' GROUP BY time(60)");
        assert_eq!(rs.route("m", &p), None);
        // No GROUP BY: raw.
        let p = q("SELECT count(\"v\") FROM \"m\"");
        assert_eq!(rs.route("m", &p), None);
        // Unknown measurement (no tier state): raw.
        let p = q("SELECT count(\"v\") FROM \"m\" GROUP BY time(10)");
        assert_eq!(rs.route("ghost", &p), None);
    }
}
