//! InfluxQL-like query language: parser and executor.
//!
//! Supported shape (exactly what the paper's auto-generated queries in
//! Listing 3 use, plus aggregation/downsampling for AGG observations):
//!
//! ```text
//! SELECT "_cpu0", "_cpu1" FROM "kernel_percpu_cpu_idle"
//!        WHERE tag='278e26c2' AND time >= 10 AND time < 20
//!        [GROUP BY time(5)]
//! SELECT mean("value") FROM "m" WHERE host='skx'
//! SELECT * FROM "m"
//! ```

use crate::aggregate::{Accumulator, AggregateFn};
use crate::error::TsdbError;
use crate::series::SeriesId;
use crate::storage::{MeasurementView, Storage};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One projected column: a raw field or an aggregate over a field.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// All fields of the measurement.
    Wildcard,
    /// A single raw field.
    Field(String),
    /// `func(field)`.
    Aggregate(AggregateFn, String),
}

/// Parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected columns.
    pub projections: Vec<Projection>,
    /// Target measurement.
    pub measurement: String,
    /// `tag = value` constraints.
    pub tag_filters: Vec<(String, String)>,
    /// Inclusive lower time bound.
    pub time_start: Option<i64>,
    /// Exclusive upper time bound.
    pub time_end: Option<i64>,
    /// `GROUP BY time(interval)` bucket width.
    pub group_by_time: Option<i64>,
}

impl Query {
    /// Parse the textual query.
    pub fn parse(text: &str) -> Result<Self, TsdbError> {
        Parser::new(text).parse()
    }

    /// Canonical textual rendering, used as the query-cache key: fixed
    /// spacing and quoting, tag filters sorted and deduplicated (their
    /// order and multiplicity don't affect results — `lookup_all`
    /// intersects posting sets). Two queries with the same normalized text
    /// produce the same result against the same storage state.
    pub fn normalized(&self) -> String {
        let mut s = String::from("SELECT ");
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match p {
                Projection::Wildcard => s.push('*'),
                Projection::Field(f) => {
                    let _ = write!(s, "\"{f}\"");
                }
                Projection::Aggregate(func, f) => {
                    let _ = write!(s, "{}(\"{f}\")", func.name());
                }
            }
        }
        let _ = write!(s, " FROM \"{}\"", self.measurement);
        let mut clauses: Vec<String> = Vec::new();
        let mut tags = self.tag_filters.clone();
        tags.sort();
        tags.dedup();
        for (k, v) in tags {
            clauses.push(format!("{k}='{v}'"));
        }
        if let Some(t) = self.time_start {
            clauses.push(format!("time >= {t}"));
        }
        if let Some(t) = self.time_end {
            clauses.push(format!("time < {t}"));
        }
        if !clauses.is_empty() {
            let _ = write!(s, " WHERE {}", clauses.join(" AND "));
        }
        if let Some(b) = self.group_by_time {
            let _ = write!(s, " GROUP BY time({b})");
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

/// Resolved physical plan for one query: wildcards expanded against the
/// measurement's field keys, time bounds concretized, the matching series
/// set resolved through the inverted index and then pruned by each series'
/// stored time bounds. The plan is what both executors agree on; pruning is
/// semantics-preserving because a pruned series contributes zero rows to
/// the scanned window.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Projections with `Wildcard` expanded (never contains `Wildcard`).
    pub projections: Vec<Projection>,
    /// Output column names, one per projection.
    pub columns: Vec<String>,
    /// Inclusive scan start.
    pub start: i64,
    /// Exclusive scan end.
    pub end: i64,
    /// Matching series ids in ascending order, time-pruned.
    pub ids: Vec<SeriesId>,
    /// Series the index matched but whose `[min, max]` timestamps fall
    /// entirely outside the scan window.
    pub series_pruned: usize,
    /// `GROUP BY time(b)` bucket width.
    pub bucket: Option<i64>,
    /// Whether any projection is an aggregate (bucketed output).
    pub aggregated: bool,
}

/// Plan a query against storage, returning the plan plus the measurement
/// view it was planned over.
pub fn plan<'a>(
    storage: &'a Storage,
    q: &Query,
) -> Result<(QueryPlan, MeasurementView<'a>), TsdbError> {
    let m = storage
        .measurement(&q.measurement)
        .ok_or_else(|| TsdbError::UnknownMeasurement(q.measurement.clone()))?;

    let mut projections = Vec::new();
    for p in &q.projections {
        match p {
            Projection::Wildcard => {
                for f in m.field_keys() {
                    projections.push(Projection::Field(f));
                }
            }
            other => projections.push(other.clone()),
        }
    }
    let columns: Vec<String> = projections
        .iter()
        .map(|p| match p {
            Projection::Field(f) => f.clone(),
            Projection::Aggregate(func, f) => format!("{}({f})", func.name()),
            Projection::Wildcard => unreachable!("expanded above"),
        })
        .collect();

    let start = q.time_start.unwrap_or(i64::MIN);
    let end = q.time_end.unwrap_or(i64::MAX);
    let mut ids = Vec::new();
    let mut series_pruned = 0;
    for id in m.matching_series(&q.tag_filters) {
        let overlaps = m
            .series(id)
            .and_then(|s| s.time_bounds())
            .map(|(lo, hi)| lo < end && hi >= start)
            .unwrap_or(false);
        if overlaps {
            ids.push(id);
        } else {
            series_pruned += 1;
        }
    }

    let aggregated = projections
        .iter()
        .any(|p| matches!(p, Projection::Aggregate(..)));
    Ok((
        QueryPlan {
            projections,
            columns,
            start,
            end,
            ids,
            series_pruned,
            bucket: q.group_by_time,
            aggregated,
        },
        m,
    ))
}

/// One output row.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Row timestamp (bucket start for aggregated queries).
    pub timestamp: i64,
    /// Column name -> value (`None` renders as null).
    pub values: BTreeMap<String, Option<f64>>,
}

/// Query result set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column names in projection order.
    pub columns: Vec<String>,
    /// Output rows in time order.
    pub rows: Vec<ResultRow>,
}

impl QueryResult {
    /// Extract one column as a (timestamp, value) series, skipping nulls.
    pub fn column_series(&self, column: &str) -> Vec<(i64, f64)> {
        self.rows
            .iter()
            .filter_map(|r| {
                r.values
                    .get(column)
                    .and_then(|v| v.map(|x| (r.timestamp, x)))
            })
            .collect()
    }

    /// Sum every numeric cell (used for total data-point accounting).
    pub fn total(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| r.values.values())
            .filter_map(|v| *v)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    tokens: Vec<Token<'a>>,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Token<'a> {
    Word(&'a str),
    Quoted(String),
    Symbol(char),
    Number(i64),
}

fn tokenize(text: &str) -> Result<Vec<Token<'_>>, TsdbError> {
    let mut out = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '"' | '\'' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for (_, c2) in chars.by_ref() {
                    if c2 == c {
                        closed = true;
                        break;
                    }
                    s.push(c2);
                }
                if !closed {
                    return Err(TsdbError::QueryParse(format!("unclosed quote at {i}")));
                }
                out.push(Token::Quoted(s));
            }
            ',' | '(' | ')' | '=' | '*' => {
                chars.next();
                out.push(Token::Symbol(c));
            }
            '<' | '>' => {
                chars.next();
                if let Some(&(_, '=')) = chars.peek() {
                    chars.next();
                    out.push(Token::Word(if c == '<' { "<=" } else { ">=" }));
                } else {
                    out.push(Token::Symbol(c));
                }
            }
            '-' | '0'..='9' => {
                let start = i;
                chars.next();
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_ascii_digit() {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(text.len());
                let n: i64 = text[start..end]
                    .parse()
                    .map_err(|_| TsdbError::QueryParse(format!("bad number at {start}")))?;
                out.push(Token::Number(n));
            }
            _ => {
                let start = i;
                chars.next();
                while let Some(&(_, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' || c2 == '.' || c2 == '-' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                let end = chars.peek().map(|&(j, _)| j).unwrap_or(text.len());
                out.push(Token::Word(&text[start..end]));
            }
        }
    }
    Ok(out)
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            tokens: tokenize(text).unwrap_or_default(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&Token<'a>> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token<'a>> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), TsdbError> {
        match self.next() {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(TsdbError::QueryParse(format!(
                "expected {kw}, found {other:?}"
            ))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn name(&mut self) -> Result<String, TsdbError> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w.to_string()),
            Some(Token::Quoted(s)) => Ok(s),
            other => Err(TsdbError::QueryParse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<Query, TsdbError> {
        self.expect_keyword("SELECT")?;
        let mut projections = Vec::new();
        loop {
            if matches!(self.peek(), Some(Token::Symbol('*'))) {
                self.next();
                projections.push(Projection::Wildcard);
            } else {
                let name = self.name()?;
                if matches!(self.peek(), Some(Token::Symbol('('))) {
                    let func = AggregateFn::parse(&name).ok_or_else(|| {
                        TsdbError::QueryParse(format!("unknown aggregate: {name}"))
                    })?;
                    self.next(); // (
                    let field = self.name()?;
                    match self.next() {
                        Some(Token::Symbol(')')) => {}
                        other => {
                            return Err(TsdbError::QueryParse(format!(
                                "expected ')', found {other:?}"
                            )))
                        }
                    }
                    projections.push(Projection::Aggregate(func, field));
                } else {
                    projections.push(Projection::Field(name));
                }
            }
            if matches!(self.peek(), Some(Token::Symbol(','))) {
                self.next();
            } else {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let measurement = self.name()?;

        let mut q = Query {
            projections,
            measurement,
            tag_filters: Vec::new(),
            time_start: None,
            time_end: None,
            group_by_time: None,
        };

        if self.at_keyword("WHERE") {
            self.next();
            loop {
                let lhs = self.name()?;
                if lhs.eq_ignore_ascii_case("time") {
                    let op = match self.next() {
                        Some(Token::Word(w)) => w.to_string(),
                        Some(Token::Symbol(c)) => c.to_string(),
                        other => {
                            return Err(TsdbError::QueryParse(format!(
                                "expected comparison op, found {other:?}"
                            )))
                        }
                    };
                    let n = match self.next() {
                        Some(Token::Number(n)) => n,
                        other => {
                            return Err(TsdbError::QueryParse(format!(
                                "expected number, found {other:?}"
                            )))
                        }
                    };
                    match op.as_str() {
                        ">=" => q.time_start = Some(n),
                        ">" => q.time_start = Some(n + 1),
                        "<" => q.time_end = Some(n),
                        "<=" => q.time_end = Some(n + 1),
                        "=" => {
                            q.time_start = Some(n);
                            q.time_end = Some(n + 1);
                        }
                        _ => {
                            return Err(TsdbError::QueryParse(format!("unsupported time op: {op}")))
                        }
                    }
                } else {
                    match self.next() {
                        Some(Token::Symbol('=')) => {}
                        other => {
                            return Err(TsdbError::QueryParse(format!(
                                "expected '=', found {other:?}"
                            )))
                        }
                    }
                    let value = self.name()?;
                    q.tag_filters.push((lhs, value));
                }
                if self.at_keyword("AND") {
                    self.next();
                } else {
                    break;
                }
            }
        }

        if self.at_keyword("GROUP") {
            self.next();
            self.expect_keyword("BY")?;
            self.expect_keyword("time")?;
            match (self.next(), self.next(), self.next()) {
                (Some(Token::Symbol('(')), Some(Token::Number(n)), Some(Token::Symbol(')'))) => {
                    if n <= 0 {
                        return Err(TsdbError::QueryParse("non-positive interval".into()));
                    }
                    q.group_by_time = Some(n);
                }
                other => {
                    return Err(TsdbError::QueryParse(format!(
                        "expected time(interval), found {other:?}"
                    )))
                }
            }
        }

        if self.peek().is_some() {
            return Err(TsdbError::QueryParse(format!(
                "trailing tokens at {}",
                self.pos
            )));
        }
        Ok(q)
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Execute a parsed query against storage.
pub fn execute(storage: &Storage, q: &Query) -> Result<QueryResult, TsdbError> {
    let m = storage
        .measurement(&q.measurement)
        .ok_or_else(|| TsdbError::UnknownMeasurement(q.measurement.clone()))?;

    // Resolve wildcard projections against the measurement's field keys.
    let mut projections = Vec::new();
    for p in &q.projections {
        match p {
            Projection::Wildcard => {
                for f in m.field_keys() {
                    projections.push(Projection::Field(f));
                }
            }
            other => projections.push(other.clone()),
        }
    }
    let columns: Vec<String> = projections
        .iter()
        .map(|p| match p {
            Projection::Field(f) => f.clone(),
            Projection::Aggregate(func, f) => format!("{}({f})", func.name()),
            Projection::Wildcard => unreachable!("expanded above"),
        })
        .collect();

    let start = q.time_start.unwrap_or(i64::MIN);
    let end = q.time_end.unwrap_or(i64::MAX);
    let ids = m.matching_series(&q.tag_filters);

    // Merge rows from matching series into time order.
    let mut merged: Vec<(
        i64,
        &std::collections::BTreeMap<String, crate::value::FieldValue>,
    )> = Vec::new();
    for id in ids {
        let s = m.series(id).expect("id from matching_series");
        for row in s.range(start, end) {
            merged.push((row.timestamp, &row.fields));
        }
    }
    merged.sort_by_key(|(ts, _)| *ts);

    let aggregated = projections
        .iter()
        .any(|p| matches!(p, Projection::Aggregate(..)));

    let mut rows = Vec::new();
    if aggregated {
        // Bucketed or whole-range aggregation.
        let bucket = q.group_by_time;
        let mut groups: BTreeMap<i64, Vec<Accumulator>> = BTreeMap::new();
        for (ts, fields) in &merged {
            let key = match bucket {
                Some(b) => ts.div_euclid(b) * b,
                None => 0,
            };
            let accs = groups.entry(key).or_insert_with(|| {
                projections
                    .iter()
                    .map(|p| match p {
                        Projection::Aggregate(f, _) => Accumulator::new(*f),
                        _ => Accumulator::new(AggregateFn::Last),
                    })
                    .collect()
            });
            for (acc, p) in accs.iter_mut().zip(&projections) {
                let field = match p {
                    Projection::Aggregate(_, f) | Projection::Field(f) => f,
                    Projection::Wildcard => unreachable!(),
                };
                if let Some(v) = fields.get(field).and_then(|v| v.as_f64()) {
                    acc.push(v);
                }
            }
        }
        for (ts, accs) in groups {
            let mut values = BTreeMap::new();
            for (col, acc) in columns.iter().zip(&accs) {
                values.insert(col.clone(), acc.finish());
            }
            rows.push(ResultRow {
                timestamp: ts,
                values,
            });
        }
    } else {
        for (ts, fields) in merged {
            let mut values = BTreeMap::new();
            for (col, p) in columns.iter().zip(&projections) {
                let field = match p {
                    Projection::Field(f) => f,
                    _ => unreachable!("non-aggregated path"),
                };
                values.insert(col.clone(), fields.get(field).and_then(|v| v.as_f64()));
            }
            rows.push(ResultRow {
                timestamp: ts,
                values,
            });
        }
    }

    Ok(QueryResult { columns, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn filled() -> Storage {
        let mut s = Storage::new();
        for t in 0..10 {
            s.insert(
                Point::new("m")
                    .tag("tag", "obs1")
                    .field("_cpu0", t as f64)
                    .field("_cpu1", (t * 2) as f64)
                    .timestamp(t),
            );
        }
        s.insert(
            Point::new("m")
                .tag("tag", "obs2")
                .field("_cpu0", 100.0)
                .timestamp(5),
        );
        s
    }

    #[test]
    fn parse_listing3_style() {
        let q = Query::parse(
            "SELECT \"_cpu0\", \"_cpu1\" FROM \"kernel_percpu_cpu_idle\" WHERE tag='278e26c2-3fd3'",
        )
        .unwrap();
        assert_eq!(q.projections.len(), 2);
        assert_eq!(q.measurement, "kernel_percpu_cpu_idle");
        assert_eq!(q.tag_filters[0], ("tag".into(), "278e26c2-3fd3".into()));
    }

    #[test]
    fn select_with_tag_filter() {
        let s = filled();
        let q = Query::parse("SELECT \"_cpu0\" FROM \"m\" WHERE tag='obs1'").unwrap();
        let r = execute(&s, &q).unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.column_series("_cpu0").len(), 10);
    }

    #[test]
    fn time_range_filters() {
        let s = filled();
        let q =
            Query::parse("SELECT \"_cpu0\" FROM \"m\" WHERE tag='obs1' AND time >= 2 AND time < 5")
                .unwrap();
        let r = execute(&s, &q).unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].timestamp, 2);
    }

    #[test]
    fn aggregation_whole_range() {
        let s = filled();
        let q = Query::parse("SELECT mean(\"_cpu0\") FROM \"m\" WHERE tag='obs1'").unwrap();
        let r = execute(&s, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].values["mean(_cpu0)"], Some(4.5));
    }

    #[test]
    fn group_by_time_buckets() {
        let s = filled();
        let q = Query::parse("SELECT sum(\"_cpu0\") FROM \"m\" WHERE tag='obs1' GROUP BY time(5)")
            .unwrap();
        let r = execute(&s, &q).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].timestamp, 0);
        assert_eq!(
            r.rows[0].values["sum(_cpu0)"],
            Some(0.0 + 1.0 + 2.0 + 3.0 + 4.0)
        );
        assert_eq!(
            r.rows[1].values["sum(_cpu0)"],
            Some(5.0 + 6.0 + 7.0 + 8.0 + 9.0)
        );
    }

    #[test]
    fn wildcard_expands_fields() {
        let s = filled();
        let q = Query::parse("SELECT * FROM \"m\" WHERE tag='obs1'").unwrap();
        let r = execute(&s, &q).unwrap();
        assert_eq!(r.columns, vec!["_cpu0".to_string(), "_cpu1".to_string()]);
    }

    #[test]
    fn missing_field_yields_null() {
        let s = filled();
        let q = Query::parse("SELECT \"_cpu1\" FROM \"m\" WHERE tag='obs2'").unwrap();
        let r = execute(&s, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].values["_cpu1"], None);
        assert!(r.column_series("_cpu1").is_empty());
    }

    #[test]
    fn unknown_measurement_errors() {
        let s = filled();
        let q = Query::parse("SELECT \"f\" FROM \"nosuch\"").unwrap();
        assert!(matches!(
            execute(&s, &q),
            Err(TsdbError::UnknownMeasurement(_))
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(Query::parse("").is_err());
        assert!(Query::parse("SELECT FROM m").is_err());
        assert!(Query::parse("SELECT \"a\" FROM \"m\" WHERE time ~ 3").is_err());
        assert!(Query::parse("SELECT bogus(\"a\") FROM \"m\"").is_err());
        assert!(Query::parse("SELECT \"a\" FROM \"m\" GROUP BY time(0)").is_err());
        assert!(Query::parse("SELECT \"a\" FROM \"m\" trailing").is_err());
    }

    #[test]
    fn negative_timestamps_bucket_correctly() {
        let mut s = Storage::new();
        s.insert(Point::new("m").field("v", 1.0).timestamp(-7));
        let q = Query::parse("SELECT sum(\"v\") FROM \"m\" GROUP BY time(5)").unwrap();
        let r = execute(&s, &q).unwrap();
        assert_eq!(r.rows[0].timestamp, -10); // floor division
    }

    #[test]
    fn normalized_is_canonical() {
        let a = Query::parse(
            "SELECT sum(\"v\") FROM \"m\" WHERE b='2' AND a='1' AND time >= 3 AND time < 9 GROUP BY time(5)",
        )
        .unwrap();
        let b = Query::parse(
            "SELECT sum( \"v\" )  FROM m WHERE a='1' AND a='1' AND b='2' AND time<9 AND time>=3 GROUP BY time(5)",
        )
        .unwrap();
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(
            a.normalized(),
            "SELECT sum(\"v\") FROM \"m\" WHERE a='1' AND b='2' AND time >= 3 AND time < 9 GROUP BY time(5)"
        );
        // Different filters keep distinct keys.
        let c = Query::parse("SELECT sum(\"v\") FROM \"m\" WHERE a='2'").unwrap();
        assert_ne!(a.normalized(), c.normalized());
    }

    #[test]
    fn plan_expands_wildcard_and_prunes_series() {
        let s = filled(); // obs1 spans ts 0..9, obs2 only ts 5
        let q = Query::parse("SELECT * FROM \"m\" WHERE time >= 7 AND time < 20").unwrap();
        let (plan, m) = plan(&s, &q).unwrap();
        assert_eq!(plan.columns, vec!["_cpu0".to_string(), "_cpu1".to_string()]);
        assert_eq!(plan.start, 7);
        assert_eq!(plan.end, 20);
        // obs2's only row (ts 5) is outside [7, 20): pruned.
        assert_eq!(plan.ids.len(), 1);
        assert_eq!(plan.series_pruned, 1);
        assert!(m.series(plan.ids[0]).is_some());
        assert!(!plan.aggregated);

        let q = Query::parse("SELECT \"_cpu0\" FROM \"m\"").unwrap();
        let (plan, _) = plan_unbounded(&s, &q);
        assert_eq!(plan.ids.len(), 2);
        assert_eq!(plan.series_pruned, 0);
    }

    fn plan_unbounded<'a>(s: &'a Storage, q: &Query) -> (QueryPlan, MeasurementView<'a>) {
        plan(s, q).unwrap()
    }

    #[test]
    fn plan_unknown_measurement_errors() {
        let s = filled();
        let q = Query::parse("SELECT \"f\" FROM \"nosuch\"").unwrap();
        assert!(matches!(
            plan(&s, &q),
            Err(TsdbError::UnknownMeasurement(_))
        ));
    }
}
