//! Live subscriptions: dashboards subscribe to measurements and receive
//! points as they are written, which is how the live-CARM panel and the
//! Fig. 7 event panels update in real time.

use crate::point::Point;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Matches points against a subscription's interest.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Measurement prefix to match (empty = all measurements).
    pub measurement_prefix: String,
    /// Required tag constraints (all must match).
    pub tags: Vec<(String, String)>,
}

impl Subscription {
    /// Subscribe to every measurement.
    pub fn all() -> Self {
        Subscription {
            measurement_prefix: String::new(),
            tags: Vec::new(),
        }
    }

    /// Subscribe to measurements starting with `prefix`.
    pub fn measurement(prefix: impl Into<String>) -> Self {
        Subscription {
            measurement_prefix: prefix.into(),
            tags: Vec::new(),
        }
    }

    /// Add a tag constraint.
    pub fn with_tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.push((key.into(), value.into()));
        self
    }

    /// Whether a point is interesting to this subscription.
    pub fn matches(&self, point: &Point) -> bool {
        point.measurement.starts_with(&self.measurement_prefix)
            && self
                .tags
                .iter()
                .all(|(k, v)| point.tags.get(k).is_some_and(|tv| tv == v))
    }
}

/// Fan-out hub the engine publishes into.
#[derive(Debug, Default)]
pub struct SubscriptionHub {
    subscribers: Mutex<Vec<(Subscription, Sender<Point>)>>,
}

impl SubscriptionHub {
    /// Create an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a subscription; returns the receiving end.
    pub fn subscribe(&self, sub: Subscription) -> Receiver<Point> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push((sub, tx));
        rx
    }

    /// Publish a point to all matching, still-connected subscribers.
    /// Disconnected subscribers are dropped lazily here.
    pub fn publish(&self, point: &Point) {
        let mut subs = self.subscribers.lock();
        subs.retain(|(sub, tx)| {
            if sub.matches(point) {
                // Send fails only when the receiver hung up; drop those.
                tx.send(point.clone()).is_ok()
            } else {
                // Non-matching subscribers are kept; disconnects are noticed
                // the next time a matching point is published.
                true
            }
        });
    }

    /// Number of live subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.lock().len()
    }

    /// True when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Drain everything currently queued on a receiver without blocking.
pub fn drain(rx: &Receiver<Point>) -> Vec<Point> {
    let mut out = Vec::new();
    while let Ok(p) = rx.try_recv() {
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(m: &str, host: &str) -> Point {
        Point::new(m).tag("host", host).field("v", 1.0)
    }

    #[test]
    fn subscription_matching() {
        let s = Subscription::measurement("perfevent_").with_tag("host", "skx");
        assert!(s.matches(&pt("perfevent_hwcounters_x", "skx")));
        assert!(!s.matches(&pt("kernel_percpu", "skx")));
        assert!(!s.matches(&pt("perfevent_hwcounters_x", "icl")));
        assert!(Subscription::all().matches(&pt("anything", "any")));
    }

    #[test]
    fn hub_fans_out_matching_points() {
        let hub = SubscriptionHub::new();
        let rx_all = hub.subscribe(Subscription::all());
        let rx_skx = hub.subscribe(Subscription::all().with_tag("host", "skx"));
        hub.publish(&pt("m", "skx"));
        hub.publish(&pt("m", "icl"));
        assert_eq!(drain(&rx_all).len(), 2);
        assert_eq!(drain(&rx_skx).len(), 1);
    }

    #[test]
    fn disconnected_matching_subscriber_is_removed() {
        let hub = SubscriptionHub::new();
        let rx = hub.subscribe(Subscription::all());
        assert_eq!(hub.len(), 1);
        drop(rx);
        hub.publish(&pt("m", "a"));
        assert_eq!(hub.len(), 0);
    }
}
