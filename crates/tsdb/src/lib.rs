//! # pmove-tsdb — embedded time-series database
//!
//! A deterministic, in-process stand-in for the InfluxDB 1.x instance that the
//! P-MoVE paper uses as its telemetry store. It implements the subset of the
//! InfluxDB data model that P-MoVE relies on:
//!
//! * **measurements** holding **series** keyed by tag sets, each series a
//!   time-ordered sequence of field values ([`Point`]);
//! * **line protocol** parsing and rendering ([`line_protocol`]);
//! * an **inverted tag index** for `WHERE tag = value` filtering;
//! * an InfluxQL-like query layer: `SELECT f1, f2 FROM m WHERE tag='v' AND
//!   time >= a AND time < b` with aggregations (`MIN`/`MAX`/`MEAN`/...) and
//!   `GROUP BY time(interval)` downsampling ([`query`]);
//! * a **parallel sharded query engine**: series are hash-partitioned
//!   across fixed shards, scanned concurrently, and merged deterministically
//!   so results are bit-identical to the sequential reference executor at
//!   any thread count ([`exec`]), fronted by a write-invalidated LRU
//!   query-result cache ([`cache`]);
//! * **retention policies** that age out old points ([`retention`]);
//! * **live subscriptions** feeding dashboards ([`subscribe`]);
//! * an **ingest throughput limit** modelling the database-side backpressure
//!   which, combined with PCP's unbuffered samplers, produces the data-point
//!   losses quantified in Table III of the paper.
//!
//! ```
//! use pmove_tsdb::{Database, Point, FieldValue};
//!
//! let db = Database::new("pmove");
//! let p = Point::new("perfevent_hwcounters_fp_arith_scalar_double")
//!     .tag("tag", "obs-1")
//!     .field("_cpu0", FieldValue::Float(12.0))
//!     .timestamp(1_000);
//! db.write_point(p).unwrap();
//! let rs = db
//!     .query("SELECT \"_cpu0\" FROM \"perfevent_hwcounters_fp_arith_scalar_double\" WHERE tag='obs-1'")
//!     .unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! ```

pub mod aggregate;
pub mod batch;
pub mod cache;
pub mod engine;
pub mod error;
pub mod exec;
pub mod index;
pub mod line_protocol;
pub mod point;
pub mod query;
pub mod repl;
pub mod retention;
pub mod rollup;
pub mod self_export;
pub mod series;
pub mod snapshot;
pub mod storage;
pub mod subscribe;
pub mod value;

/// The durable storage engine backing [`Database::open`] (re-exported so
/// downstream crates can name VFS, options, and report types without a
/// direct `pmove-store` dependency).
pub use pmove_store as store;

pub use batch::{BatchConfig, BatchIngester, BatchOutcome, ColumnarBatch};
pub use cache::{QueryCache, DEFAULT_CACHE_CAPACITY};
pub use engine::{Database, IngestLimiter, IngestStats, GAP_MEASUREMENT};
pub use error::TsdbError;
pub use exec::{ExecMode, ExecStats};
pub use point::Point;
pub use query::{Query, QueryPlan, QueryResult, ResultRow};
pub use repl::{
    IntegrityReport, MerkleSnapshot, RepairReport, ReplConfig, ReplicaSet, MERKLE_BUCKETS,
};
pub use retention::RetentionPolicy;
pub use rollup::{RollupAudit, RollupConfig, RollupStore, RollupTickReport};
pub use self_export::export_snapshot;
pub use series::{SeriesId, SeriesKey};
pub use storage::DEFAULT_SHARD_COUNT;
pub use value::FieldValue;
