//! Crash-recovery property suite.
//!
//! For any seeded fault schedule — clean stop, torn tail, or durable bit
//! flip, fired at any write/sync/truncate operation — reopening the
//! store must recover *exactly* the last-write-wins view of some prefix
//! of the offered batches: no panic, no phantom points, no partial
//! batch. When the fault does not corrupt durable data (every mode but
//! `BitFlip`), the prefix must cover at least every acknowledged batch.
//!
//! The case count defaults to 256 and is raised in CI via the
//! `PMOVE_CRASH_CASES` environment variable (the `persistence` job runs
//! at an elevated count).

use pmove_obs::Registry;
use pmove_store::{
    ColumnValue, FaultMode, FaultPlan, MemDisk, RowRecord, StoreObs, StoreOptions, TsStore, Vfs,
};
use std::collections::BTreeMap;
use std::sync::Arc;

const DEFAULT_CASES: u64 = 256;

fn case_count() -> u64 {
    std::env::var("PMOVE_CRASH_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// SplitMix64 stream for workload/fault derivation (independent of the
/// MemDisk's internal RNG).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const SERIES: &[&str] = &["cpu,host=skx", "cpu,host=knl", "mem,host=skx"];
const FIELDS: &[&str] = &["_cpu0", "_cpu1", "usage"];

fn gen_batch(rng: &mut Rng, batch_idx: usize) -> Vec<RowRecord> {
    let rows = 1 + rng.below(8) as usize;
    (0..rows)
        .map(|_| {
            let series = SERIES[rng.below(SERIES.len() as u64) as usize];
            let field = FIELDS[rng.below(FIELDS.len() as u64) as usize];
            // Timestamps overlap across batches so last-write-wins is
            // genuinely exercised, including cross-type rewrites.
            let ts = (batch_idx as i64 / 2) * 1_000 + rng.below(500) as i64;
            let value = match rng.below(4) {
                0 => ColumnValue::F64(rng.below(1_000_000) as f64 / 1e3),
                1 => ColumnValue::I64(rng.below(1_000_000) as i64 - 500_000),
                2 => ColumnValue::Bool(rng.below(2) == 1),
                _ => ColumnValue::Str(format!("v{}", rng.below(100))),
            };
            RowRecord::new(series, field, ts, value)
        })
        .collect()
}

type View = Vec<RowRecord>;

/// Materialize the last-write-wins view of `batches[..j]`, ordered the
/// way [`TsStore::scan`] orders rows.
fn view_of_prefix(batches: &[Vec<RowRecord>], j: usize) -> View {
    let mut cells: BTreeMap<(String, String, i64), ColumnValue> = BTreeMap::new();
    for batch in &batches[..j] {
        for r in batch {
            cells.insert((r.series.clone(), r.field.clone(), r.ts), r.value.clone());
        }
    }
    cells
        .into_iter()
        .map(|((series, field, ts), value)| RowRecord {
            series,
            field,
            ts,
            value,
        })
        .collect()
}

struct CaseOutcome {
    /// Batches whose commit returned `Ok`.
    acked: usize,
    /// Rows visible after restart + reopen.
    recovered: View,
    /// Fault mode exercised (`None` when the plan never fired).
    fired: Option<FaultMode>,
    /// Full durable file map after recovery (determinism check).
    disk_state: Vec<(String, Vec<u8>)>,
}

/// Run one seeded case end to end: workload → (maybe) crash → restart →
/// reopen → scan.
fn run_case(seed: u64, batches: &[Vec<RowRecord>], plan: Option<FaultPlan>) -> CaseOutcome {
    let mut rng = Rng(seed ^ 0x5851_F42D_4C95_7F2D);
    let disk = MemDisk::new(seed);
    let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
    let opts = StoreOptions {
        flush_threshold_rows: 1 + rng.below(12) as usize,
        compact_min_chunks: 2 + rng.below(3) as usize,
    };
    let mode = plan.map(|p| p.mode);
    if let Some(p) = plan {
        disk.schedule_fault(p);
    }
    let (mut store, _) = TsStore::open(vfs.clone(), opts).expect("fresh open cannot fail");
    let mut acked = 0usize;
    for batch in batches {
        store.append(batch);
        match store.commit() {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    if !disk.crashed() && rng.below(2) == 1 {
        let _ = store.flush();
    }
    drop(store);
    let fired = if disk.crashed() { mode } else { None };
    disk.restart();
    // The property: reopening after any crash must not panic.
    let (mut store, _report) = TsStore::open(vfs, opts)
        .unwrap_or_else(|e| panic!("seed {seed}: reopen failed after recovery: {e}"));
    let recovered = store
        .scan()
        .unwrap_or_else(|e| panic!("seed {seed}: scan failed after recovery: {e}"));
    let disk_state = disk
        .list()
        .unwrap()
        .into_iter()
        .map(|n| {
            let d = disk.read(&n).unwrap();
            (n, d)
        })
        .collect();
    CaseOutcome {
        acked,
        recovered,
        fired,
        disk_state,
    }
}

#[test]
fn recovery_is_a_prefix_of_acknowledged_writes() {
    let cases = case_count();
    let mut fired_counts = [0u64; 3];
    let mut clean_runs = 0u64;
    for case in 0..cases {
        let seed = 0xC0FFEE ^ (case.wrapping_mul(0x9E37_79B9));
        let mut rng = Rng(seed);
        let n_batches = 4 + rng.below(24) as usize;
        let batches: Vec<Vec<RowRecord>> = (0..n_batches).map(|i| gen_batch(&mut rng, i)).collect();
        let plan = match rng.below(4) {
            0 => None,
            m => Some(FaultPlan {
                crash_at_op: 1 + rng.below(70),
                mode: match m {
                    1 => FaultMode::CleanStop,
                    2 => FaultMode::TornTail,
                    _ => FaultMode::BitFlip,
                },
            }),
        };
        let out = run_case(seed, &batches, plan);
        match out.fired {
            Some(FaultMode::CleanStop) => fired_counts[0] += 1,
            Some(FaultMode::TornTail) => fired_counts[1] += 1,
            Some(FaultMode::BitFlip) => fired_counts[2] += 1,
            None => clean_runs += 1,
        }
        // Exactly the LWW view of some batch prefix — scanning all
        // prefixes rules phantom points and partial batches out at once.
        let matched = (0..=n_batches).find(|&j| view_of_prefix(&batches, j) == out.recovered);
        let Some(j) = matched else {
            panic!(
                "seed {seed}: recovered state matches no prefix of the offered batches \
                 (mode {:?}, {} recovered rows, {} acked batches)",
                out.fired,
                out.recovered.len(),
                out.acked
            );
        };
        match out.fired {
            // Durable data untouched: every acknowledged batch survives.
            Some(FaultMode::CleanStop) | Some(FaultMode::TornTail) => assert!(
                j >= out.acked,
                "seed {seed}: lost acknowledged batches: recovered prefix {j} < acked {}",
                out.acked
            ),
            // A bit flip may destroy durable frames/chunks, but the
            // result must still be an exact prefix (asserted above).
            Some(FaultMode::BitFlip) => {}
            // No crash: everything offered was committed and must be
            // fully visible.
            None => assert_eq!(
                j, n_batches,
                "seed {seed}: clean run lost batches ({j}/{n_batches})"
            ),
        }
    }
    // The schedule space must actually exercise every mode; a property
    // suite that never crashes proves nothing.
    assert!(clean_runs > 0, "no clean runs in {cases} cases");
    for (i, c) in fired_counts.iter().enumerate() {
        assert!(*c > 0, "fault mode #{i} never fired across {cases} cases");
    }
}

#[test]
fn same_seed_cases_produce_byte_identical_disks() {
    // A subsample of the space is enough: each comparison replays the
    // entire workload + fault schedule + recovery twice.
    let cases = (case_count() / 8).max(8);
    for case in 0..cases {
        let seed = 0xDEAD_BEEF ^ (case.wrapping_mul(0x9E37_79B9));
        let mut rng = Rng(seed);
        let n_batches = 4 + rng.below(16) as usize;
        let batches: Vec<Vec<RowRecord>> = (0..n_batches).map(|i| gen_batch(&mut rng, i)).collect();
        let plan = Some(FaultPlan {
            crash_at_op: 1 + rng.below(50),
            mode: [
                FaultMode::CleanStop,
                FaultMode::TornTail,
                FaultMode::BitFlip,
            ][(case % 3) as usize],
        });
        let a = run_case(seed, &batches, plan);
        let b = run_case(seed, &batches, plan);
        assert_eq!(
            a.disk_state, b.disk_state,
            "seed {seed}: same-seed runs diverged on disk"
        );
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(a.acked, b.acked);
    }
}

#[test]
fn recovered_store_accepts_new_writes() {
    // After any crash the store must remain writable: recover, append a
    // sentinel batch, commit, reopen again, and find it.
    for case in 0..32u64 {
        let seed = 0xFACE ^ case;
        let mut rng = Rng(seed);
        let batches: Vec<Vec<RowRecord>> = (0..8).map(|i| gen_batch(&mut rng, i)).collect();
        let mode = [
            FaultMode::CleanStop,
            FaultMode::TornTail,
            FaultMode::BitFlip,
        ][(case % 3) as usize];
        let plan = FaultPlan {
            crash_at_op: 1 + rng.below(30),
            mode,
        };
        let disk = MemDisk::new(seed);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        disk.schedule_fault(plan);
        let opts = StoreOptions {
            flush_threshold_rows: 4,
            compact_min_chunks: 2,
        };
        let (mut store, _) = TsStore::open(vfs.clone(), opts).unwrap();
        for batch in &batches {
            store.append(batch);
            if store.commit().is_err() {
                break;
            }
        }
        drop(store);
        disk.restart();
        let (mut store, _) = TsStore::open(vfs.clone(), opts).unwrap();
        let sentinel = RowRecord::new("post,host=x", "alive", 9_999_999, ColumnValue::Bool(true));
        store.append(std::slice::from_ref(&sentinel));
        store.commit().unwrap();
        drop(store);
        let (mut store, _) = TsStore::open(vfs, opts).unwrap();
        assert!(
            store.scan().unwrap().contains(&sentinel),
            "seed {seed}: post-recovery write lost"
        );
    }
}

#[test]
fn bit_flip_inside_wal_record_truncates_at_corrupt_frame() {
    // A durable bit flip inside an acknowledged, CRC-framed WAL record is
    // not a torn tail: every byte of the frame is present, the checksum
    // just no longer matches. Recovery must truncate the log at that
    // frame (keeping the prefix before it), count it in the
    // `store.wal.corrupt_frames` metric, and never replay garbage.
    //
    // The MemDisk places the flip at a seeded pseudo-random offset, so a
    // small seed sweep covers both landings: inside an acked frame (the
    // corrupt-frame signature under test) and inside the torn tail of
    // the in-flight commit (plain truncation, not corruption).
    let opts = StoreOptions {
        // Keep every batch in the WAL — no flushes, no chunks.
        flush_threshold_rows: 1 << 20,
        compact_min_chunks: 1 << 10,
    };
    let mut corrupt_cases = 0u64;
    for seed in 0..64u64 {
        let disk = MemDisk::new(seed);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let mut rng = Rng(seed ^ 0xB17_F11B);
        let batches: Vec<Vec<RowRecord>> = (0..6).map(|i| gen_batch(&mut rng, i)).collect();
        let (mut store, _) = TsStore::open(vfs.clone(), opts).unwrap();
        for batch in &batches {
            store.append(batch);
            store.commit().expect("no fault scheduled yet");
        }
        // Flip a durable bit while one more commit is in flight.
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 2,
            mode: FaultMode::BitFlip,
        });
        store.append(&gen_batch(&mut rng, 6));
        assert!(store.commit().is_err(), "seed {seed}: fault did not fire");
        drop(store);
        disk.restart();

        let registry = Registry::new();
        let obs = StoreObs::new(&registry, "walcrash");
        let (mut store, report) = TsStore::open_with_obs(vfs.clone(), opts, Some(obs))
            .unwrap_or_else(|e| panic!("seed {seed}: recovery panicked on corruption: {e}"));
        let recovered = store.scan().unwrap();
        let metric = registry
            .counter("store.wal.corrupt_frames", &[("db", "walcrash")])
            .get();
        assert_eq!(
            metric, report.wal_corrupt_frames,
            "seed {seed}: metric disagrees with the recovery report"
        );
        // Whatever survived must be the LWW view of an exact batch
        // prefix — one batch per WAL frame, so frame truncation is batch
        // truncation.
        let j = (0..=batches.len())
            .find(|&j| view_of_prefix(&batches, j) == recovered)
            .unwrap_or_else(|| panic!("seed {seed}: recovered rows match no batch prefix"));
        if report.wal_corrupt_frames > 0 {
            corrupt_cases += 1;
            assert_eq!(
                report.wal_corrupt_frames, 1,
                "seed {seed}: replay stops at the first corrupt frame"
            );
            assert!(
                report.wal_bytes_dropped > 0,
                "seed {seed}: corrupt frame counted but nothing dropped"
            );
            assert!(
                j < batches.len(),
                "seed {seed}: corrupt frame counted but every acked batch survived"
            );
        }
        // Recovery rewrote the log to the valid prefix: a second open is
        // clean, byte-identical, and the store accepts new writes.
        store.append(&[RowRecord::new(
            "post,host=x",
            "alive",
            9_999_999,
            ColumnValue::Bool(true),
        )]);
        store.commit().unwrap();
        drop(store);
        let (mut store, report2) = TsStore::open(vfs, opts).unwrap();
        assert_eq!(
            report2.wal_corrupt_frames, 0,
            "seed {seed}: corruption survived recovery"
        );
        assert_eq!(report2.wal_bytes_dropped, 0);
        assert_eq!(store.scan().unwrap().len(), recovered.len() + 1);
    }
    assert!(
        corrupt_cases > 0,
        "seed sweep never landed a flip inside an acked frame"
    );
}
