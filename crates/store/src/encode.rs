//! Column codecs: varints, delta-of-delta timestamps, Gorilla XOR floats,
//! zigzag-delta integers, bit-packed booleans, length-prefixed strings.
//!
//! All encoders are deterministic functions of their input — two runs over
//! the same rows produce byte-identical output, which is what makes chunk
//! files reproducible across same-seed experiments.

use crate::error::{StoreError, StoreResult};
use crate::row::ColumnValue;

// ---------------------------------------------------------------- varint

/// Append a LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read a LEB128 varint, advancing `pos`.
pub fn get_uvarint(data: &[u8], pos: &mut usize) -> StoreResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data
            .get(*pos)
            .ok_or_else(|| StoreError::Decode("varint ran off the end".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::Decode("varint too long".into()));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed value so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a zigzag varint.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Read a zigzag varint.
pub fn get_ivarint(data: &[u8], pos: &mut usize) -> StoreResult<i64> {
    Ok(unzigzag(get_uvarint(data, pos)?))
}

// ---------------------------------------------------------------- bit IO

/// MSB-first bit writer over a byte vector.
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0..8).
    used: u8,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> BitWriter {
        BitWriter {
            bytes: Vec::new(),
            used: 8,
        }
    }

    /// Append one bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 8 {
            self.bytes.push(0);
            self.used = 0;
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used += 1;
    }

    /// Append the low `n` bits of `v`, most significant first.
    pub fn push_bits(&mut self, v: u64, n: u8) {
        for i in (0..n).rev() {
            self.push_bit((v >> i) & 1 == 1);
        }
    }

    /// Finish and return the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl Default for BitWriter {
    fn default() -> Self {
        BitWriter::new()
    }
}

/// MSB-first bit reader.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Next bit.
    pub fn read_bit(&mut self) -> StoreResult<bool> {
        let byte = self
            .bytes
            .get(self.pos / 8)
            .ok_or_else(|| StoreError::Decode("bit stream ran off the end".into()))?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Next `n` bits as the low bits of a u64.
    pub fn read_bits(&mut self, n: u8) -> StoreResult<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }
}

// ------------------------------------------------- delta-of-delta stamps

/// Encode timestamps as first value + first delta + delta-of-deltas, all
/// zigzag varints. Regular sampling collapses to one byte per stamp.
pub fn encode_timestamps(ts: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ts.len() + 8);
    if ts.is_empty() {
        return out;
    }
    put_ivarint(&mut out, ts[0]);
    if ts.len() == 1 {
        return out;
    }
    let mut prev_delta = ts[1].wrapping_sub(ts[0]);
    put_ivarint(&mut out, prev_delta);
    for w in ts[1..].windows(2) {
        let delta = w[1].wrapping_sub(w[0]);
        put_ivarint(&mut out, delta.wrapping_sub(prev_delta));
        prev_delta = delta;
    }
    out
}

/// Decode `count` timestamps produced by [`encode_timestamps`].
pub fn decode_timestamps(data: &[u8], count: usize) -> StoreResult<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let mut pos = 0;
    let first = get_ivarint(data, &mut pos)?;
    out.push(first);
    if count == 1 {
        return Ok(out);
    }
    let mut delta = get_ivarint(data, &mut pos)?;
    let mut cur = first.wrapping_add(delta);
    out.push(cur);
    for _ in 2..count {
        let dod = get_ivarint(data, &mut pos)?;
        delta = delta.wrapping_add(dod);
        cur = cur.wrapping_add(delta);
        out.push(cur);
    }
    Ok(out)
}

// ---------------------------------------------------------- Gorilla XOR

/// Gorilla-compress a float column: first value raw, then XOR with the
/// previous value, reusing the previous leading/trailing-zero window when
/// it still fits (control bit 0) or emitting a fresh 5+6-bit window.
pub fn encode_f64(values: &[f64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut prev = 0u64;
    let mut prev_lead: u8 = 0xFF; // invalid: force a fresh window first
    let mut prev_sig: u8 = 0;
    for (i, v) in values.iter().enumerate() {
        let bits = v.to_bits();
        if i == 0 {
            w.push_bits(bits, 64);
            prev = bits;
            continue;
        }
        let xor = prev ^ bits;
        prev = bits;
        if xor == 0 {
            w.push_bit(false);
            continue;
        }
        w.push_bit(true);
        let lead = (xor.leading_zeros() as u8).min(31);
        let trail = xor.trailing_zeros() as u8;
        let sig = 64 - lead - trail;
        let fits = prev_lead != 0xFF && lead >= prev_lead && {
            let prev_trail = 64 - prev_lead - prev_sig;
            trail >= prev_trail
        };
        if fits {
            w.push_bit(false);
            let prev_trail = 64 - prev_lead - prev_sig;
            w.push_bits(xor >> prev_trail, prev_sig);
        } else {
            w.push_bit(true);
            w.push_bits(lead as u64, 5);
            // sig ∈ 1..=64 stored as sig-1 in 6 bits.
            w.push_bits((sig - 1) as u64, 6);
            w.push_bits(xor >> trail, sig);
            prev_lead = lead;
            prev_sig = sig;
        }
    }
    w.into_bytes()
}

/// Decode `count` floats produced by [`encode_f64`].
pub fn decode_f64(data: &[u8], count: usize) -> StoreResult<Vec<f64>> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let mut prev = r.read_bits(64)?;
    out.push(f64::from_bits(prev));
    let mut lead: u8 = 0;
    let mut sig: u8 = 0;
    for _ in 1..count {
        if !r.read_bit()? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit()? {
            lead = r.read_bits(5)? as u8;
            sig = r.read_bits(6)? as u8 + 1;
        }
        if lead + sig > 64 {
            return Err(StoreError::Decode("gorilla window exceeds 64 bits".into()));
        }
        let trail = 64 - lead - sig;
        let xor = r.read_bits(sig)? << trail;
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(out)
}

// ----------------------------------------------------- non-float columns

/// Encode a homogeneous value column (`values` must all match `tag`).
pub fn encode_values(tag: u8, values: &[ColumnValue]) -> Vec<u8> {
    match tag {
        0 => {
            let floats: Vec<f64> = values
                .iter()
                .map(|v| match v {
                    ColumnValue::F64(x) => *x,
                    _ => unreachable!("mixed column"),
                })
                .collect();
            encode_f64(&floats)
        }
        1 => {
            let mut out = Vec::new();
            let mut prev = 0i64;
            for v in values {
                let ColumnValue::I64(x) = v else {
                    unreachable!("mixed column")
                };
                put_ivarint(&mut out, x.wrapping_sub(prev));
                prev = *x;
            }
            out
        }
        2 => {
            let mut w = BitWriter::new();
            for v in values {
                let ColumnValue::Bool(b) = v else {
                    unreachable!("mixed column")
                };
                w.push_bit(*b);
            }
            w.into_bytes()
        }
        _ => {
            let mut out = Vec::new();
            for v in values {
                let ColumnValue::Str(s) = v else {
                    unreachable!("mixed column")
                };
                put_uvarint(&mut out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            out
        }
    }
}

/// Decode `count` values of type `tag` produced by [`encode_values`].
pub fn decode_values(tag: u8, data: &[u8], count: usize) -> StoreResult<Vec<ColumnValue>> {
    match tag {
        0 => Ok(decode_f64(data, count)?
            .into_iter()
            .map(ColumnValue::F64)
            .collect()),
        1 => {
            let mut out = Vec::with_capacity(count);
            let mut pos = 0;
            let mut prev = 0i64;
            for _ in 0..count {
                prev = prev.wrapping_add(get_ivarint(data, &mut pos)?);
                out.push(ColumnValue::I64(prev));
            }
            Ok(out)
        }
        2 => {
            let mut r = BitReader::new(data);
            (0..count)
                .map(|_| r.read_bit().map(ColumnValue::Bool))
                .collect()
        }
        3 => {
            let mut out = Vec::with_capacity(count);
            let mut pos = 0;
            for _ in 0..count {
                let len = get_uvarint(data, &mut pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .filter(|&e| e <= data.len())
                    .ok_or_else(|| StoreError::Decode("string ran off the end".into()))?;
                let s = std::str::from_utf8(&data[pos..end])
                    .map_err(|_| StoreError::Decode("string not UTF-8".into()))?;
                out.push(ColumnValue::Str(s.to_string()));
                pos = end;
            }
            Ok(out)
        }
        t => Err(StoreError::Decode(format!("bad value type tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            buf.clear();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456] {
            buf.clear();
            put_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1 << 40);
        buf.truncate(2);
        let mut pos = 0;
        assert!(get_uvarint(&buf, &mut pos).is_err());
    }

    #[test]
    fn bit_io_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        w.push_bit(true);
        w.push_bits(0xDEADBEEF, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
    }

    #[test]
    fn regular_timestamps_compress_to_about_a_byte() {
        let ts: Vec<i64> = (0..1000).map(|i| 1_000_000 + i * 500).collect();
        let enc = encode_timestamps(&ts);
        assert!(enc.len() < 1010, "got {} bytes", enc.len());
        assert_eq!(decode_timestamps(&enc, ts.len()).unwrap(), ts);
    }

    #[test]
    fn irregular_timestamps_roundtrip() {
        let ts = vec![i64::MIN, -5, 0, 3, 3, 1_000_000_000_000, i64::MAX];
        let enc = encode_timestamps(&ts);
        assert_eq!(decode_timestamps(&enc, ts.len()).unwrap(), ts);
        assert!(decode_timestamps(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn gorilla_roundtrip_and_compresses_smooth_series() {
        let vals: Vec<f64> = (0..500).map(|i| 20.0 + (i as f64) * 0.25).collect();
        let enc = encode_f64(&vals);
        assert_eq!(decode_f64(&enc, vals.len()).unwrap(), vals);
        assert!(
            enc.len() < vals.len() * 8 / 2,
            "only compressed to {} bytes",
            enc.len()
        );
        // Constant series: ~1 bit per value after the first.
        let flat = vec![42.5f64; 400];
        let enc = encode_f64(&flat);
        assert!(enc.len() < 8 + 400 / 8 + 2);
        assert_eq!(decode_f64(&enc, flat.len()).unwrap(), flat);
    }

    #[test]
    fn gorilla_handles_hostile_values() {
        let vals = vec![
            0.0,
            -0.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0,
            1.0,
            -1.0,
        ];
        let enc = encode_f64(&vals);
        let dec = decode_f64(&enc, vals.len()).unwrap();
        for (a, b) in vals.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn value_columns_roundtrip() {
        let ints: Vec<ColumnValue> = [3i64, 4, 4, -100, i64::MAX]
            .iter()
            .map(|&v| ColumnValue::I64(v))
            .collect();
        assert_eq!(
            decode_values(1, &encode_values(1, &ints), ints.len()).unwrap(),
            ints
        );
        let bools: Vec<ColumnValue> = [true, false, true, true, false, false, true, false, true]
            .iter()
            .map(|&b| ColumnValue::Bool(b))
            .collect();
        assert_eq!(
            decode_values(2, &encode_values(2, &bools), bools.len()).unwrap(),
            bools
        );
        let strs: Vec<ColumnValue> = ["", "a", "hello world", "τιμή"]
            .iter()
            .map(|s| ColumnValue::Str(s.to_string()))
            .collect();
        assert_eq!(
            decode_values(3, &encode_values(3, &strs), strs.len()).unwrap(),
            strs
        );
    }

    #[test]
    fn corrupt_columns_error_not_panic() {
        assert!(decode_values(7, &[], 0).is_err());
        assert!(decode_values(3, &[200, 1, 2], 1).is_err()); // length overflow
        assert!(decode_f64(&[1, 2, 3], 4).is_err()); // too short
    }
}
