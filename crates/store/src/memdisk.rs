//! Deterministic fault-injecting in-memory disk.
//!
//! `MemDisk` models the failure behaviour that matters to a WAL: a crash
//! can lose everything since the last sync (clean stop), persist only a
//! prefix of the bytes in flight (torn tail), or corrupt already-durable
//! bytes (bit flip — the model for latent media errors surfacing across
//! a restart). Which fault fires, where it lands, and how many bytes
//! survive are all derived from a caller-supplied seed, so every
//! crash-recovery property case replays exactly.
//!
//! Durability accounting is layered on the `hwsim` block-device model:
//! every sync charges the configured [`DiskSpec`] with the bytes made
//! durable, giving the store deterministic modeled commit latencies.

use crate::error::{StoreError, StoreResult};
use crate::vfs::{Vfs, VirtualFile};
use parking_lot::Mutex;
use pmove_hwsim::disk::{DiskSpec, DiskUsage};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Block size charged to the disk model per sync.
const SYNC_BLOCK_SIZE: usize = 8192;

/// What a scheduled crash does to the bytes in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Drop every unsynced byte; durable data is untouched.
    CleanStop,
    /// Persist a seed-chosen prefix of the unsynced bytes of the file
    /// being synced, drop the rest (a torn tail).
    TornTail,
    /// Persist a prefix like [`FaultMode::TornTail`], then flip one
    /// seed-chosen bit of the target file's durable bytes.
    BitFlip,
}

/// A scheduled crash: fire at the Nth write/sync operation.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// 1-based index of the append/sync operation that crashes.
    pub crash_at_op: u64,
    /// Damage model applied at the crash point.
    pub mode: FaultMode,
}

/// One scheduled latent-rot event: at virtual time `at_s`, `flips`
/// single-bit flips land in seed-chosen durable bytes. Unlike a
/// [`FaultPlan`] crash, rot is silent — the disk keeps serving reads and
/// writes, and nothing notices until a checksum is verified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotEvent {
    /// Virtual time (seconds) at which the bits flip.
    pub at_s: f64,
    /// Single-bit flips applied by this event.
    pub flips: u32,
}

/// A latent media-rot schedule on the virtual clock. The schedule is
/// inert until the host drives [`MemDisk::advance_rot`] forward; every
/// event with `at_s <= now` then fires exactly once, choosing its victim
/// file, byte offset, and bit from the disk's seeded RNG — so a given
/// (seed, schedule) pair rots identically on every run.
#[derive(Debug, Clone, Default)]
pub struct RotSchedule {
    /// Events, fired in ascending `at_s` order.
    pub events: Vec<RotEvent>,
    /// Restrict flips to files whose name starts with this prefix
    /// (e.g. `"chunk-"` to rot only chunk files). `None` rots any file.
    pub target_prefix: Option<String>,
}

impl RotSchedule {
    /// Empty schedule (no rot).
    pub fn none() -> RotSchedule {
        RotSchedule::default()
    }

    /// Append one event flipping `flips` bits at `at_s`.
    pub fn at(mut self, at_s: f64, flips: u32) -> RotSchedule {
        self.events.push(RotEvent { at_s, flips });
        self
    }

    /// Restrict the schedule to files whose name starts with `prefix`.
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> RotSchedule {
        self.target_prefix = Some(prefix.into());
        self
    }

    /// Seeded random schedule: `events` single-flip events uniformly
    /// placed in `[start_s, end_s)`.
    pub fn random(seed: u64, events: u32, start_s: f64, end_s: f64) -> RotSchedule {
        let mut state = seed ^ 0x6A09_E667_F3BC_C908;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let span = (end_s - start_s).max(0.0);
        let mut out = RotSchedule::none();
        for _ in 0..events {
            let frac = (next() >> 11) as f64 / (1u64 << 53) as f64;
            out.events.push(RotEvent {
                at_s: start_s + frac * span,
                flips: 1,
            });
        }
        out.events
            .sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).unwrap());
        out
    }
}

/// Where one latent bit flip actually landed.
#[derive(Debug, Clone, PartialEq)]
pub struct RotRecord {
    /// Event time of the flip.
    pub at_s: f64,
    /// Victim file.
    pub file: String,
    /// Byte offset within the file's durable bytes.
    pub offset: u64,
    /// Bit index flipped (0–7).
    pub bit: u8,
}

struct FileBuf {
    durable: Vec<u8>,
    volatile: Vec<u8>,
}

/// Quarantined evidence is never re-rotted: the bytes are already known
/// bad and further flips would only make seeded cases non-reproducible.
const ROT_EXEMPT_PREFIX: &str = "quarantine/";

struct Inner {
    files: BTreeMap<String, FileBuf>,
    spec: DiskSpec,
    usage: DiskUsage,
    plan: Option<FaultPlan>,
    ops_done: u64,
    crashed: bool,
    faults_fired: u32,
    rng: u64,
    rot_events: Vec<RotEvent>,
    rot_prefix: Option<String>,
    rot_fired: usize,
    rot_applied: u64,
}

impl Inner {
    fn rng_next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn check_live(&self) -> StoreResult<()> {
        if self.crashed {
            Err(StoreError::DiskCrashed)
        } else {
            Ok(())
        }
    }

    /// Count one write/sync op; returns true when this op crashes.
    fn tick(&mut self) -> bool {
        self.ops_done += 1;
        matches!(self.plan, Some(p) if p.crash_at_op == self.ops_done)
    }

    /// Apply the scheduled fault during an operation on `target`.
    fn crash(&mut self, target: &str) {
        let mode = self.plan.expect("crash without plan").mode;
        self.crashed = true;
        self.faults_fired += 1;
        if matches!(mode, FaultMode::TornTail | FaultMode::BitFlip) {
            let r = self.rng_next();
            if let Some(f) = self.files.get_mut(target) {
                // r ∈ [0, len]: anything from nothing to all in-flight
                // bytes may have reached the platter.
                let keep = if f.volatile.is_empty() {
                    0
                } else {
                    (r % (f.volatile.len() as u64 + 1)) as usize
                };
                let torn: Vec<u8> = f.volatile[..keep].to_vec();
                f.durable.extend_from_slice(&torn);
            }
        }
        if mode == FaultMode::BitFlip {
            let (offset, bit) = {
                let len = self.files.get(target).map(|f| f.durable.len()).unwrap_or(0);
                if len == 0 {
                    (None, 0)
                } else {
                    let off = (self.rng_next() % len as u64) as usize;
                    let bit = (self.rng_next() % 8) as u8;
                    (Some(off), bit)
                }
            };
            if let (Some(off), Some(f)) = (offset, self.files.get_mut(target)) {
                f.durable[off] ^= 1 << bit;
            }
        }
        for f in self.files.values_mut() {
            f.volatile.clear();
        }
    }

    /// Fire one rot event: flip `flips` seed-chosen bits, each in the
    /// durable bytes of an eligible file. Rot is a platter phenomenon —
    /// it does not tick the fault-op space and works even while crashed.
    fn apply_rot(&mut self, ev: RotEvent) -> Vec<RotRecord> {
        let mut out = Vec::new();
        for _ in 0..ev.flips {
            let eligible: Vec<String> = self
                .files
                .iter()
                .filter(|(name, f)| {
                    !f.durable.is_empty()
                        && !name.starts_with(ROT_EXEMPT_PREFIX)
                        && self
                            .rot_prefix
                            .as_deref()
                            .is_none_or(|p| name.starts_with(p))
                })
                .map(|(name, _)| name.clone())
                .collect();
            if eligible.is_empty() {
                continue;
            }
            let victim = eligible[(self.rng_next() % eligible.len() as u64) as usize].clone();
            let len = self.files[&victim].durable.len() as u64;
            let offset = self.rng_next() % len;
            let bit = (self.rng_next() % 8) as u8;
            if let Some(f) = self.files.get_mut(&victim) {
                f.durable[offset as usize] ^= 1 << bit;
            }
            self.rot_applied += 1;
            out.push(RotRecord {
                at_s: ev.at_s,
                file: victim,
                offset,
                bit,
            });
        }
        out
    }
}

/// The shared fault-injecting disk; clones are handles to the same disk.
#[derive(Clone)]
pub struct MemDisk {
    inner: Arc<Mutex<Inner>>,
}

impl MemDisk {
    /// Fresh disk with a deterministic fault/placement RNG seeded from
    /// `seed`, modeled as the paper's SATA target.
    pub fn new(seed: u64) -> MemDisk {
        MemDisk::with_spec(seed, DiskSpec::sata("memdisk"))
    }

    /// [`MemDisk::new`] with an explicit block-device model.
    pub fn with_spec(seed: u64, spec: DiskSpec) -> MemDisk {
        MemDisk {
            inner: Arc::new(Mutex::new(Inner {
                files: BTreeMap::new(),
                spec,
                usage: DiskUsage::default(),
                plan: None,
                ops_done: 0,
                crashed: false,
                faults_fired: 0,
                rng: seed ^ 0xA076_1D64_78BD_642F,
                rot_events: Vec::new(),
                rot_prefix: None,
                rot_fired: 0,
                rot_applied: 0,
            })),
        }
    }

    /// Schedule a crash; replaces any previous plan.
    pub fn schedule_fault(&self, plan: FaultPlan) {
        self.inner.lock().plan = Some(plan);
    }

    /// Simulate power-on after a crash: unsynced bytes are gone, the
    /// pending fault plan is cleared, and operations succeed again.
    pub fn restart(&self) {
        let mut inner = self.inner.lock();
        for f in inner.files.values_mut() {
            f.volatile.clear();
        }
        inner.crashed = false;
        inner.plan = None;
    }

    /// Install a latent-rot schedule; replaces any previous schedule and
    /// resets the fired cursor. Events fire when [`MemDisk::advance_rot`]
    /// passes their `at_s`.
    pub fn schedule_rot(&self, schedule: RotSchedule) {
        let mut inner = self.inner.lock();
        let mut events = schedule.events;
        events.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).unwrap());
        inner.rot_events = events;
        inner.rot_prefix = schedule.target_prefix;
        inner.rot_fired = 0;
    }

    /// Advance the rot clock to `now_s`, firing every unfired event with
    /// `at_s <= now_s`. Returns where each flip landed (for test oracles);
    /// the flips themselves are silent to the store.
    pub fn advance_rot(&self, now_s: f64) -> Vec<RotRecord> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        while inner.rot_fired < inner.rot_events.len()
            && inner.rot_events[inner.rot_fired].at_s <= now_s
        {
            let ev = inner.rot_events[inner.rot_fired];
            inner.rot_fired += 1;
            out.extend(inner.apply_rot(ev));
        }
        out
    }

    /// Total latent bit flips applied over the disk's lifetime.
    pub fn rot_flips_applied(&self) -> u64 {
        self.inner.lock().rot_applied
    }

    /// Has a scheduled fault fired?
    pub fn crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Number of faults that have fired over the disk's lifetime.
    pub fn faults_fired(&self) -> u32 {
        self.inner.lock().faults_fired
    }

    /// Write/sync operations performed so far (the fault-op index space).
    pub fn ops_done(&self) -> u64 {
        self.inner.lock().ops_done
    }

    /// Cumulative modeled disk accounting.
    pub fn usage(&self) -> DiskUsage {
        self.inner.lock().usage
    }

    /// Total durable bytes across all files.
    pub fn durable_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.files.values().map(|f| f.durable.len() as u64).sum()
    }
}

struct MemFile {
    inner: Arc<Mutex<Inner>>,
    name: String,
}

impl VirtualFile for MemFile {
    fn append(&mut self, data: &[u8]) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        if inner.tick() {
            inner.crash(&self.name);
            return Err(StoreError::DiskCrashed);
        }
        inner
            .files
            .get_mut(&self.name)
            .ok_or_else(|| StoreError::Io(format!("file removed under writer: {}", self.name)))?
            .volatile
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        if inner.tick() {
            inner.crash(&self.name);
            return Err(StoreError::DiskCrashed);
        }
        let pending = {
            let f = inner.files.get_mut(&self.name).ok_or_else(|| {
                StoreError::Io(format!("file removed under writer: {}", self.name))
            })?;
            let pending = std::mem::take(&mut f.volatile);
            f.durable.extend_from_slice(&pending);
            pending.len() as u64
        };
        if pending > 0 {
            let spec = inner.spec.clone();
            inner.usage.record_write(&spec, pending, SYNC_BLOCK_SIZE);
        }
        Ok(())
    }

    fn len(&self) -> StoreResult<u64> {
        let inner = self.inner.lock();
        inner.check_live()?;
        let f = inner
            .files
            .get(&self.name)
            .ok_or_else(|| StoreError::Io(format!("no such file: {}", self.name)))?;
        Ok((f.durable.len() + f.volatile.len()) as u64)
    }
}

impl Vfs for MemDisk {
    fn open_append(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        inner.files.entry(name.to_string()).or_insert(FileBuf {
            durable: Vec::new(),
            volatile: Vec::new(),
        });
        Ok(Box::new(MemFile {
            inner: self.inner.clone(),
            name: name.to_string(),
        }))
    }

    fn create(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        // Truncation mutates the platter, so it participates in the
        // fault-op index space; a crash here leaves the old content.
        if inner.tick() {
            inner.crash(name);
            return Err(StoreError::DiskCrashed);
        }
        inner.files.insert(
            name.to_string(),
            FileBuf {
                durable: Vec::new(),
                volatile: Vec::new(),
            },
        );
        Ok(Box::new(MemFile {
            inner: self.inner.clone(),
            name: name.to_string(),
        }))
    }

    fn read(&self, name: &str) -> StoreResult<Vec<u8>> {
        let inner = self.inner.lock();
        inner.check_live()?;
        let f = inner
            .files
            .get(name)
            .ok_or_else(|| StoreError::Io(format!("no such file: {name}")))?;
        let mut out = f.durable.clone();
        out.extend_from_slice(&f.volatile);
        Ok(out)
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        let inner = self.inner.lock();
        inner.check_live()?;
        Ok(inner.files.keys().cloned().collect())
    }

    fn remove(&self, name: &str) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        inner.files.remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> StoreResult<bool> {
        let inner = self.inner.lock();
        inner.check_live()?;
        Ok(inner.files.contains_key(name))
    }

    fn disk_spec(&self) -> DiskSpec {
        self.inner.lock().spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_sync_read_roundtrip() {
        let disk = MemDisk::new(1);
        let mut f = disk.create("wal").unwrap();
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        f.append(b"def").unwrap();
        // Unsynced bytes are visible to live reads...
        assert_eq!(disk.read("wal").unwrap(), b"abcdef");
        // ...but only synced bytes are durable.
        assert_eq!(disk.durable_bytes(), 3);
        assert!(disk.usage().bytes_written == 3);
    }

    #[test]
    fn clean_stop_loses_unsynced_only() {
        let disk = MemDisk::new(2);
        let mut f = disk.create("wal").unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 2, // the sync below
            mode: FaultMode::CleanStop,
        });
        f.append(b" lost").unwrap();
        assert_eq!(f.sync().unwrap_err(), StoreError::DiskCrashed);
        assert!(disk.crashed());
        // Everything errors until restart.
        assert!(disk.read("wal").is_err());
        disk.restart();
        assert_eq!(disk.read("wal").unwrap(), b"durable");
    }

    #[test]
    fn torn_tail_persists_a_prefix() {
        let disk = MemDisk::new(3);
        let mut f = disk.create("wal").unwrap();
        f.append(b"base").unwrap();
        f.sync().unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 2,
            mode: FaultMode::TornTail,
        });
        f.append(b"0123456789").unwrap();
        assert!(f.sync().is_err());
        disk.restart();
        let got = disk.read("wal").unwrap();
        assert!(got.starts_with(b"base"));
        assert!(got.len() <= 14);
        assert_eq!(&got[4..], &b"0123456789"[..got.len() - 4]);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let disk = MemDisk::new(4);
        let mut f = disk.create("wal").unwrap();
        let clean = vec![0u8; 64];
        f.append(&clean).unwrap();
        f.sync().unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 1,
            mode: FaultMode::BitFlip,
        });
        assert!(f.append(b"").is_err());
        disk.restart();
        let got = disk.read("wal").unwrap();
        let flipped: u32 = got
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed: u64| {
            let disk = MemDisk::new(seed);
            let mut f = disk.create("wal").unwrap();
            f.append(b"base").unwrap();
            f.sync().unwrap();
            disk.schedule_fault(FaultPlan {
                crash_at_op: disk.ops_done() + 2,
                mode: FaultMode::TornTail,
            });
            f.append(b"abcdefghijklmnop").unwrap();
            let _ = f.sync();
            disk.restart();
            disk.read("wal").unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn latent_rot_fires_on_clock_and_is_silent() {
        let disk = MemDisk::new(9);
        let mut f = disk.create("chunk-00000001.tsm").unwrap();
        let clean = vec![0u8; 128];
        f.append(&clean).unwrap();
        f.sync().unwrap();
        disk.schedule_rot(RotSchedule::none().at(10.0, 1).at(20.0, 2));
        // Nothing fires before its time.
        assert!(disk.advance_rot(9.99).is_empty());
        assert_eq!(disk.rot_flips_applied(), 0);
        let first = disk.advance_rot(10.0);
        assert_eq!(first.len(), 1);
        // The disk keeps serving reads — rot is silent.
        let got = disk.read("chunk-00000001.tsm").unwrap();
        let flipped: u32 = got
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert!(!disk.crashed());
        // Advancing past both remaining flips fires them exactly once.
        let rest = disk.advance_rot(100.0);
        assert_eq!(rest.len(), 2);
        assert!(disk.advance_rot(1000.0).is_empty());
        assert_eq!(disk.rot_flips_applied(), 3);
    }

    #[test]
    fn rot_respects_prefix_and_quarantine_exemption() {
        let disk = MemDisk::new(11);
        for name in ["chunk-00000001.tsm", "wal.log", "quarantine/chunk-x"] {
            let mut f = disk.create(name).unwrap();
            f.append(&[0u8; 64]).unwrap();
            f.sync().unwrap();
        }
        disk.schedule_rot(RotSchedule::random(3, 16, 0.0, 50.0).with_prefix("chunk-"));
        let records = disk.advance_rot(50.0);
        assert_eq!(records.len(), 16);
        assert!(records.iter().all(|r| r.file == "chunk-00000001.tsm"));
        assert_eq!(disk.read("wal.log").unwrap(), vec![0u8; 64]);
        assert_eq!(disk.read("quarantine/chunk-x").unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn same_seed_same_rot() {
        let run = |seed: u64| {
            let disk = MemDisk::new(seed);
            let mut f = disk.create("chunk-00000001.tsm").unwrap();
            f.append(&[0xAAu8; 256]).unwrap();
            f.sync().unwrap();
            disk.schedule_rot(RotSchedule::random(seed, 4, 0.0, 10.0));
            let records = disk.advance_rot(10.0);
            (records, disk.read("chunk-00000001.tsm").unwrap())
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn create_truncates_and_list_is_sorted() {
        let disk = MemDisk::new(5);
        let mut f = disk.create("b").unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        disk.create("b").unwrap();
        assert_eq!(disk.read("b").unwrap(), b"");
        disk.create("a").unwrap();
        assert_eq!(disk.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        disk.remove("a").unwrap();
        assert!(!disk.exists("a").unwrap());
    }
}
