//! Deterministic fault-injecting in-memory disk.
//!
//! `MemDisk` models the failure behaviour that matters to a WAL: a crash
//! can lose everything since the last sync (clean stop), persist only a
//! prefix of the bytes in flight (torn tail), or corrupt already-durable
//! bytes (bit flip — the model for latent media errors surfacing across
//! a restart). Which fault fires, where it lands, and how many bytes
//! survive are all derived from a caller-supplied seed, so every
//! crash-recovery property case replays exactly.
//!
//! Durability accounting is layered on the `hwsim` block-device model:
//! every sync charges the configured [`DiskSpec`] with the bytes made
//! durable, giving the store deterministic modeled commit latencies.

use crate::error::{StoreError, StoreResult};
use crate::vfs::{Vfs, VirtualFile};
use parking_lot::Mutex;
use pmove_hwsim::disk::{DiskSpec, DiskUsage};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Block size charged to the disk model per sync.
const SYNC_BLOCK_SIZE: usize = 8192;

/// What a scheduled crash does to the bytes in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Drop every unsynced byte; durable data is untouched.
    CleanStop,
    /// Persist a seed-chosen prefix of the unsynced bytes of the file
    /// being synced, drop the rest (a torn tail).
    TornTail,
    /// Persist a prefix like [`FaultMode::TornTail`], then flip one
    /// seed-chosen bit of the target file's durable bytes.
    BitFlip,
}

/// A scheduled crash: fire at the Nth write/sync operation.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// 1-based index of the append/sync operation that crashes.
    pub crash_at_op: u64,
    /// Damage model applied at the crash point.
    pub mode: FaultMode,
}

struct FileBuf {
    durable: Vec<u8>,
    volatile: Vec<u8>,
}

struct Inner {
    files: BTreeMap<String, FileBuf>,
    spec: DiskSpec,
    usage: DiskUsage,
    plan: Option<FaultPlan>,
    ops_done: u64,
    crashed: bool,
    faults_fired: u32,
    rng: u64,
}

impl Inner {
    fn rng_next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn check_live(&self) -> StoreResult<()> {
        if self.crashed {
            Err(StoreError::DiskCrashed)
        } else {
            Ok(())
        }
    }

    /// Count one write/sync op; returns true when this op crashes.
    fn tick(&mut self) -> bool {
        self.ops_done += 1;
        matches!(self.plan, Some(p) if p.crash_at_op == self.ops_done)
    }

    /// Apply the scheduled fault during an operation on `target`.
    fn crash(&mut self, target: &str) {
        let mode = self.plan.expect("crash without plan").mode;
        self.crashed = true;
        self.faults_fired += 1;
        if matches!(mode, FaultMode::TornTail | FaultMode::BitFlip) {
            let r = self.rng_next();
            if let Some(f) = self.files.get_mut(target) {
                // r ∈ [0, len]: anything from nothing to all in-flight
                // bytes may have reached the platter.
                let keep = if f.volatile.is_empty() {
                    0
                } else {
                    (r % (f.volatile.len() as u64 + 1)) as usize
                };
                let torn: Vec<u8> = f.volatile[..keep].to_vec();
                f.durable.extend_from_slice(&torn);
            }
        }
        if mode == FaultMode::BitFlip {
            let (offset, bit) = {
                let len = self.files.get(target).map(|f| f.durable.len()).unwrap_or(0);
                if len == 0 {
                    (None, 0)
                } else {
                    let off = (self.rng_next() % len as u64) as usize;
                    let bit = (self.rng_next() % 8) as u8;
                    (Some(off), bit)
                }
            };
            if let (Some(off), Some(f)) = (offset, self.files.get_mut(target)) {
                f.durable[off] ^= 1 << bit;
            }
        }
        for f in self.files.values_mut() {
            f.volatile.clear();
        }
    }
}

/// The shared fault-injecting disk; clones are handles to the same disk.
#[derive(Clone)]
pub struct MemDisk {
    inner: Arc<Mutex<Inner>>,
}

impl MemDisk {
    /// Fresh disk with a deterministic fault/placement RNG seeded from
    /// `seed`, modeled as the paper's SATA target.
    pub fn new(seed: u64) -> MemDisk {
        MemDisk::with_spec(seed, DiskSpec::sata("memdisk"))
    }

    /// [`MemDisk::new`] with an explicit block-device model.
    pub fn with_spec(seed: u64, spec: DiskSpec) -> MemDisk {
        MemDisk {
            inner: Arc::new(Mutex::new(Inner {
                files: BTreeMap::new(),
                spec,
                usage: DiskUsage::default(),
                plan: None,
                ops_done: 0,
                crashed: false,
                faults_fired: 0,
                rng: seed ^ 0xA076_1D64_78BD_642F,
            })),
        }
    }

    /// Schedule a crash; replaces any previous plan.
    pub fn schedule_fault(&self, plan: FaultPlan) {
        self.inner.lock().plan = Some(plan);
    }

    /// Simulate power-on after a crash: unsynced bytes are gone, the
    /// pending fault plan is cleared, and operations succeed again.
    pub fn restart(&self) {
        let mut inner = self.inner.lock();
        for f in inner.files.values_mut() {
            f.volatile.clear();
        }
        inner.crashed = false;
        inner.plan = None;
    }

    /// Has a scheduled fault fired?
    pub fn crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Number of faults that have fired over the disk's lifetime.
    pub fn faults_fired(&self) -> u32 {
        self.inner.lock().faults_fired
    }

    /// Write/sync operations performed so far (the fault-op index space).
    pub fn ops_done(&self) -> u64 {
        self.inner.lock().ops_done
    }

    /// Cumulative modeled disk accounting.
    pub fn usage(&self) -> DiskUsage {
        self.inner.lock().usage
    }

    /// Total durable bytes across all files.
    pub fn durable_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.files.values().map(|f| f.durable.len() as u64).sum()
    }
}

struct MemFile {
    inner: Arc<Mutex<Inner>>,
    name: String,
}

impl VirtualFile for MemFile {
    fn append(&mut self, data: &[u8]) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        if inner.tick() {
            inner.crash(&self.name);
            return Err(StoreError::DiskCrashed);
        }
        inner
            .files
            .get_mut(&self.name)
            .ok_or_else(|| StoreError::Io(format!("file removed under writer: {}", self.name)))?
            .volatile
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        if inner.tick() {
            inner.crash(&self.name);
            return Err(StoreError::DiskCrashed);
        }
        let pending = {
            let f = inner.files.get_mut(&self.name).ok_or_else(|| {
                StoreError::Io(format!("file removed under writer: {}", self.name))
            })?;
            let pending = std::mem::take(&mut f.volatile);
            f.durable.extend_from_slice(&pending);
            pending.len() as u64
        };
        if pending > 0 {
            let spec = inner.spec.clone();
            inner.usage.record_write(&spec, pending, SYNC_BLOCK_SIZE);
        }
        Ok(())
    }

    fn len(&self) -> StoreResult<u64> {
        let inner = self.inner.lock();
        inner.check_live()?;
        let f = inner
            .files
            .get(&self.name)
            .ok_or_else(|| StoreError::Io(format!("no such file: {}", self.name)))?;
        Ok((f.durable.len() + f.volatile.len()) as u64)
    }
}

impl Vfs for MemDisk {
    fn open_append(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        inner.files.entry(name.to_string()).or_insert(FileBuf {
            durable: Vec::new(),
            volatile: Vec::new(),
        });
        Ok(Box::new(MemFile {
            inner: self.inner.clone(),
            name: name.to_string(),
        }))
    }

    fn create(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        // Truncation mutates the platter, so it participates in the
        // fault-op index space; a crash here leaves the old content.
        if inner.tick() {
            inner.crash(name);
            return Err(StoreError::DiskCrashed);
        }
        inner.files.insert(
            name.to_string(),
            FileBuf {
                durable: Vec::new(),
                volatile: Vec::new(),
            },
        );
        Ok(Box::new(MemFile {
            inner: self.inner.clone(),
            name: name.to_string(),
        }))
    }

    fn read(&self, name: &str) -> StoreResult<Vec<u8>> {
        let inner = self.inner.lock();
        inner.check_live()?;
        let f = inner
            .files
            .get(name)
            .ok_or_else(|| StoreError::Io(format!("no such file: {name}")))?;
        let mut out = f.durable.clone();
        out.extend_from_slice(&f.volatile);
        Ok(out)
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        let inner = self.inner.lock();
        inner.check_live()?;
        Ok(inner.files.keys().cloned().collect())
    }

    fn remove(&self, name: &str) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        inner.check_live()?;
        inner.files.remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> StoreResult<bool> {
        let inner = self.inner.lock();
        inner.check_live()?;
        Ok(inner.files.contains_key(name))
    }

    fn disk_spec(&self) -> DiskSpec {
        self.inner.lock().spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_sync_read_roundtrip() {
        let disk = MemDisk::new(1);
        let mut f = disk.create("wal").unwrap();
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        f.append(b"def").unwrap();
        // Unsynced bytes are visible to live reads...
        assert_eq!(disk.read("wal").unwrap(), b"abcdef");
        // ...but only synced bytes are durable.
        assert_eq!(disk.durable_bytes(), 3);
        assert!(disk.usage().bytes_written == 3);
    }

    #[test]
    fn clean_stop_loses_unsynced_only() {
        let disk = MemDisk::new(2);
        let mut f = disk.create("wal").unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 2, // the sync below
            mode: FaultMode::CleanStop,
        });
        f.append(b" lost").unwrap();
        assert_eq!(f.sync().unwrap_err(), StoreError::DiskCrashed);
        assert!(disk.crashed());
        // Everything errors until restart.
        assert!(disk.read("wal").is_err());
        disk.restart();
        assert_eq!(disk.read("wal").unwrap(), b"durable");
    }

    #[test]
    fn torn_tail_persists_a_prefix() {
        let disk = MemDisk::new(3);
        let mut f = disk.create("wal").unwrap();
        f.append(b"base").unwrap();
        f.sync().unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 2,
            mode: FaultMode::TornTail,
        });
        f.append(b"0123456789").unwrap();
        assert!(f.sync().is_err());
        disk.restart();
        let got = disk.read("wal").unwrap();
        assert!(got.starts_with(b"base"));
        assert!(got.len() <= 14);
        assert_eq!(&got[4..], &b"0123456789"[..got.len() - 4]);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let disk = MemDisk::new(4);
        let mut f = disk.create("wal").unwrap();
        let clean = vec![0u8; 64];
        f.append(&clean).unwrap();
        f.sync().unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 1,
            mode: FaultMode::BitFlip,
        });
        assert!(f.append(b"").is_err());
        disk.restart();
        let got = disk.read("wal").unwrap();
        let flipped: u32 = got
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed: u64| {
            let disk = MemDisk::new(seed);
            let mut f = disk.create("wal").unwrap();
            f.append(b"base").unwrap();
            f.sync().unwrap();
            disk.schedule_fault(FaultPlan {
                crash_at_op: disk.ops_done() + 2,
                mode: FaultMode::TornTail,
            });
            f.append(b"abcdefghijklmnop").unwrap();
            let _ = f.sync();
            disk.restart();
            disk.read("wal").unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn create_truncates_and_list_is_sorted() {
        let disk = MemDisk::new(5);
        let mut f = disk.create("b").unwrap();
        f.append(b"x").unwrap();
        f.sync().unwrap();
        disk.create("b").unwrap();
        assert_eq!(disk.read("b").unwrap(), b"");
        disk.create("a").unwrap();
        assert_eq!(disk.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        disk.remove("a").unwrap();
        assert!(!disk.exists("a").unwrap());
    }
}
