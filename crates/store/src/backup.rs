//! Online backups, continuous WAL archival, and point-in-time restore.
//!
//! The backup destination is its own [`Vfs`] — a second (virtual) disk,
//! so a disaster on the primary never takes the backups with it, and so
//! `MemDisk` rot/torn-write schedules apply to backup bytes exactly like
//! live bytes. Two kinds of state live there:
//!
//!   * **Archive segments** (`archive/seg-NNNNNNNN.log`): every WAL
//!     record the store group-commits is re-framed — prefixed with a
//!     monotonically increasing archive sequence number and the store's
//!     virtual timestamp — and appended to the current segment in the
//!     same `[len][crc32][payload]` framing as the WAL itself. Segments
//!     seal at each memtable flush, aligning segment boundaries with the
//!     chunk fence they were flushed behind.
//!   * **Snapshot generations** (`gen-NNNNNNNN/…`): a consistent online
//!     copy of the live chunk set, captured at an archive-sequence fence
//!     without stopping writes. Each chunk file is CRC-verified on the
//!     way out, and the generation's `manifest` — which names every
//!     chunk with its checksum and records the fence — is written
//!     **last**, so a backup interrupted by a crash simply has no valid
//!     manifest and is never mistaken for a complete one.
//!
//! Restore ([`restore_at`]) is the inverse: pick the newest generation
//! whose fence lies at or before the target virtual timestamp, verify
//! and copy its chunks into a fresh store namespace, then replay
//! archived records past the generation's flush fence up to the target.
//! Every checksum is re-verified; a gap or corruption in bytes the
//! restore still needs is a typed [`BackupError`] — the restore refuses
//! rather than materialize silently-wrong data. The [`RestoreReport`]
//! carries its own conservation ledger: every row that entered from the
//! snapshot or the replay is either in the restored store or accounted
//! as a last-write-wins duplicate, exactly.

use crate::chunk::chunk_name;
use crate::crc::{crc32, crc32_finish, crc32_init, crc32_update};
use crate::error::{StoreError, StoreResult};
use crate::row::RowRecord;
use crate::store::{decode_row_batch, WAL_FILE};
use crate::vfs::{Vfs, VirtualFile};
use crate::wal::{scan_frames, Wal};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Namespace prefix for archive segments on the backup destination.
pub const ARCHIVE_PREFIX: &str = "archive/";

/// Magic bytes opening every generation manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"PMBKUP1\0";

/// Archive segment file name for segment `id`.
pub fn segment_name(id: u64) -> String {
    format!("{ARCHIVE_PREFIX}seg-{id:08}.log")
}

/// Inverse of [`segment_name`].
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(ARCHIVE_PREFIX)?
        .strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Directory-style prefix for generation `gen` on the destination.
pub fn generation_prefix(gen: u64) -> String {
    format!("gen-{gen:08}/")
}

/// Manifest file name for generation `gen`.
pub fn manifest_name(gen: u64) -> String {
    format!("gen-{gen:08}/manifest")
}

fn parse_generation(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("gen-")?;
    let (digits, _) = rest.split_once('/')?;
    digits.parse().ok()
}

// ------------------------------------------------------------------ errors

/// Why a backup or restore was refused. Every variant is a *detected*
/// problem: restore never falls back to silently-wrong data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackupError {
    /// An underlying storage operation failed.
    Store(StoreError),
    /// The destination holds neither a snapshot generation nor archive
    /// data — there is nothing to restore.
    NoBackup,
    /// A generation manifest exists but fails its magic or CRC.
    ManifestCorrupt {
        /// Generation whose manifest was damaged.
        gen: u64,
    },
    /// A backed-up chunk is missing or does not match the checksum its
    /// manifest recorded for it.
    ChunkCorrupt {
        /// Generation the chunk belongs to.
        gen: u64,
        /// Chunk file name inside the generation.
        name: String,
    },
    /// An archive segment contains a provably corrupt frame before the
    /// restore target was reached.
    ArchiveCorrupt {
        /// Segment id holding the damaged frame.
        segment: u64,
    },
    /// Archive sequence numbers are not contiguous where the restore
    /// still needs them.
    ArchiveGap {
        /// Sequence number the replay expected next.
        expected: u64,
        /// Sequence number actually found.
        found: u64,
    },
    /// An archived record deframed but did not decode.
    ArchiveDecode {
        /// Archive sequence number of the undecodable record.
        seq: u64,
    },
}

impl fmt::Display for BackupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupError::Store(e) => write!(f, "backup storage error: {e}"),
            BackupError::NoBackup => write!(f, "no backup data at the destination"),
            BackupError::ManifestCorrupt { gen } => {
                write!(f, "generation {gen} manifest is corrupt")
            }
            BackupError::ChunkCorrupt { gen, name } => {
                write!(f, "generation {gen} chunk {name} is corrupt or missing")
            }
            BackupError::ArchiveCorrupt { segment } => {
                write!(f, "archive segment {segment} has a corrupt frame")
            }
            BackupError::ArchiveGap { expected, found } => {
                write!(f, "archive gap: expected seq {expected}, found {found}")
            }
            BackupError::ArchiveDecode { seq } => {
                write!(f, "archived record {seq} does not decode")
            }
        }
    }
}

impl std::error::Error for BackupError {}

impl From<StoreError> for BackupError {
    fn from(e: StoreError) -> Self {
        BackupError::Store(e)
    }
}

// ---------------------------------------------------------------- manifest

/// One chunk recorded by a generation manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestChunk {
    /// Original chunk file name (restore recreates it verbatim).
    pub name: String,
    /// CRC32 of the chunk file bytes at backup time.
    pub crc: u32,
    /// Size of the chunk file in bytes.
    pub bytes: u64,
    /// Rows the chunk held when it was verified for the copy.
    pub rows: u64,
}

/// A generation manifest: what the snapshot captured and where the
/// archive replay must pick up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Generation id (monotonic, never reused even across aborts).
    pub gen: u64,
    /// Last archive sequence number committed when the snapshot began.
    pub fence_seq: u64,
    /// Archive records with `seq <= flushed_seq` are already reflected
    /// in the chunk set; replay starts after this.
    pub flushed_seq: u64,
    /// Store virtual timestamp (ns) at the snapshot fence.
    pub fence_vts: i64,
    /// Chunks captured by this generation.
    pub chunks: Vec<ManifestChunk>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&self.gen.to_le_bytes());
        out.extend_from_slice(&self.fence_seq.to_le_bytes());
        out.extend_from_slice(&self.flushed_seq.to_le_bytes());
        out.extend_from_slice(&self.fence_vts.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&(c.name.len() as u16).to_le_bytes());
            out.extend_from_slice(c.name.as_bytes());
            out.extend_from_slice(&c.crc.to_le_bytes());
            out.extend_from_slice(&c.bytes.to_le_bytes());
            out.extend_from_slice(&c.rows.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(data: &[u8]) -> Option<Manifest> {
        if data.len() < MANIFEST_MAGIC.len() + 36 + 4 || &data[..8] != MANIFEST_MAGIC {
            return None;
        }
        let body = &data[..data.len() - 4];
        let crc = u32::from_le_bytes(data[data.len() - 4..].try_into().ok()?);
        if crc32(body) != crc {
            return None;
        }
        let mut pos = 8usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let end = pos.checked_add(n).filter(|&e| e <= body.len())?;
            let s = &body[pos..end];
            pos = end;
            Some(s)
        };
        let gen = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let fence_seq = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let flushed_seq = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let fence_vts = i64::from_le_bytes(take(8)?.try_into().ok()?);
        let count = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let mut chunks = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let name_len = u16::from_le_bytes(take(2)?.try_into().ok()?) as usize;
            let name = std::str::from_utf8(take(name_len)?).ok()?.to_string();
            let crc = u32::from_le_bytes(take(4)?.try_into().ok()?);
            let bytes = u64::from_le_bytes(take(8)?.try_into().ok()?);
            let rows = u64::from_le_bytes(take(8)?.try_into().ok()?);
            chunks.push(ManifestChunk {
                name,
                crc,
                bytes,
                rows,
            });
        }
        if pos != body.len() {
            return None;
        }
        Some(Manifest {
            gen,
            fence_seq,
            flushed_seq,
            fence_vts,
            chunks,
        })
    }
}

/// Every generation on `src` with a structurally valid manifest,
/// ascending by generation id. Torn generations (crash before the
/// manifest landed) and rotted manifests are skipped — they can never be
/// mistaken for restorable state.
pub fn list_generations(src: &dyn Vfs) -> StoreResult<Vec<Manifest>> {
    let mut out = Vec::new();
    for name in src.list()? {
        let Some(gen) = parse_generation(&name) else {
            continue;
        };
        if name != manifest_name(gen) {
            continue;
        }
        let data = src.read(&name)?;
        if let Some(m) = Manifest::decode(&data) {
            out.push(m);
        }
    }
    out.sort_by_key(|m| m.gen);
    Ok(out)
}

// ---------------------------------------------------------------- archiver

/// Frame one archive record (`seq || vts || payload` inside a
/// `[len][crc]` WAL-style frame) directly into `out`. The CRC streams
/// over the header and payload so no intermediate record buffer is
/// allocated — this runs once per committed record on the ingest path.
fn frame_archive_record(out: &mut Vec<u8>, seq: u64, vts: i64, payload: &[u8]) {
    let mut header = [0u8; 16];
    header[..8].copy_from_slice(&seq.to_le_bytes());
    header[8..].copy_from_slice(&vts.to_le_bytes());
    let crc = crc32_finish(crc32_update(crc32_update(crc32_init(), &header), payload));
    out.reserve(8 + 16 + payload.len());
    out.extend_from_slice(&((16 + payload.len()) as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&header);
    out.extend_from_slice(payload);
}

fn decode_archive_record(data: &[u8]) -> Option<(u64, i64, &[u8])> {
    if data.len() < 16 {
        return None;
    }
    let seq = u64::from_le_bytes(data[..8].try_into().ok()?);
    let vts = i64::from_le_bytes(data[8..16].try_into().ok()?);
    Some((seq, vts, &data[16..]))
}

/// Running totals for the backup subsystem, mirrored into the
/// `store.backup.*` metrics when the store carries observation handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackupStats {
    /// WAL records re-framed into the archive.
    pub records_archived: u64,
    /// Frame bytes appended to archive segments.
    pub bytes_archived: u64,
    /// Archive writes that failed (retried on later commits).
    pub archive_errors: u64,
    /// Snapshot generations completed (manifest durable).
    pub generations_completed: u64,
    /// Chunk files copied into generations.
    pub chunks_copied: u64,
    /// Chunk bytes copied into generations.
    pub bytes_copied: u64,
    /// Chunks a backup job had to skip (quarantined mid-job).
    pub chunks_skipped: u64,
    /// Backup jobs that failed before their manifest landed.
    pub backup_errors: u64,
    /// Virtual timestamp (ns) of the last completed generation.
    pub last_success_vts: i64,
}

/// What [`BackupState::attach`] found at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackupAttach {
    /// Highest archive sequence number already durable at the
    /// destination; archival resumes at the next one.
    pub resumed_seq: u64,
    /// WAL records re-archived as catch-up (rows that were in the live
    /// WAL when backups were (re-)enabled).
    pub catchup_records: u64,
}

/// An in-progress snapshot generation.
#[derive(Debug)]
pub(crate) struct BackupJob {
    pub(crate) gen: u64,
    fence_seq: u64,
    flushed_seq: u64,
    fence_vts: i64,
    /// Chunk seqs not yet copied.
    pub(crate) todo: Vec<u64>,
    done: Vec<ManifestChunk>,
    rows: u64,
    skipped: u64,
}

/// Outcome of one completed snapshot generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupReport {
    /// Generation id the manifest landed under.
    pub gen: u64,
    /// Chunks captured.
    pub chunks: u64,
    /// Chunk bytes copied.
    pub bytes: u64,
    /// Rows the captured chunks held.
    pub rows: u64,
    /// Chunks skipped because they were quarantined mid-job.
    pub chunks_skipped: u64,
    /// Archive fence recorded in the manifest.
    pub fence_seq: u64,
    /// Virtual timestamp of the fence.
    pub fence_vts: i64,
}

/// The store-side backup state: archive cursor, pinned chunks, and the
/// active snapshot job. Owned by `TsStore` when backups are enabled.
pub struct BackupState {
    dest: Arc<dyn Vfs>,
    /// Segment currently receiving archive frames.
    seg: u64,
    /// Next archive sequence number to assign.
    next_seq: u64,
    /// Records `<= flushed_seq` are reflected in the live chunk set.
    flushed_seq: u64,
    /// Records written into the current segment (seal only non-empty).
    seg_records: u64,
    /// Open handle on the current segment, reused across drains so each
    /// group archival pays one append + sync, not an open as well. Seals
    /// and write errors drop it; the next drain reopens.
    writer: Option<Box<dyn VirtualFile>>,
    /// Store virtual timestamp, stamped onto archived records.
    pub(crate) vts: i64,
    /// Committed-but-not-yet-archived payloads (retained across archive
    /// write failures, retried on later commits).
    pending: Vec<Vec<u8>>,
    /// The last archive write failed; resynchronize before writing.
    dirty: bool,
    /// Group-archival threshold: staged payloads are written to the
    /// destination once at least this many are pending (1 = archive on
    /// every commit). Flushes, snapshot fences, and re-attachment always
    /// drain regardless, so the archive lag is bounded by `group - 1`
    /// commits — and the WAL still holds those rows, so nothing is lost
    /// short of losing the primary disk itself.
    group: u64,
    /// Next generation id (never reused, aborted jobs included).
    next_gen: u64,
    job: Option<BackupJob>,
    /// Chunk seqs an in-progress job still needs: compaction must not
    /// delete their files until the job releases them.
    pinned: BTreeSet<u64>,
    /// Files compaction wanted to delete but couldn't (pinned); removed
    /// when the pin set drains.
    deferred: Vec<String>,
    stats: BackupStats,
}

impl BackupState {
    /// Attach to `dest`, resuming archive sequence numbering from
    /// whatever is already durable there and re-archiving `wal_payloads`
    /// (the live WAL contents) so rows committed before enablement — or
    /// recovered across a crash — are covered by the archive.
    pub fn attach(
        dest: Arc<dyn Vfs>,
        vts: i64,
        wal_payloads: &[Vec<u8>],
    ) -> StoreResult<(BackupState, BackupAttach)> {
        let mut max_seg = None;
        let mut max_gen = None;
        let mut max_seq = 0u64;
        for name in dest.list()? {
            if let Some(id) = parse_segment_name(&name) {
                max_seg = Some(max_seg.map_or(id, |m: u64| m.max(id)));
                let data = dest.read(&name)?;
                let (frames, _, _) = scan_frames(&data);
                for f in &frames {
                    if let Some((seq, _, _)) = decode_archive_record(f) {
                        max_seq = max_seq.max(seq);
                    }
                }
            } else if let Some(gen) = parse_generation(&name) {
                max_gen = Some(max_gen.map_or(gen, |m: u64| m.max(gen)));
            }
        }
        let mut state = BackupState {
            dest,
            // Always open a fresh segment: the tail of an old one may be
            // torn, and frames must never land after damaged bytes.
            seg: max_seg.map_or(0, |m| m + 1),
            next_seq: max_seq + 1,
            flushed_seq: 0,
            seg_records: 0,
            writer: None,
            vts,
            pending: wal_payloads.to_vec(),
            dirty: false,
            group: 1,
            next_gen: max_gen.map_or(0, |m| m + 1),
            job: None,
            pinned: BTreeSet::new(),
            deferred: Vec::new(),
            stats: BackupStats::default(),
        };
        let catchup = state.pending.len() as u64;
        if !state.pending.is_empty() {
            // Catch-up archival is best-effort like any other archive
            // write: a failure leaves the payloads pending for retry.
            state.archive_pending();
        }
        Ok((
            state,
            BackupAttach {
                resumed_seq: max_seq,
                catchup_records: catchup,
            },
        ))
    }

    /// Advance the virtual clock (monotonic).
    pub fn note_time(&mut self, vts: i64) {
        self.vts = self.vts.max(vts);
    }

    /// Queue one committed WAL payload for archival.
    pub fn stage(&mut self, payload: Vec<u8>) {
        self.pending.push(payload);
    }

    /// Set the group-archival threshold (clamped to at least 1).
    pub fn set_group(&mut self, group: u64) {
        self.group = group.max(1);
    }

    /// Archive pending payloads if the group threshold is met (the
    /// per-commit fast path: below the threshold this is a no-op, so a
    /// commit pays only one `Vec` push for archival).
    pub fn archive_maybe(&mut self) -> u64 {
        if (self.pending.len() as u64) < self.group {
            return 0;
        }
        self.archive_pending()
    }

    /// Running totals.
    pub fn stats(&self) -> BackupStats {
        self.stats
    }

    /// The backup destination.
    pub fn dest(&self) -> Arc<dyn Vfs> {
        self.dest.clone()
    }

    /// Is `seq` pinned by an in-progress snapshot job?
    pub fn is_pinned(&self, seq: u64) -> bool {
        self.pinned.contains(&seq)
    }

    /// Remember `name` for deletion once the pin set drains.
    pub fn defer_delete(&mut self, name: String) {
        self.deferred.push(name);
    }

    /// Is a snapshot job in progress?
    pub fn job_active(&self) -> bool {
        self.job.is_some()
    }

    /// Pop the next chunk seq the active job still has to copy.
    pub(crate) fn job_todo_pop(&mut self) -> Option<u64> {
        self.job.as_mut()?.todo.pop()
    }

    /// Has the active job copied (or skipped) every chunk?
    pub(crate) fn job_todo_is_empty(&self) -> bool {
        self.job.as_ref().is_some_and(|j| j.todo.is_empty())
    }

    /// After an archive write error the durable tail of the current
    /// segment is unknown: read it back, drop pending payloads that made
    /// it to the platter, and seal the segment so new frames never land
    /// after torn bytes.
    fn resync_after_error(&mut self) -> bool {
        let Ok(data) = self.dest.read(&segment_name(self.seg)) else {
            return false; // still unreachable; stay dirty
        };
        let (frames, _, _) = scan_frames(&data);
        let mut survived = 0usize;
        for f in &frames {
            if let Some((seq, _, _)) = decode_archive_record(f) {
                if seq >= self.next_seq {
                    survived += 1;
                }
            }
        }
        self.pending.drain(..survived.min(self.pending.len()));
        self.next_seq += survived as u64;
        self.seg += 1;
        self.seg_records = 0;
        self.writer = None;
        self.dirty = false;
        true
    }

    /// Write every pending payload to the current archive segment: one
    /// append, one sync, sequence numbers assigned in order. Failures
    /// leave the payloads pending and mark the archiver dirty — the
    /// primary commit that carried the rows has already succeeded, so
    /// archival lag must never fail the write path.
    pub fn archive_pending(&mut self) -> u64 {
        if self.pending.is_empty() {
            return 0;
        }
        if self.dirty && !self.resync_after_error() {
            self.stats.archive_errors += 1;
            return 0;
        }
        if self.pending.is_empty() {
            return 0;
        }
        let mut framed = Vec::new();
        for (i, payload) in self.pending.iter().enumerate() {
            frame_archive_record(&mut framed, self.next_seq + i as u64, self.vts, payload);
        }
        let res = (|| -> StoreResult<()> {
            if self.writer.is_none() {
                let name = segment_name(self.seg);
                self.writer = Some(if self.seg_records == 0 {
                    self.dest.create(&name)?
                } else {
                    self.dest.open_append(&name)?
                });
            }
            let f = self.writer.as_mut().expect("writer just ensured");
            f.append(&framed)?;
            f.sync()?;
            Ok(())
        })();
        match res {
            Ok(()) => {
                let n = self.pending.len() as u64;
                self.next_seq += n;
                self.seg_records += n;
                self.pending.clear();
                self.stats.records_archived += n;
                self.stats.bytes_archived += framed.len() as u64;
                n
            }
            Err(_) => {
                self.stats.archive_errors += 1;
                self.dirty = true;
                self.writer = None;
                0
            }
        }
    }

    /// The memtable just flushed into a chunk and the WAL reset: advance
    /// the flush fence (only when nothing is awaiting archival — the
    /// fence must never claim coverage the archive doesn't have) and
    /// seal the current segment.
    pub fn on_flush(&mut self) {
        // Drain any group-archival backlog first: the fence below may
        // only advance over records the archive actually holds.
        self.archive_pending();
        if self.pending.is_empty() && !self.dirty {
            self.flushed_seq = self.next_seq - 1;
        }
        if self.seg_records > 0 {
            self.seg += 1;
            self.seg_records = 0;
            self.writer = None;
        }
    }

    /// Begin a snapshot generation over `chunk_seqs`, pinning them
    /// against compaction. Returns the generation id.
    pub fn begin_job(&mut self, chunk_seqs: &[u64]) -> StoreResult<u64> {
        if self.job.is_some() {
            return Err(StoreError::Io("backup already in progress".into()));
        }
        // A completed generation advertises coverage up to its fence:
        // drain the group-archival backlog so the advertisement is true.
        self.archive_pending();
        let gen = self.next_gen;
        self.next_gen += 1;
        self.pinned.extend(chunk_seqs.iter().copied());
        self.job = Some(BackupJob {
            gen,
            fence_seq: self.next_seq - 1,
            flushed_seq: self.flushed_seq,
            fence_vts: self.vts,
            todo: chunk_seqs.to_vec(),
            done: Vec::new(),
            rows: 0,
            skipped: 0,
        });
        Ok(gen)
    }

    /// Copy one verified chunk into the active generation.
    pub fn job_copy_chunk(&mut self, seq: u64, data: &[u8], rows: u64) -> StoreResult<()> {
        let job = self
            .job
            .as_mut()
            .ok_or_else(|| StoreError::Io("no backup in progress".into()))?;
        let name = chunk_name(seq);
        let mut f = self
            .dest
            .create(&format!("{}{name}", generation_prefix(job.gen)))?;
        f.append(data)?;
        f.sync()?;
        job.done.push(ManifestChunk {
            name,
            crc: crc32(data),
            bytes: data.len() as u64,
            rows,
        });
        job.rows += rows;
        self.stats.chunks_copied += 1;
        self.stats.bytes_copied += data.len() as u64;
        Ok(())
    }

    /// Note a chunk the job could not capture (quarantined mid-job).
    pub fn job_skip_chunk(&mut self) {
        if let Some(job) = self.job.as_mut() {
            job.skipped += 1;
            self.stats.chunks_skipped += 1;
        }
    }

    /// Write the manifest — the commit point of the whole generation —
    /// and release the pins. Deferred deletions are returned for the
    /// store to apply to its own namespace.
    pub fn finish_job(&mut self) -> StoreResult<(BackupReport, Vec<String>)> {
        let job = self
            .job
            .as_mut()
            .ok_or_else(|| StoreError::Io("no backup in progress".into()))?;
        if !job.todo.is_empty() {
            return Err(StoreError::Io("backup job has chunks left to copy".into()));
        }
        let manifest = Manifest {
            gen: job.gen,
            fence_seq: job.fence_seq,
            flushed_seq: job.flushed_seq,
            fence_vts: job.fence_vts,
            chunks: job.done.clone(),
        };
        let mut f = self.dest.create(&manifest_name(job.gen))?;
        f.append(&manifest.encode())?;
        f.sync()?;
        let job = self.job.take().expect("job checked above");
        let report = BackupReport {
            gen: job.gen,
            chunks: job.done.len() as u64,
            bytes: job.done.iter().map(|c| c.bytes).sum(),
            rows: job.rows,
            chunks_skipped: job.skipped,
            fence_seq: job.fence_seq,
            fence_vts: job.fence_vts,
        };
        self.stats.generations_completed += 1;
        self.stats.last_success_vts = job.fence_vts;
        self.pinned.clear();
        Ok((report, std::mem::take(&mut self.deferred)))
    }

    /// Abandon the active job: release pins, count the failure, and
    /// return the deferred deletions. The torn generation keeps its id
    /// (never reused) and, having no valid manifest, is invisible to
    /// restore.
    pub fn abort_job(&mut self) -> Vec<String> {
        if self.job.take().is_some() {
            self.stats.backup_errors += 1;
        }
        self.pinned.clear();
        std::mem::take(&mut self.deferred)
    }
}

impl fmt::Debug for BackupState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackupState")
            .field("seg", &self.seg)
            .field("next_seq", &self.next_seq)
            .field("flushed_seq", &self.flushed_seq)
            .field("pending", &self.pending.len())
            .field("job", &self.job.is_some())
            .finish()
    }
}

// ----------------------------------------------------------------- restore

/// Conservation-ledgered outcome of a restore. Every row that entered
/// from the snapshot or the replay is either in the restored store or
/// accounted as a last-write-wins duplicate:
/// `snapshot_rows + replayed_rows == restored_rows + dedup_rows`.
///
/// The snapshot's chunks are adopted verbatim (CRC-verified, never
/// re-decoded — they were verified row-by-row when the backup captured
/// them), so `restored_rows` counts the chunk rows as materialized plus
/// the distinct cells the replay added, and `dedup_rows` counts
/// collisions among replayed records. LWW resolution of any duplicate
/// across the chunk/replay boundary happens at read time in the restored
/// store, exactly as it would have on the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreReport {
    /// Generation the snapshot came from (`None` = archive-only replay).
    pub gen: Option<u64>,
    /// Chunk files copied from the snapshot.
    pub snapshot_chunks: u64,
    /// Rows those chunks held (from the verified manifest).
    pub snapshot_rows: u64,
    /// Archive records replayed past the flush fence.
    pub replayed_records: u64,
    /// Rows those records carried.
    pub replayed_rows: u64,
    /// Rows materialized in the restored namespace: adopted chunk rows
    /// plus distinct replayed cells.
    pub restored_rows: u64,
    /// Replayed rows superseded by a later replayed write of the same
    /// cell.
    pub dedup_rows: u64,
    /// Snapshot bytes copied.
    pub bytes_copied: u64,
    /// Archive bytes scanned during the replay.
    pub bytes_replayed: u64,
}

impl RestoreReport {
    /// Does the restore ledger balance exactly?
    pub fn conserved(&self) -> bool {
        self.snapshot_rows + self.replayed_rows == self.restored_rows + self.dedup_rows
    }
}

/// Restore the newest state at or before virtual timestamp `t_vts` from
/// backup source `src` into the (empty) store namespace `target`.
///
/// Picks the newest generation whose fence lies at or before `t_vts`
/// (or no snapshot at all, replaying the archive from the beginning),
/// verifies and copies its chunks, then replays archived records past
/// the generation's flush fence whose stamp is `<= t_vts`. After a
/// successful restore, `TsStore::open(target, …)` yields the restored
/// store. Any gap or corruption in bytes the restore needs is a typed
/// refusal; `target` must then be considered garbage.
pub fn restore_at(
    src: &dyn Vfs,
    target: Arc<dyn Vfs>,
    t_vts: i64,
) -> Result<RestoreReport, BackupError> {
    restore_inner(src, target, t_vts, true)
}

/// [`restore_at`] that ignores every snapshot generation and rebuilds
/// purely by replaying the archive from record 1 — the slow-path
/// baseline the snapshot fast path is benchmarked against.
pub fn restore_replay_all(
    src: &dyn Vfs,
    target: Arc<dyn Vfs>,
    t_vts: i64,
) -> Result<RestoreReport, BackupError> {
    restore_inner(src, target, t_vts, false)
}

fn restore_inner(
    src: &dyn Vfs,
    target: Arc<dyn Vfs>,
    t_vts: i64,
    use_snapshot: bool,
) -> Result<RestoreReport, BackupError> {
    let generations = list_generations(src)?;
    let segment_ids: Vec<u64> = {
        let mut ids: Vec<u64> = src
            .list()?
            .iter()
            .filter_map(|n| parse_segment_name(n))
            .collect();
        ids.sort_unstable();
        ids
    };
    if generations.is_empty() && segment_ids.is_empty() {
        return Err(BackupError::NoBackup);
    }
    let chosen = if use_snapshot {
        generations.iter().rev().find(|m| m.fence_vts <= t_vts)
    } else {
        None
    };

    let mut report = RestoreReport {
        gen: chosen.map(|m| m.gen),
        ..RestoreReport::default()
    };
    // Last-write-wins cell map; duplicates are counted, never dropped
    // silently — the restore ledger has to balance.
    let mut cells: BTreeMap<(String, String, i64), ()> = BTreeMap::new();
    let mut insert_rows = |rows: &[RowRecord], dedup: &mut u64| {
        for r in rows {
            if cells
                .insert((r.series.clone(), r.field.clone(), r.ts), ())
                .is_some()
            {
                *dedup += 1;
            }
        }
    };

    // 1. Snapshot chunks: verify against the manifest *and* the chunk's
    //    own internal CRC, then copy verbatim into the target.
    let mut flushed_seq = 0u64;
    if let Some(m) = chosen {
        flushed_seq = m.flushed_seq;
        for entry in &m.chunks {
            let src_name = format!("{}{}", generation_prefix(m.gen), entry.name);
            let data = match src.read(&src_name) {
                Ok(d) => d,
                Err(StoreError::DiskCrashed) => return Err(StoreError::DiskCrashed.into()),
                Err(_) => {
                    return Err(BackupError::ChunkCorrupt {
                        gen: m.gen,
                        name: entry.name.clone(),
                    })
                }
            };
            if data.len() as u64 != entry.bytes || crc32(&data) != entry.crc {
                return Err(BackupError::ChunkCorrupt {
                    gen: m.gen,
                    name: entry.name.clone(),
                });
            }
            // Verbatim adoption: the CRC just proved these are the exact
            // bytes the backup job verified row-by-row at capture time
            // (the manifest's row count comes from that decode), so the
            // restore skips re-decoding them entirely — this is what
            // makes the snapshot path beat replaying the archive.
            let mut f = target.create(&entry.name)?;
            f.append(&data)?;
            f.sync()?;
            report.snapshot_chunks += 1;
            report.snapshot_rows += entry.rows;
            report.bytes_copied += data.len() as u64;
        }
    }

    // 2. Archive replay: records past the flush fence, up to the target
    //    timestamp, in strictly contiguous sequence order. The replayed
    //    payloads are re-framed into the target's WAL, so the restored
    //    namespace is exactly a store that crashed after those commits.
    //
    //    With a snapshot in hand, segments wholly at or below the flush
    //    fence are *skipped without being read*: sequence numbers grow
    //    strictly across segment ids, so a reverse walk stops at the
    //    first segment whose records could straddle the fence. This is
    //    what makes snapshot restore cheap when the archive is long — and
    //    it means pre-fence archive damage (or pruned early segments)
    //    cannot block a restore that never needs those bytes.
    let mut replay: Vec<(u64, Vec<u8>)> = Vec::new();
    for &id in segment_ids.iter().rev() {
        let data = src.read(&segment_name(id))?;
        let first_seq = scan_frames(&data)
            .0
            .first()
            .and_then(|f| decode_archive_record(f))
            .map(|(seq, _, _)| seq);
        replay.push((id, data));
        // Without a fence every segment is needed; otherwise stop at the
        // first segment reaching back to covered records — everything
        // older is covered too.
        if flushed_seq > 0 && first_seq.is_some_and(|s| s <= flushed_seq) {
            break;
        }
    }
    replay.reverse();
    // The needed range must be contiguous from the fence onward; for an
    // archive-only replay, from the very first record.
    let mut expected = if flushed_seq == 0 { Some(1u64) } else { None };
    let (mut wal, _, _) = Wal::open(target.clone(), WAL_FILE)?;
    'segments: for (id, data) in &replay {
        let id = *id;
        report.bytes_replayed += data.len() as u64;
        let (frames, _, corrupt) = scan_frames(data);
        for frame in &frames {
            let Some((seq, vts, payload)) = decode_archive_record(frame) else {
                return Err(BackupError::ArchiveCorrupt { segment: id });
            };
            if vts > t_vts {
                // The archive is stamped monotonically: everything past
                // this record lies beyond the restore target, so tail
                // damage out there cannot matter.
                break 'segments;
            }
            match expected {
                Some(e) if seq != e => {
                    return Err(BackupError::ArchiveGap {
                        expected: e,
                        found: seq,
                    })
                }
                None if seq > flushed_seq + 1 => {
                    // The oldest segment we kept starts beyond the
                    // fence: records the snapshot does not cover are
                    // missing from the archive.
                    return Err(BackupError::ArchiveGap {
                        expected: flushed_seq + 1,
                        found: seq,
                    });
                }
                _ => {}
            }
            expected = Some(seq + 1);
            if seq > flushed_seq {
                let rows =
                    decode_row_batch(payload).map_err(|_| BackupError::ArchiveDecode { seq })?;
                report.replayed_records += 1;
                report.replayed_rows += rows.len() as u64;
                insert_rows(&rows, &mut report.dedup_rows);
                wal.append(payload);
            }
        }
        if corrupt > 0 {
            // A provably damaged frame before the target was reached:
            // records the restore may still need are unreadable.
            return Err(BackupError::ArchiveCorrupt { segment: id });
        }
    }
    wal.commit()?;

    report.restored_rows = report.snapshot_rows + cells.len() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::{FaultMode, FaultPlan, MemDisk};
    use crate::row::ColumnValue;
    use crate::store::{StoreOptions, TsStore};

    fn row(series: &str, field: &str, ts: i64, v: f64) -> RowRecord {
        RowRecord::new(series, field, ts, ColumnValue::F64(v))
    }

    fn manual_opts() -> StoreOptions {
        StoreOptions {
            flush_threshold_rows: 1_000_000,
            compact_min_chunks: 1_000_000,
        }
    }

    /// Fresh store on its own seeded disk with backups to a second disk.
    fn store_with_backup(seed: u64) -> (TsStore, MemDisk, MemDisk) {
        let primary = MemDisk::new(seed);
        let dest = MemDisk::new(seed ^ 0xBAC4_B4C4);
        let (mut store, _) = TsStore::open(Arc::new(primary.clone()), manual_opts()).unwrap();
        store.enable_backup(Arc::new(dest.clone())).unwrap();
        (store, primary, dest)
    }

    fn restore_rows(src: &MemDisk, t_vts: i64) -> (Vec<RowRecord>, RestoreReport) {
        let scratch = MemDisk::new(0x05C4_A7C4);
        let report = restore_at(src, Arc::new(scratch.clone()), t_vts).unwrap();
        let (mut restored, _) = TsStore::open(Arc::new(scratch), manual_opts()).unwrap();
        (restored.scan().unwrap(), report)
    }

    #[test]
    fn backup_restore_roundtrip_snapshot_plus_replay() {
        let (mut store, _, dest) = store_with_backup(40);
        store.note_time(1_000);
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, -0.0)]);
        store.commit().unwrap();
        store.flush().unwrap(); // chunk 0, archive fence advances
        store.note_time(2_000);
        store.append(&[row("s", "f", 3, f64::NAN)]);
        store.commit().unwrap();
        let report = store.backup_now().unwrap();
        assert_eq!(report.chunks, 1);
        assert_eq!(report.fence_vts, 2_000);
        // Rows committed after the snapshot ride the archive alone.
        store.note_time(3_000);
        store.append(&[row("s", "f", 4, 4.0), row("s", "f", 2, 20.0)]);
        store.commit().unwrap();

        let want: Vec<RowRecord> = store.scan().unwrap();
        let (got, rr) = restore_rows(&dest, 3_000);
        assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!((&a.series, &a.field, a.ts), (&b.series, &b.field, b.ts));
            match (&a.value, &b.value) {
                (ColumnValue::F64(x), ColumnValue::F64(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                (x, y) => assert_eq!(x, y),
            }
        }
        assert!(rr.conserved(), "restore ledger must balance: {rr:?}");
        assert_eq!(rr.gen, Some(0));
        assert!(rr.replayed_rows >= 3, "post-snapshot rows replay");

        // PITR: restoring at the first fence excludes later commits.
        let (early, rr1) = restore_rows(&dest, 1_000);
        assert_eq!(early.len(), 2);
        assert!(rr1.conserved());
    }

    #[test]
    fn compaction_defers_deleting_pinned_chunks_until_backup_finishes() {
        let (mut store, primary, dest) = store_with_backup(41);
        store.note_time(1_000);
        for i in 0..3i64 {
            store.append(&[row("s", "f", i, i as f64)]);
            store.commit().unwrap();
            store.flush().unwrap();
        }
        assert_eq!(store.chunk_seqs(), &[0, 1, 2]);
        store.backup_begin().unwrap();
        // Backup races compaction: the merge happens mid-job.
        store.compact(None).unwrap().unwrap();
        // The inputs are merged away from the live set but their files
        // must survive for the pinned snapshot.
        assert_eq!(store.chunk_count(), 1);
        for seq in 0..3 {
            assert!(
                primary.exists(&chunk_name(seq)).unwrap(),
                "pinned chunk {seq} deleted under the backup job"
            );
        }
        while !store.backup_step(1).unwrap() {}
        store.backup_finish().unwrap();
        // Pins released: the deferred deletions have been applied.
        for seq in 0..3 {
            assert!(!primary.exists(&chunk_name(seq)).unwrap());
        }
        // And the generation restores the fenced state faithfully.
        let (got, rr) = restore_rows(&dest, i64::MAX);
        assert_eq!(got.len(), 3);
        assert!(rr.conserved());
    }

    #[test]
    fn torn_backup_is_invisible_and_next_tick_completes() {
        let (mut store, _, dest) = store_with_backup(42);
        store.note_time(1_000);
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        // Crash the backup disk mid-job: the chunk copy (or the
        // manifest) never lands.
        dest.schedule_fault(FaultPlan {
            crash_at_op: dest.ops_done() + 2,
            mode: FaultMode::TornTail,
        });
        assert!(store.backup_now().is_err());
        dest.restart();
        // No valid manifest: the torn generation cannot be restored.
        assert!(list_generations(&dest).unwrap().is_empty());
        // Restore falls back to archive-only replay, which must either
        // succeed on the surviving prefix or refuse with a typed error —
        // never fabricate the snapshot that was torn away.
        let _ = restore_at(&dest, Arc::new(MemDisk::new(9)) as Arc<dyn Vfs>, i64::MAX);
        // The live store is untouched.
        assert_eq!(store.scan().unwrap().len(), 1);
        // The next tick produces a complete generation with a fresh id.
        let report = store.backup_now().unwrap();
        assert_eq!(report.gen, 1, "aborted generation id is never reused");
        let gens = list_generations(&dest).unwrap();
        assert_eq!(gens.len(), 1);
        let (got, rr) = restore_rows(&dest, i64::MAX);
        assert_eq!(got.len(), 1);
        assert!(rr.conserved());
        assert_eq!(store.backup_stats().unwrap().backup_errors, 1);
    }

    #[test]
    fn corrupt_backed_up_chunk_is_refused_not_restored() {
        let (mut store, _, dest) = store_with_backup(43);
        store.note_time(1_000);
        store.append(&[row("s", "f", 1, 1.0), row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        store.flush().unwrap();
        store.backup_now().unwrap();
        // Rot one byte of the backed-up chunk copy.
        let name = format!("{}{}", generation_prefix(0), chunk_name(0));
        let mut data = dest.read(&name).unwrap();
        let n = data.len();
        data[n / 2] ^= 0x10;
        let mut f = dest.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        let err =
            restore_at(&dest, Arc::new(MemDisk::new(9)) as Arc<dyn Vfs>, i64::MAX).unwrap_err();
        assert!(
            matches!(err, BackupError::ChunkCorrupt { gen: 0, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn archive_corruption_before_target_is_refused() {
        let (mut store, _, dest) = store_with_backup(44);
        store.note_time(1_000);
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        store.note_time(2_000);
        store.append(&[row("s", "f", 2, 2.0)]);
        store.commit().unwrap();
        // Rot the first archive segment's first frame payload.
        let name = segment_name(0);
        let mut data = dest.read(&name).unwrap();
        data[30] ^= 0x01;
        let mut f = dest.create(&name).unwrap();
        f.append(&data).unwrap();
        f.sync().unwrap();
        let err =
            restore_at(&dest, Arc::new(MemDisk::new(9)) as Arc<dyn Vfs>, i64::MAX).unwrap_err();
        assert!(
            matches!(err, BackupError::ArchiveCorrupt { segment: 0 }),
            "got {err:?}"
        );
    }

    #[test]
    fn archiver_rides_through_destination_crash() {
        let (mut store, _, dest) = store_with_backup(45);
        store.note_time(1_000);
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        // Crash the backup disk; the primary commit must still succeed.
        dest.schedule_fault(FaultPlan {
            crash_at_op: dest.ops_done() + 1,
            mode: FaultMode::TornTail,
        });
        store.note_time(2_000);
        store.append(&[row("s", "f", 2, 2.0)]);
        store.commit().unwrap(); // archive write fails silently
        assert!(store.backup_stats().unwrap().archive_errors >= 1);
        dest.restart();
        // The retry resyncs, seals past any torn bytes, and catches up.
        store.note_time(3_000);
        store.append(&[row("s", "f", 3, 3.0)]);
        store.commit().unwrap();
        let (got, rr) = restore_rows(&dest, i64::MAX);
        assert_eq!(got.len(), 3, "archive lag repaired after dest restart");
        assert!(rr.conserved());
    }

    #[test]
    fn reattach_after_primary_crash_covers_recovered_rows() {
        let primary = MemDisk::new(46);
        let dest = MemDisk::new(47);
        let (mut store, _) = TsStore::open(Arc::new(primary.clone()), manual_opts()).unwrap();
        store.enable_backup(Arc::new(dest.clone())).unwrap();
        store.note_time(1_000);
        store.append(&[row("s", "f", 1, 1.0)]);
        store.commit().unwrap();
        // Primary dies; reopen and re-enable backups.
        primary.schedule_fault(FaultPlan {
            crash_at_op: primary.ops_done() + 1,
            mode: FaultMode::CleanStop,
        });
        store.append(&[row("s", "f", 2, 2.0)]);
        assert!(store.commit().is_err());
        primary.restart();
        drop(store);
        let (mut store, rec) = TsStore::open(Arc::new(primary.clone()), manual_opts()).unwrap();
        assert_eq!(rec.wal_rows, 1);
        let attach = store.enable_backup(Arc::new(dest.clone())).unwrap();
        assert_eq!(attach.resumed_seq, 1, "archive cursor resumes");
        assert_eq!(attach.catchup_records, 1, "live WAL re-archived");
        store.note_time(5_000);
        store.append(&[row("s", "f", 9, 9.0)]);
        store.commit().unwrap();
        let (got, rr) = restore_rows(&dest, i64::MAX);
        assert_eq!(got.len(), 2);
        assert!(rr.conserved());
        assert!(rr.dedup_rows >= 1, "catch-up duplicates are deduped");
    }

    #[test]
    fn manifest_roundtrip_and_crc_rejection() {
        let m = Manifest {
            gen: 3,
            fence_seq: 41,
            flushed_seq: 17,
            fence_vts: 9_000_000_000,
            chunks: vec![ManifestChunk {
                name: chunk_name(5),
                crc: 0xDEAD_BEEF,
                bytes: 123,
                rows: 7,
            }],
        };
        let enc = m.encode();
        assert_eq!(Manifest::decode(&enc), Some(m));
        let mut bad = enc.clone();
        bad[10] ^= 0x04;
        assert_eq!(Manifest::decode(&bad), None);
        assert_eq!(Manifest::decode(&enc[..enc.len() - 1]), None);
    }

    #[test]
    fn segment_and_generation_names_parse() {
        assert_eq!(parse_segment_name(&segment_name(7)), Some(7));
        assert_eq!(parse_segment_name("archive/other"), None);
        assert_eq!(parse_generation(&manifest_name(12)), Some(12));
        assert_eq!(parse_generation("chunk-00000001.tsm"), None);
    }

    #[test]
    fn empty_destination_refuses_restore() {
        let src = MemDisk::new(1);
        let target: Arc<dyn Vfs> = Arc::new(MemDisk::new(2));
        assert_eq!(
            restore_at(&src, target, i64::MAX).unwrap_err(),
            BackupError::NoBackup
        );
    }
}
