//! Background integrity scrubber.
//!
//! A [`Scrubber`] walks every live chunk and the WAL at a token-bucket
//! limited pace on the virtual clock, CRC-verifying each file via
//! [`TsStore::verify_chunk`] / [`TsStore::scrub_wal`]. The bucket's
//! refill rate is derived per pass from the bytes to cover and the
//! configured full-pass period, so full-store verification completes
//! within [`ScrubConfig::full_pass_period_s`] regardless of store size —
//! while each individual tick touches only as many bytes as the bucket
//! allows, keeping the scrubber from starving ingest.
//!
//! Damage handling lives in the store (quarantine for chunks, lossless
//! memtable rewrite for the WAL); the scrubber only decides *when* each
//! file gets looked at and reports what the pass found.

use crate::error::StoreResult;
use crate::store::{QuarantinedChunk, TsStore, VerifyOutcome, WalScrub};

/// Tuning for one [`Scrubber`].
#[derive(Debug, Clone, Copy)]
pub struct ScrubConfig {
    /// Target period for one full-store verification pass, in virtual
    /// seconds. The token refill rate is derived from this and the pass
    /// size, so bigger stores scrub faster rather than falling behind.
    pub full_pass_period_s: f64,
    /// Token-bucket burst: the most bytes one tick may verify beyond its
    /// accrued refill.
    pub burst_bytes: f64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            full_pass_period_s: 60.0,
            burst_bytes: 64.0 * 1024.0,
        }
    }
}

/// What one [`Scrubber::tick`] accomplished.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrubReport {
    /// Files (chunks + WAL) verified this tick.
    pub files_checked: u64,
    /// Bytes read and checksummed this tick.
    pub bytes_verified: u64,
    /// Chunks found damaged and quarantined this tick.
    pub quarantined: Vec<QuarantinedChunk>,
    /// WAL scan outcome, when the WAL was visited this tick.
    pub wal: Option<WalScrub>,
    /// Full passes completed by the end of this tick.
    pub full_passes_completed: u64,
    /// Modeled read time for the verified bytes, in nanoseconds.
    pub modeled_ns: u64,
}

/// One file the current pass still has to visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassItem {
    Chunk(u64),
    Wal,
}

/// State of an in-flight pass: the work list snapshot and its rate.
#[derive(Debug)]
struct Pass {
    items: Vec<PassItem>,
    idx: usize,
    /// Token refill, bytes per virtual second.
    rate: f64,
}

/// Token-bucket paced integrity verifier over one [`TsStore`].
#[derive(Debug)]
pub struct Scrubber {
    cfg: ScrubConfig,
    tokens: f64,
    last_s: Option<f64>,
    pass: Option<Pass>,
    full_passes: u64,
}

impl Scrubber {
    /// Scrubber with the given pacing config; the first tick starts the
    /// first pass.
    pub fn new(cfg: ScrubConfig) -> Scrubber {
        Scrubber {
            cfg,
            tokens: cfg.burst_bytes,
            last_s: None,
            pass: None,
            full_passes: 0,
        }
    }

    /// Full passes completed over this scrubber's lifetime.
    pub fn full_passes(&self) -> u64 {
        self.full_passes
    }

    /// Snapshot the store's current file set as a new pass work list.
    fn start_pass(&mut self, store: &TsStore) -> Pass {
        let mut items: Vec<PassItem> = store
            .chunk_seqs()
            .iter()
            .map(|&s| PassItem::Chunk(s))
            .collect();
        items.push(PassItem::Wal);
        let total_bytes: f64 = store
            .chunk_seqs()
            .iter()
            .filter_map(|&s| store.chunk_bytes(s))
            .sum::<u64>() as f64
            + store.wal_size().unwrap_or(0) as f64;
        // Cover the whole snapshot within one period; the 1-byte/s floor
        // keeps an empty store's pass finishing instead of stalling.
        let rate = (total_bytes / self.cfg.full_pass_period_s.max(1e-9)).max(1.0);
        Pass {
            items,
            idx: 0,
            rate,
        }
    }

    /// Advance the scrubber to virtual time `now_s`, verifying as many
    /// files as the token bucket allows. Passes roll over automatically:
    /// when one completes, [`TsStore::note_full_scrub_pass`] stamps the
    /// staleness gauge and the next tick snapshots a fresh work list.
    pub fn tick(&mut self, store: &mut TsStore, now_s: f64) -> StoreResult<ScrubReport> {
        let mut report = ScrubReport::default();
        let elapsed = match self.last_s {
            Some(last) => (now_s - last).max(0.0),
            None => 0.0,
        };
        self.last_s = Some(now_s);
        let rate = match &self.pass {
            Some(p) => p.rate,
            None => 0.0,
        };
        self.tokens = (self.tokens + elapsed * rate).min(self.cfg.burst_bytes.max(rate * elapsed));
        loop {
            if self.pass.is_none() {
                self.pass = Some(self.start_pass(store));
            }
            let pass = self.pass.as_mut().expect("pass just ensured");
            let Some(&item) = pass.items.get(pass.idx) else {
                // Pass exhausted: stamp it and wait for the next tick to
                // snapshot fresh work (ticking twice in the same instant
                // must not loop forever on an empty store).
                self.pass = None;
                self.full_passes += 1;
                store.note_full_scrub_pass(now_s);
                break;
            };
            // Deficit pacing: any positive balance admits the next file,
            // which then charges its full size — large files overdraw the
            // bucket and pay it back in elapsed time, so no file can
            // exceed the burst and starve verification forever.
            if self.tokens <= 0.0 {
                break;
            }
            pass.idx += 1;
            match item {
                PassItem::Chunk(seq) => match store.verify_chunk(seq)? {
                    Some(VerifyOutcome::Clean { bytes }) => {
                        self.tokens -= bytes as f64;
                        report.files_checked += 1;
                        report.bytes_verified += bytes;
                    }
                    Some(VerifyOutcome::Quarantined(q)) => {
                        self.tokens -= q.bytes as f64;
                        report.files_checked += 1;
                        report.bytes_verified += q.bytes;
                        report.quarantined.push(q);
                    }
                    // Compacted away since the snapshot — nothing to read.
                    None => {}
                },
                PassItem::Wal => {
                    let wal = store.scrub_wal()?;
                    self.tokens -= wal.bytes_scanned as f64;
                    report.files_checked += 1;
                    report.bytes_verified += wal.bytes_scanned;
                    report.wal = Some(wal);
                }
            }
        }
        report.full_passes_completed = self.full_passes;
        report.modeled_ns = store.modeled_commit_ns(report.bytes_verified);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::{MemDisk, RotSchedule};
    use crate::row::{ColumnValue, RowRecord};
    use crate::store::{DetectionSite, StoreOptions};
    use crate::vfs::Vfs;
    use std::sync::Arc;

    fn row(ts: i64, v: f64) -> RowRecord {
        RowRecord::new("cpu,host=a", "_cpu0", ts, ColumnValue::F64(v))
    }

    fn opts() -> StoreOptions {
        StoreOptions {
            flush_threshold_rows: 64,
            compact_min_chunks: 100,
        }
    }

    /// A store with `chunks` flushed chunks and a few WAL-resident rows.
    fn seeded_store(seed: u64, chunks: usize) -> (MemDisk, TsStore) {
        let disk = MemDisk::new(seed);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut store, _) = TsStore::open(vfs, opts()).unwrap();
        let mut ts = 0i64;
        for _ in 0..chunks {
            let rows: Vec<RowRecord> = (0..16).map(|i| row(ts + i, (ts + i) as f64)).collect();
            ts += 16;
            store.append(&rows);
            store.commit().unwrap();
            store.flush().unwrap();
        }
        store.append(&[row(ts, ts as f64), row(ts + 1, (ts + 1) as f64)]);
        store.commit().unwrap();
        (disk, store)
    }

    #[test]
    fn clean_store_scrubs_with_no_findings() {
        let (_disk, mut store) = seeded_store(1, 3);
        let mut scrubber = Scrubber::new(ScrubConfig {
            full_pass_period_s: 10.0,
            ..ScrubConfig::default()
        });
        let mut now = 0.0;
        let mut total_checked = 0;
        while scrubber.full_passes() == 0 {
            let r = scrubber.tick(&mut store, now).unwrap();
            total_checked += r.files_checked;
            assert!(r.quarantined.is_empty());
            now += 1.0;
            assert!(now < 100.0, "pass failed to finish in bounded time");
        }
        // 3 chunks + the WAL.
        assert_eq!(total_checked, 4);
        assert!(store.quarantined().is_empty());
        // A full pass completes within the configured period (one extra
        // tick carries the pass-completion bookkeeping).
        assert!(now <= 12.0, "pass took {now}s against a 10s period");
    }

    #[test]
    fn rate_limit_spreads_work_across_ticks() {
        let (_disk, mut store) = seeded_store(2, 8);
        let mut scrubber = Scrubber::new(ScrubConfig {
            full_pass_period_s: 8.0,
            burst_bytes: 1.0, // tiny burst: at most one file per tick
        });
        let mut per_tick = Vec::new();
        let mut now = 0.0;
        while scrubber.full_passes() == 0 {
            per_tick.push(scrubber.tick(&mut store, now).unwrap().files_checked);
            now += 1.0;
            assert!(now < 64.0);
        }
        // The work list (8 chunks + WAL) was not swallowed in one tick.
        assert!(per_tick.iter().filter(|&&n| n > 0).count() > 1);
        assert_eq!(per_tick.iter().sum::<u64>(), 9);
    }

    #[test]
    fn rotted_chunk_is_detected_within_one_pass_and_quarantined() {
        let (disk, mut store) = seeded_store(3, 4);
        disk.schedule_rot(RotSchedule::none().at(1.0, 1).with_prefix("chunk-"));
        disk.advance_rot(2.0);
        let mut scrubber = Scrubber::new(ScrubConfig {
            full_pass_period_s: 10.0,
            ..ScrubConfig::default()
        });
        let mut now = 2.0;
        let mut quarantined = Vec::new();
        while scrubber.full_passes() == 0 {
            quarantined.extend(scrubber.tick(&mut store, now).unwrap().quarantined);
            now += 1.0;
            assert!(now < 100.0);
        }
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].site, DetectionSite::Scrub);
        assert_eq!(quarantined[0].rows, 16);
        assert!(quarantined[0].time_range.is_some());
        assert_eq!(store.chunk_count(), 3);
        assert_eq!(store.quarantined(), &quarantined[..]);
        // Evidence preserved under quarantine/.
        let q = crate::store::quarantine_name(quarantined[0].seq);
        assert!(store.vfs().exists(&q).unwrap());
        // The scan keeps serving the survivors.
        assert_eq!(store.scan().unwrap().len(), 3 * 16 + 2);
    }

    #[test]
    fn rotted_wal_is_rewritten_from_memtable() {
        let (disk, mut store) = seeded_store(4, 1);
        assert_eq!(store.memtable_rows(), 2);
        disk.schedule_rot(RotSchedule::none().at(1.0, 1).with_prefix("wal.log"));
        disk.advance_rot(1.0);
        let mut scrubber = Scrubber::new(ScrubConfig::default());
        let mut now = 1.0;
        let mut wal = None;
        while scrubber.full_passes() == 0 {
            if let Some(w) = scrubber.tick(&mut store, now).unwrap().wal {
                wal = Some(w);
            }
            now += 1.0;
            assert!(now < 200.0);
        }
        let wal = wal.expect("WAL visited in a full pass");
        assert_eq!(wal.corrupt_frames, 1);
        assert_eq!(wal.rows_rewritten, 2);
        // After the rewrite the log verifies clean and replays losslessly.
        assert_eq!(store.scrub_wal().unwrap().corrupt_frames, 0);
        let rows = store.scan().unwrap();
        drop(store);
        let vfs: Arc<dyn Vfs> = Arc::new(disk);
        let (mut reopened, report) = TsStore::open(vfs, opts()).unwrap();
        assert_eq!(report.wal_corrupt_frames, 0);
        assert_eq!(reopened.scan().unwrap(), rows);
    }

    #[test]
    fn same_seed_scrub_is_deterministic() {
        let run = |seed: u64| {
            let (disk, mut store) = seeded_store(seed, 4);
            disk.schedule_rot(RotSchedule::random(seed, 3, 0.0, 20.0).with_prefix("chunk-"));
            let mut scrubber = Scrubber::new(ScrubConfig {
                full_pass_period_s: 10.0,
                ..ScrubConfig::default()
            });
            let mut out = Vec::new();
            for step in 0..40 {
                let now = step as f64;
                disk.advance_rot(now);
                out.push(scrubber.tick(&mut store, now).unwrap());
            }
            (out, store.quarantined().to_vec())
        };
        assert_eq!(run(7), run(7));
    }
}
