//! The row model the engine persists: one scalar value of one field of
//! one series at one timestamp.
//!
//! The store is deliberately ignorant of the databases above it: a series
//! is an opaque canonical string (the tsdb renders `measurement,tag=...`
//! line-protocol heads into it), a field is a name, and a value is one of
//! the four InfluxDB 1.x scalar types.

use crate::error::{StoreError, StoreResult};

/// One persisted scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValue {
    /// 64-bit float (compressed with Gorilla XOR).
    F64(f64),
    /// Signed integer (compressed with zigzag deltas).
    I64(i64),
    /// Boolean flag (bit-packed).
    Bool(bool),
    /// String value (length-prefixed, uncompressed).
    Str(String),
}

impl ColumnValue {
    /// Stable type tag used in WAL records and chunk block headers.
    pub fn type_tag(&self) -> u8 {
        match self {
            ColumnValue::F64(_) => 0,
            ColumnValue::I64(_) => 1,
            ColumnValue::Bool(_) => 2,
            ColumnValue::Str(_) => 3,
        }
    }

    /// Human-readable name for a tag (diagnostics).
    pub fn tag_name(tag: u8) -> &'static str {
        match tag {
            0 => "f64",
            1 => "i64",
            2 => "bool",
            3 => "str",
            _ => "unknown",
        }
    }

    /// Validate a tag read from disk.
    pub fn check_tag(tag: u8) -> StoreResult<u8> {
        if tag <= 3 {
            Ok(tag)
        } else {
            Err(StoreError::Decode(format!("bad value type tag {tag}")))
        }
    }
}

/// One row offered to (and recovered from) the store.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRecord {
    /// Canonical series key (opaque to the store).
    pub series: String,
    /// Field name within the series.
    pub field: String,
    /// Timestamp in the database's time unit.
    pub ts: i64,
    /// The scalar value.
    pub value: ColumnValue,
}

impl RowRecord {
    /// Convenience constructor.
    pub fn new(
        series: impl Into<String>,
        field: impl Into<String>,
        ts: i64,
        value: ColumnValue,
    ) -> RowRecord {
        RowRecord {
            series: series.into(),
            field: field.into(),
            ts,
            value,
        }
    }

    /// The raw footprint this row occupies in the uncompressed in-memory
    /// engine, which holds each cell as a timestamp plus an enum value
    /// slot in the row's field map (string payloads add their heap
    /// bytes). Key strings and map-node overhead are shared per series
    /// and excluded, keeping the baseline conservative.
    pub fn raw_footprint(&self) -> usize {
        8 + std::mem::size_of::<ColumnValue>()
            + match &self.value {
                ColumnValue::Str(s) => s.len(),
                _ => 0,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_are_stable() {
        assert_eq!(ColumnValue::F64(1.0).type_tag(), 0);
        assert_eq!(ColumnValue::I64(1).type_tag(), 1);
        assert_eq!(ColumnValue::Bool(true).type_tag(), 2);
        assert_eq!(ColumnValue::Str("x".into()).type_tag(), 3);
        assert!(ColumnValue::check_tag(3).is_ok());
        assert!(ColumnValue::check_tag(4).is_err());
        assert_eq!(ColumnValue::tag_name(0), "f64");
    }

    #[test]
    fn raw_footprint_counts_ts_and_value_slot() {
        let slot = std::mem::size_of::<ColumnValue>();
        let r = RowRecord::new("s", "f", 1, ColumnValue::F64(2.0));
        assert_eq!(r.raw_footprint(), 8 + slot);
        let s = RowRecord::new("s", "f", 1, ColumnValue::Str("0123456789ab".into()));
        assert_eq!(s.raw_footprint(), 8 + slot + 12);
    }
}
