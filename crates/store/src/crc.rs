//! CRC32 (IEEE 802.3 polynomial, reflected) — the checksum framing every
//! WAL record and chunk file, with no external dependency.

/// Lazily built 256-entry lookup table for the reflected polynomial
/// `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC32 of `data` (standard init/final XOR with `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x20;
        assert_ne!(crc32(&data), clean);
    }
}
