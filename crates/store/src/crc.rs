//! CRC32 (IEEE 802.3 polynomial, reflected) — the checksum framing every
//! WAL record and chunk file, with no external dependency.
//!
//! The hot loop uses slicing-by-8: eight lookup tables consume eight
//! input bytes per iteration, breaking the per-byte load-use dependency
//! chain of the classic table walk. Same polynomial, same check values,
//! roughly 3-4x the throughput — this sits on the ingest path (WAL
//! framing), the flush path (chunk checksums), and the backup archiver,
//! so it is the single hottest routine in the store.

/// Lazily built slicing-by-8 tables for the reflected polynomial
/// `0xEDB88320`. `tables()[0]` is the classic byte-at-a-time table;
/// `tables()[k][b]` advances a CRC whose low byte is `b` by `k` more
/// zero bytes.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// Start a streaming CRC32 (pair with [`crc32_update`] / [`crc32_finish`]).
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Fold `data` into a streaming CRC32 state from [`crc32_init`].
pub fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Finish a streaming CRC32 state into the checksum value.
pub fn crc32_finish(c: u32) -> u32 {
    c ^ 0xFFFF_FFFF
}

/// CRC32 of `data` (standard init/final XOR with `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x20;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn sliced_path_matches_byte_at_a_time_at_every_alignment() {
        // Cover lengths around the 8-byte slicing boundary so both the
        // wide loop and the remainder tail are exercised.
        let data: Vec<u8> = (0u32..64).map(|i| (i * 37 + 11) as u8).collect();
        for len in 0..data.len() {
            let t = tables();
            let mut c = 0xFFFF_FFFFu32;
            for &b in &data[..len] {
                c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            assert_eq!(crc32(&data[..len]), c ^ 0xFFFF_FFFF, "len {len}");
        }
    }

    #[test]
    fn streaming_split_agrees_with_one_shot() {
        let data: Vec<u8> = (0u32..100).map(|i| (i * 13 + 5) as u8).collect();
        for split in [0, 1, 7, 8, 9, 50, 99, 100] {
            let c = crc32_update(crc32_init(), &data[..split]);
            let c = crc32_update(c, &data[split..]);
            assert_eq!(crc32_finish(c), crc32(&data), "split {split}");
        }
    }
}
