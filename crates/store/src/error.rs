//! Error type shared by every storage-engine operation.

use std::fmt;

/// Result alias used throughout the crate.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors produced by the durable storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying I/O failure (message from the real or virtual disk).
    Io(String),
    /// The virtual disk has crashed; operations fail until it is
    /// restarted (see `MemDisk::restart`).
    DiskCrashed,
    /// A file was present but structurally invalid beyond the point of
    /// tolerated tail damage (e.g. a chunk with a bad magic number).
    Corrupt(String),
    /// A decoder ran out of bytes or met an impossible value.
    Decode(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "storage I/O error: {m}"),
            StoreError::DiskCrashed => write!(f, "virtual disk crashed"),
            StoreError::Corrupt(m) => write!(f, "corrupt file: {m}"),
            StoreError::Decode(m) => write!(f, "decode error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StoreError::Io("boom".into()).to_string().contains("boom"));
        assert!(StoreError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(StoreError::DiskCrashed.to_string().contains("crashed"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
