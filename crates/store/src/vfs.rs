//! Virtual filesystem abstraction: every byte the engine persists goes
//! through [`Vfs`] / [`VirtualFile`], so the same WAL/chunk/compaction
//! code runs against the real filesystem ([`StdFs`]) and against the
//! deterministic fault-injecting disk (`MemDisk`) used by the
//! crash-recovery property tests.

use crate::error::{StoreError, StoreResult};
use pmove_hwsim::disk::DiskSpec;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// An open, append-only file handle.
pub trait VirtualFile: Send {
    /// Append bytes to the end of the file. Appended data is *not*
    /// durable until [`VirtualFile::sync`] returns `Ok`.
    fn append(&mut self, data: &[u8]) -> StoreResult<()>;

    /// Make all previously appended bytes durable (the acknowledgement
    /// barrier of the group commit).
    fn sync(&mut self) -> StoreResult<()>;

    /// Current file length in bytes (durable + pending).
    fn len(&self) -> StoreResult<u64>;

    /// True when no bytes have been written.
    fn is_empty(&self) -> StoreResult<bool> {
        Ok(self.len()? == 0)
    }
}

/// A flat directory of named files.
pub trait Vfs: Send + Sync {
    /// Open `name` for appending, creating it when absent.
    fn open_append(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>>;

    /// Create (or truncate) `name` and open it for appending.
    fn create(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>>;

    /// Read the whole durable content of `name`.
    fn read(&self, name: &str) -> StoreResult<Vec<u8>>;

    /// Sorted list of file names present.
    fn list(&self) -> StoreResult<Vec<String>>;

    /// Delete `name`; succeeds when absent.
    fn remove(&self, name: &str) -> StoreResult<()>;

    /// Does `name` exist?
    fn exists(&self, name: &str) -> StoreResult<bool>;

    /// The block-device model used to derive deterministic modeled
    /// latencies for the `pmove.self.wal.*` histograms. Real filesystems
    /// report the paper's SATA target so observability stays
    /// bit-reproducible regardless of host hardware.
    fn disk_spec(&self) -> DiskSpec {
        DiskSpec::sata("store")
    }
}

// ------------------------------------------------------------------ std

/// [`Vfs`] over a real directory via `std::fs`.
pub struct StdFs {
    root: PathBuf,
}

impl StdFs {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> StoreResult<StdFs> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(StdFs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Names like `quarantine/chunk-….tsm` live one directory down;
    /// create the parent before opening so namespaced writes just work.
    fn ensure_parent(&self, name: &str) -> StoreResult<()> {
        if name.contains('/') {
            if let Some(parent) = self.path(name).parent() {
                fs::create_dir_all(parent)?;
            }
        }
        Ok(())
    }
}

struct StdFile {
    file: fs::File,
}

impl VirtualFile for StdFile {
    fn append(&mut self, data: &[u8]) -> StoreResult<()> {
        self.file.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self) -> StoreResult<()> {
        self.file.sync_all()?;
        Ok(())
    }

    fn len(&self) -> StoreResult<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for StdFs {
    fn open_append(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>> {
        self.ensure_parent(name)?;
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        Ok(Box::new(StdFile { file }))
    }

    fn create(&self, name: &str) -> StoreResult<Box<dyn VirtualFile>> {
        self.ensure_parent(name)?;
        let file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.path(name))?;
        Ok(Box::new(StdFile { file }))
    }

    fn read(&self, name: &str) -> StoreResult<Vec<u8>> {
        Ok(fs::read(self.path(name))?)
    }

    fn list(&self) -> StoreResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let file_type = entry.file_type()?;
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if file_type.is_file() {
                names.push(name);
            } else if file_type.is_dir() {
                // One level of namespacing (e.g. quarantine/), matching
                // the flat-with-prefixes view MemDisk presents.
                for sub in fs::read_dir(entry.path())? {
                    let sub = sub?;
                    if sub.file_type()?.is_file() {
                        if let Ok(sub_name) = sub.file_name().into_string() {
                            names.push(format!("{name}/{sub_name}"));
                        }
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&self, name: &str) -> StoreResult<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn exists(&self, name: &str) -> StoreResult<bool> {
        Ok(self.path(name).exists())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pmove-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stdfs_append_read_list_remove() {
        let root = tmpdir("basic");
        let vfs = StdFs::new(&root).unwrap();
        let mut f = vfs.create("a.log").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len().unwrap(), 11);
        drop(f);
        assert_eq!(vfs.read("a.log").unwrap(), b"hello world");
        // Re-open for append keeps content.
        let mut f = vfs.open_append("a.log").unwrap();
        f.append(b"!").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.read("a.log").unwrap(), b"hello world!");
        // Create truncates.
        let f2 = vfs.create("a.log").unwrap();
        assert!(f2.is_empty().unwrap());
        assert_eq!(vfs.list().unwrap(), vec!["a.log".to_string()]);
        assert!(vfs.exists("a.log").unwrap());
        vfs.remove("a.log").unwrap();
        vfs.remove("a.log").unwrap(); // idempotent
        assert!(!vfs.exists("a.log").unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stdfs_namespaced_files_roundtrip() {
        let root = tmpdir("namespaced");
        let vfs = StdFs::new(&root).unwrap();
        let mut f = vfs.create("quarantine/chunk-00000001.tsm").unwrap();
        f.append(b"evidence").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(vfs.exists("quarantine/chunk-00000001.tsm").unwrap());
        assert_eq!(
            vfs.read("quarantine/chunk-00000001.tsm").unwrap(),
            b"evidence"
        );
        vfs.create("top.log").unwrap();
        assert_eq!(
            vfs.list().unwrap(),
            vec![
                "quarantine/chunk-00000001.tsm".to_string(),
                "top.log".to_string()
            ]
        );
        vfs.remove("quarantine/chunk-00000001.tsm").unwrap();
        assert!(!vfs.exists("quarantine/chunk-00000001.tsm").unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_file_read_errors() {
        let root = tmpdir("missing");
        let vfs = StdFs::new(&root).unwrap();
        assert!(vfs.read("ghost").is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn default_disk_spec_matches_paper_target() {
        let root = tmpdir("spec");
        let vfs = StdFs::new(&root).unwrap();
        assert!(vfs.disk_spec().rotational);
        let _ = fs::remove_dir_all(&root);
    }
}
