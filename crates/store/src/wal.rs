//! Append-only write-ahead log.
//!
//! Records are framed as `[len: u32 LE][crc32: u32 LE][payload]` and
//! buffered until [`Wal::commit`], which appends the whole batch in one
//! write and syncs once — the group commit that makes per-point
//! durability affordable on the paper's slow SATA target. A record is
//! *acknowledged* only when the commit that carried it returned `Ok`.
//!
//! On open the log is replayed front to back; the first frame that is
//! short, oversized, or fails its CRC ends the replay (a torn tail or a
//! latent corruption), and the file is rewritten to the surviving valid
//! prefix so later appends land after well-formed frames.

use crate::crc::crc32;
use crate::error::StoreResult;
use crate::vfs::{Vfs, VirtualFile};
use std::sync::Arc;

/// Upper bound on a single record payload; larger lengths in a header are
/// treated as tail corruption rather than an allocation request.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// Outcome of one group commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// Records made durable by this commit.
    pub records: u64,
    /// Bytes appended (frames included).
    pub bytes: u64,
}

/// Outcome of replaying a log at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalReplay {
    /// Well-formed records recovered.
    pub records: u64,
    /// Bytes of tail damage discarded (0 on a clean log).
    pub bytes_dropped: u64,
    /// Frames that were structurally complete but provably damaged — a
    /// CRC mismatch on a fully present payload or an absurd length field.
    /// A short frame at the tail is a torn write, not corruption, and is
    /// not counted here.
    pub corrupt_frames: u64,
}

/// Parse every valid frame in `data`; returns the payloads, the byte
/// length of the valid prefix, and how many frames were rejected as
/// corrupt (as opposed to merely torn short at the tail).
pub fn scan_frames(data: &[u8]) -> (Vec<Vec<u8>>, usize, u64) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    let mut corrupt = 0u64;
    while data.len() - pos >= 8 {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            // A header this large was never written by `append`; the
            // length field itself took the damage.
            corrupt += 1;
            break;
        }
        let end = pos + 8 + len as usize;
        if end > data.len() {
            // Torn tail: the frame simply never finished reaching disk.
            break;
        }
        let payload = &data[pos + 8..end];
        if crc32(payload) != crc {
            // Every byte of the frame is present yet the checksum fails:
            // a bit flip inside the record, not a truncated write.
            corrupt += 1;
            break;
        }
        payloads.push(payload.to_vec());
        pos = end;
    }
    (payloads, pos, corrupt)
}

/// The write-ahead log over one [`Vfs`] file.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    name: String,
    file: Box<dyn VirtualFile>,
    /// Encoded frames awaiting the next commit.
    pending: Vec<u8>,
    pending_records: u64,
    /// Records durable in the file.
    durable_records: u64,
}

impl Wal {
    /// Open (or create) the log named `name`, replaying any existing
    /// content. Returns the log positioned for appends plus the recovered
    /// payloads in append order.
    pub fn open(vfs: Arc<dyn Vfs>, name: &str) -> StoreResult<(Wal, Vec<Vec<u8>>, WalReplay)> {
        let existing = if vfs.exists(name)? {
            vfs.read(name)?
        } else {
            Vec::new()
        };
        let (payloads, valid_len, corrupt_frames) = scan_frames(&existing);
        let bytes_dropped = (existing.len() - valid_len) as u64;
        let file = if bytes_dropped > 0 {
            // Rewrite to the valid prefix so future frames append after
            // well-formed ones.
            let mut f = vfs.create(name)?;
            f.append(&existing[..valid_len])?;
            f.sync()?;
            f
        } else {
            vfs.open_append(name)?
        };
        let replay = WalReplay {
            records: payloads.len() as u64,
            bytes_dropped,
            corrupt_frames,
        };
        Ok((
            Wal {
                vfs,
                name: name.to_string(),
                file,
                pending: Vec::new(),
                pending_records: 0,
                durable_records: payloads.len() as u64,
            },
            payloads,
            replay,
        ))
    }

    /// Buffer one record for the next commit.
    pub fn append(&mut self, payload: &[u8]) {
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending_records += 1;
    }

    /// Group-commit every buffered record: one append, one sync. On error
    /// the batch stays buffered and unacknowledged.
    pub fn commit(&mut self) -> StoreResult<CommitInfo> {
        if self.pending.is_empty() {
            return Ok(CommitInfo {
                records: 0,
                bytes: 0,
            });
        }
        self.file.append(&self.pending)?;
        self.file.sync()?;
        let info = CommitInfo {
            records: self.pending_records,
            bytes: self.pending.len() as u64,
        };
        self.pending.clear();
        self.durable_records += self.pending_records;
        self.pending_records = 0;
        Ok(info)
    }

    /// Truncate the log (after its records were flushed into a chunk).
    /// Buffered-but-uncommitted records are preserved for the next commit.
    pub fn reset(&mut self) -> StoreResult<()> {
        self.file = self.vfs.create(&self.name)?;
        self.durable_records = 0;
        Ok(())
    }

    /// Rewrite the durable log to exactly `payloads`, one frame each —
    /// the scrubber's repair path when latent rot lands inside an
    /// already-durable frame. Buffered-but-uncommitted records are
    /// preserved for the next commit, exactly like [`Wal::reset`].
    pub fn rewrite(&mut self, payloads: &[Vec<u8>]) -> StoreResult<()> {
        let mut framed = Vec::new();
        for p in payloads {
            framed.extend_from_slice(&(p.len() as u32).to_le_bytes());
            framed.extend_from_slice(&crc32(p).to_le_bytes());
            framed.extend_from_slice(p);
        }
        self.file = self.vfs.create(&self.name)?;
        if !framed.is_empty() {
            self.file.append(&framed)?;
            self.file.sync()?;
        }
        self.durable_records = payloads.len() as u64;
        Ok(())
    }

    /// Raw durable+buffered bytes of the log file, for integrity scans.
    pub fn raw_bytes(&self) -> StoreResult<Vec<u8>> {
        if self.vfs.exists(&self.name)? {
            self.vfs.read(&self.name)
        } else {
            Ok(Vec::new())
        }
    }

    /// Records currently durable in the file.
    pub fn durable_records(&self) -> u64 {
        self.durable_records
    }

    /// Records buffered but not yet committed.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Current file size in bytes.
    pub fn size(&self) -> StoreResult<u64> {
        self.file.len()
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("name", &self.name)
            .field("durable_records", &self.durable_records)
            .field("pending_records", &self.pending_records)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::{FaultMode, FaultPlan, MemDisk};

    fn mem() -> Arc<dyn Vfs> {
        Arc::new(MemDisk::new(11))
    }

    #[test]
    fn commit_then_reopen_replays_in_order() {
        let vfs = mem();
        let (mut wal, recovered, _) = Wal::open(vfs.clone(), "wal").unwrap();
        assert!(recovered.is_empty());
        wal.append(b"one");
        wal.append(b"two");
        let info = wal.commit().unwrap();
        assert_eq!(info.records, 2);
        wal.append(b"three");
        wal.commit().unwrap();
        drop(wal);
        let (wal, recovered, replay) = Wal::open(vfs, "wal").unwrap();
        assert_eq!(
            recovered,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert_eq!(replay.records, 3);
        assert_eq!(replay.bytes_dropped, 0);
        assert_eq!(wal.durable_records(), 3);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let (mut wal, _, _) = Wal::open(mem(), "wal").unwrap();
        let info = wal.commit().unwrap();
        assert_eq!(
            info,
            CommitInfo {
                records: 0,
                bytes: 0
            }
        );
    }

    #[test]
    fn torn_tail_is_dropped_and_log_stays_appendable() {
        let disk = MemDisk::new(21);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut wal, _, _) = Wal::open(vfs.clone(), "wal").unwrap();
        wal.append(b"acked");
        wal.commit().unwrap();
        disk.schedule_fault(FaultPlan {
            crash_at_op: disk.ops_done() + 2, // tear the commit's sync
            mode: FaultMode::TornTail,
        });
        wal.append(b"in-flight-record-payload");
        assert!(wal.commit().is_err());
        disk.restart();
        let (mut wal, recovered, replay) = Wal::open(vfs.clone(), "wal").unwrap();
        // The acked record always survives; the torn one only if every
        // byte of its frame reached the disk.
        assert!(!recovered.is_empty());
        assert_eq!(recovered[0], b"acked");
        assert!(recovered.len() <= 2);
        let _ = replay;
        // Appends continue after recovery.
        wal.append(b"post-crash");
        wal.commit().unwrap();
        let (_, recovered2, _) = Wal::open(vfs, "wal").unwrap();
        assert_eq!(recovered2.last().unwrap(), b"post-crash");
        assert_eq!(recovered2.len(), recovered.len() + 1);
    }

    #[test]
    fn scan_frames_stops_at_bad_crc() {
        let mut data = Vec::new();
        for payload in [&b"aaa"[..], b"bbbb"] {
            data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            data.extend_from_slice(&crc32(payload).to_le_bytes());
            data.extend_from_slice(payload);
        }
        // Corrupt the second record's payload.
        let n = data.len();
        data[n - 1] ^= 0x01;
        let (payloads, valid, corrupt) = scan_frames(&data);
        assert_eq!(payloads, vec![b"aaa".to_vec()]);
        assert_eq!(valid, 11);
        assert_eq!(corrupt, 1);
        // Oversized length field is corruption, not an allocation.
        let mut huge = vec![0xFF; 12];
        huge[0..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        let (payloads, _, corrupt) = scan_frames(&huge);
        assert!(payloads.is_empty());
        assert_eq!(corrupt, 1);
    }

    #[test]
    fn torn_short_frame_is_not_counted_as_corrupt() {
        let mut data = Vec::new();
        let payload = b"complete";
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        data.extend_from_slice(&crc32(payload).to_le_bytes());
        data.extend_from_slice(payload);
        // A frame header promising more bytes than the file holds: torn.
        data.extend_from_slice(&64u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        data.extend_from_slice(b"short");
        let (payloads, valid, corrupt) = scan_frames(&data);
        assert_eq!(payloads, vec![payload.to_vec()]);
        assert_eq!(valid, 8 + payload.len());
        assert_eq!(corrupt, 0);
    }

    #[test]
    fn rewrite_restores_a_rotted_log_losslessly() {
        let disk = MemDisk::new(31);
        let vfs: Arc<dyn Vfs> = Arc::new(disk.clone());
        let (mut wal, _, _) = Wal::open(vfs.clone(), "wal").unwrap();
        wal.append(b"first");
        wal.append(b"second");
        wal.commit().unwrap();
        // Rot a durable payload byte: the scan now reports corruption.
        let mut raw = wal.raw_bytes().unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0x04;
        let mut f = disk.create("wal").unwrap();
        f.append(&raw).unwrap();
        f.sync().unwrap();
        let (_, _, corrupt) = scan_frames(&wal.raw_bytes().unwrap());
        assert_eq!(corrupt, 1);
        // Rewrite from the in-memory truth (buffered record untouched).
        wal.append(b"unacked");
        wal.rewrite(&[b"first".to_vec(), b"second".to_vec()])
            .unwrap();
        assert_eq!(wal.durable_records(), 2);
        assert_eq!(wal.pending_records(), 1);
        let (payloads, _, corrupt) = scan_frames(&wal.raw_bytes().unwrap());
        assert_eq!(corrupt, 0);
        assert_eq!(payloads, vec![b"first".to_vec(), b"second".to_vec()]);
        wal.commit().unwrap();
        let (_, recovered, _) = Wal::open(vfs, "wal").unwrap();
        assert_eq!(
            recovered,
            vec![b"first".to_vec(), b"second".to_vec(), b"unacked".to_vec()]
        );
    }

    #[test]
    fn reset_truncates() {
        let vfs = mem();
        let (mut wal, _, _) = Wal::open(vfs.clone(), "wal").unwrap();
        wal.append(b"flushed-away");
        wal.commit().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.durable_records(), 0);
        wal.append(b"fresh");
        wal.commit().unwrap();
        let (_, recovered, _) = Wal::open(vfs, "wal").unwrap();
        assert_eq!(recovered, vec![b"fresh".to_vec()]);
    }
}
